//! Memory-movement traces in the vocabulary of the paper's Fig. 1.
//!
//! The paper's Figure 1 enumerates six memory operations in the life of a
//! GPGPU kernel on a tiled GPU. [`annotate_frame`] reconstructs that listing
//! for a scheduled frame, which is what the `fig1_trace` harness binary
//! prints.

use std::fmt;

use crate::stats::FrameTiming;
use crate::time::SimTime;
use crate::work::{AllocKind, FrameWork, RenderTarget};

/// The six memory-movement operations of the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Step 1: vertex data copied into GPU-managed memory.
    VertexUpload,
    /// Step 2: texture data copied into GPU-managed memory.
    TextureUpload,
    /// Step 3: tile contents written back to the in-memory framebuffer.
    FramebufferWriteback,
    /// Step 4: framebuffer copied to texture memory (`copy_tex_image_2d`).
    CopyFramebufferToTexture,
    /// Step 5: tile contents streamed directly into a bound texture
    /// (render-to-texture through a framebuffer object).
    TileToTexture,
    /// Step 6: previous framebuffer contents reloaded into the tile.
    FramebufferReload,
    /// Extension beyond the paper's six steps: per-tile input signatures
    /// fetched and compared for tiles elided by redundancy elimination
    /// (*Rendering Elimination*-style tile skipping, `MGPU_TILE_SKIP=on`).
    TileSignatureRead,
}

impl MemOp {
    /// The step number used in the paper's figure.
    #[must_use]
    pub fn paper_step(self) -> u8 {
        match self {
            MemOp::VertexUpload => 1,
            MemOp::TextureUpload => 2,
            MemOp::FramebufferWriteback => 3,
            MemOp::CopyFramebufferToTexture => 4,
            MemOp::TileToTexture => 5,
            MemOp::FramebufferReload => 6,
            MemOp::TileSignatureRead => 7,
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MemOp::VertexUpload => "vertex data -> GPU memory",
            MemOp::TextureUpload => "texture data -> GPU memory",
            MemOp::FramebufferWriteback => "tiles -> framebuffer memory",
            MemOp::CopyFramebufferToTexture => "framebuffer -> texture memory",
            MemOp::TileToTexture => "tiles -> texture memory (FBO)",
            MemOp::FramebufferReload => "framebuffer memory -> tiles (preserve)",
            MemOp::TileSignatureRead => "tile signatures -> comparator (skip)",
        };
        write!(f, "step {}: {}", self.paper_step(), name)
    }
}

/// One annotated memory movement of a scheduled frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which Fig. 1 operation this is.
    pub op: MemOp,
    /// Bytes moved.
    pub bytes: u64,
    /// When the movement happened (start of the owning stage).
    pub at: SimTime,
    /// Whether the operation targeted freshly allocated storage.
    pub fresh_alloc: bool,
}

/// Reconstructs the Fig. 1-style memory-movement listing for one frame.
///
/// `work` must be the same description that produced `timing`.
#[must_use]
pub fn annotate_frame(work: &FrameWork, timing: &FrameTiming) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    let mut saw_texture_upload = false;
    for up in &work.uploads {
        saw_texture_upload = true;
        events.push(TraceEvent {
            op: MemOp::TextureUpload,
            bytes: up.copy_bytes.max(up.alloc_bytes),
            at: timing.cpu_start,
            fresh_alloc: up.alloc == AllocKind::Fresh,
        });
    }
    // Vertex data always moves at least once per draw (client arrays move it
    // every frame; a VBO moved it when the buffer was created).
    if work.vertex.vertices > 0 && !saw_texture_upload {
        events.push(TraceEvent {
            op: MemOp::VertexUpload,
            bytes: work.vertex.vertices * 16,
            at: timing.cpu_start,
            fresh_alloc: true,
        });
    }

    if !work.fragment.cleared {
        events.push(TraceEvent {
            op: MemOp::FramebufferReload,
            bytes: u64::from(work.fragment.width) * u64::from(work.fragment.height) * 4,
            at: timing.frag_start,
            fresh_alloc: false,
        });
    }

    if work.fragment.skip.signature_bytes > 0 {
        events.push(TraceEvent {
            op: MemOp::TileSignatureRead,
            bytes: work.fragment.skip.signature_bytes,
            at: timing.frag_start,
            fresh_alloc: false,
        });
    }

    let shaded = work
        .fragment
        .fragments
        .saturating_sub(work.fragment.skip.skipped_fragments);
    let out_bytes = (shaded as f64 * work.fragment.profile.output_bytes) as u64;
    match work.target {
        RenderTarget::Framebuffer { .. } => {
            events.push(TraceEvent {
                op: MemOp::FramebufferWriteback,
                bytes: out_bytes,
                at: timing.frag_start,
                fresh_alloc: false,
            });
            if let (Some(copy), Some((cs, _))) = (&work.copy_out, timing.copy) {
                events.push(TraceEvent {
                    op: MemOp::CopyFramebufferToTexture,
                    bytes: copy.bytes,
                    at: cs,
                    fresh_alloc: copy.alloc == AllocKind::Fresh,
                });
            }
        }
        RenderTarget::Texture { fresh, .. } => {
            events.push(TraceEvent {
                op: MemOp::TileToTexture,
                bytes: out_bytes,
                at: timing.frag_start,
                fresh_alloc: fresh,
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::sched::PipelineSim;
    use crate::work::{CopyOut, FragmentProfile, ResourceId, Upload};

    fn base_frame() -> FrameWork {
        FrameWork::simple(
            64,
            64,
            FragmentProfile {
                alu_cycles: 4.0,
                output_bytes: 4.0,
                ..FragmentProfile::default()
            },
        )
    }

    #[test]
    fn fb_frame_with_copy_hits_steps_3_and_4() {
        let mut c = 0;
        let mut f = base_frame();
        f.copy_out = Some(CopyOut {
            dest: ResourceId::next(&mut c),
            bytes: 64 * 64 * 4,
            alloc: AllocKind::Fresh,
        });
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let t = sim.submit(&f);
        let steps: Vec<u8> = annotate_frame(&f, &t)
            .iter()
            .map(|e| e.op.paper_step())
            .collect();
        assert!(steps.contains(&3));
        assert!(steps.contains(&4));
        assert!(!steps.contains(&5));
    }

    #[test]
    fn rtt_frame_hits_step_5_not_3() {
        let mut c = 0;
        let mut f = base_frame();
        f.target = RenderTarget::Texture {
            storage: ResourceId::next(&mut c),
            fresh: true,
        };
        let mut sim = PipelineSim::new(Platform::sgx_545());
        let t = sim.submit(&f);
        let steps: Vec<u8> = annotate_frame(&f, &t)
            .iter()
            .map(|e| e.op.paper_step())
            .collect();
        assert!(steps.contains(&5));
        assert!(!steps.contains(&3));
        assert!(!steps.contains(&4));
    }

    #[test]
    fn preserve_frame_hits_step_6() {
        let mut f = base_frame();
        f.fragment.cleared = false;
        let mut sim = PipelineSim::new(Platform::sgx_545());
        let t = sim.submit(&f);
        let events = annotate_frame(&f, &t);
        assert!(events.iter().any(|e| e.op == MemOp::FramebufferReload));
    }

    #[test]
    fn uploads_become_step_2_events() {
        let mut c = 0;
        let mut f = base_frame();
        f.uploads.push(Upload::reuse(ResourceId::next(&mut c), 999));
        let mut sim = PipelineSim::new(Platform::sgx_545());
        let t = sim.submit(&f);
        let events = annotate_frame(&f, &t);
        let up = events
            .iter()
            .find(|e| e.op == MemOp::TextureUpload)
            .expect("upload event");
        assert_eq!(up.bytes, 999);
        assert!(!up.fresh_alloc);
    }

    #[test]
    fn display_names_match_paper_steps() {
        assert_eq!(
            MemOp::CopyFramebufferToTexture.to_string(),
            "step 4: framebuffer -> texture memory"
        );
        for (op, n) in [
            (MemOp::VertexUpload, 1),
            (MemOp::TextureUpload, 2),
            (MemOp::FramebufferWriteback, 3),
            (MemOp::CopyFramebufferToTexture, 4),
            (MemOp::TileToTexture, 5),
            (MemOp::FramebufferReload, 6),
            (MemOp::TileSignatureRead, 7),
        ] {
            assert_eq!(op.paper_step(), n);
        }
    }

    #[test]
    fn skipped_frame_reports_signature_reads_and_smaller_writeback() {
        use crate::work::SkipWork;
        let mut f = base_frame();
        f.fragment.skip = SkipWork {
            skipped_fragments: 32 * 64,
            skipped_tiles: 2,
            signature_bytes: 256,
        };
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let t = sim.submit(&f);
        let events = annotate_frame(&f, &t);
        let sig = events
            .iter()
            .find(|e| e.op == MemOp::TileSignatureRead)
            .expect("signature event");
        assert_eq!(sig.bytes, 256);
        let wb = events
            .iter()
            .find(|e| e.op == MemOp::FramebufferWriteback)
            .expect("writeback event");
        assert_eq!(wb.bytes, (64 * 64 - 32 * 64) * 4);
        // A frame without skips emits no signature event at all.
        let clean = base_frame();
        let mut sim2 = PipelineSim::new(Platform::videocore_iv());
        let t2 = sim2.submit(&clean);
        assert!(annotate_frame(&clean, &t2)
            .iter()
            .all(|e| e.op != MemOp::TileSignatureRead));
    }
}
