//! # mgpu-tbdr — a tile-based deferred-rendering GPU timing simulator
//!
//! This crate models the micro-architecture of low-end mobile GPUs — the
//! Broadcom VideoCore IV and the Imagination PowerVR SGX 545 — at the level
//! of detail needed to reproduce the performance effects studied in
//! *"Optimisation Opportunities and Evaluation for GPGPU Applications on
//! Low-End Mobile GPUs"* (Trompouki & Kosmidis, DATE 2017):
//!
//! * **tile-based rendering**: fragments shade in on-chip tiles and write
//!   back over a modelled memory bus, with optional reload of previous
//!   target contents;
//! * **deferred frame pipelining**: vertex/binning work of frame *i+1*
//!   overlaps fragment work of frame *i*, unless a read-after-write hazard
//!   on a single-buffered texture forces a pipeline flush;
//! * **copy engines**: `glCopyTexImage2D`-style framebuffer→texture copies
//!   run on a DMA engine (VideoCore) or a slow blocking path (SGX);
//! * **display synchronisation**: `eglSwapBuffers`, swap intervals and the
//!   60 Hz vsync grid.
//!
//! The scheduler is *analytic*: it consumes [`FrameWork`] descriptions (what
//! a frame uploads, shades, copies and how it synchronises) and produces
//! exact per-frame timings, so simulating the paper's 10 000-iteration
//! benchmark protocol is cheap.
//!
//! # Examples
//!
//! ```
//! use mgpu_tbdr::{FragmentProfile, FrameWork, PipelineSim, Platform, SyncOp};
//!
//! // A cheap streaming kernel over a 1024x1024 grid, no sync: frames
//! // pipeline at the maximum launch rate.
//! let profile = FragmentProfile {
//!     alu_cycles: 10.0,
//!     streaming_fetches: 2.0,
//!     streaming_fetch_bytes: 8.0,
//!     output_bytes: 4.0,
//!     ..FragmentProfile::default()
//! };
//! let mut frame = FrameWork::simple(1024, 1024, profile);
//! frame.sync = SyncOp::None;
//!
//! let mut sim = PipelineSim::new(Platform::videocore_iv());
//! for _ in 0..100 {
//!     sim.submit(&frame);
//! }
//! let report = sim.finish();
//! let period = report.steady_period(50).expect("enough frames");
//! assert!(period > mgpu_tbdr::SimTime::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

mod chrome;
mod energy;
mod platform;
mod sched;
mod stats;
mod time;
mod trace;
mod work;

pub use chrome::chrome_trace;
pub use energy::{EnergyEstimate, EnergyModel};
pub use platform::{CopyEngine, Platform, PlatformBuilder, ShaderLimits, TileRect};
pub use sched::{steady_state_period, PipelineSim};
pub use stats::{FrameTiming, PeriodStats, SimReport, Traffic, UnitBusy};
pub use time::{Bandwidth, Clock, SimTime};
pub use trace::{annotate_frame, MemOp, TraceEvent};
pub use work::{
    AllocKind, CopyOut, FragmentProfile, FragmentWork, FrameWork, RenderTarget, ResourceId,
    SkipWork, SyncOp, Upload, VertexWork,
};
