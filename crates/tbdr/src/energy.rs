//! First-order energy estimation over simulated runs.
//!
//! Tile-based architectures exist "for bandwidth and power reasons"
//! (paper §II, citing Antochi's memory-bandwidth analyses), so the
//! reproduction carries a simple energy model: dynamic energy proportional
//! to unit busy cycles and to bytes moved over the memory interfaces, plus
//! static (leakage + idle) power integrated over the run. It is a
//! first-order model — good for comparing configurations on one platform,
//! not for absolute joules.

use crate::platform::Platform;
use crate::stats::SimReport;

/// Energy rate constants for a platform.
///
/// Defaults are order-of-magnitude figures for 40–65 nm era mobile SoCs:
/// a few hundred picojoules per core cycle, a few hundred picojoules per
/// DRAM byte, and a few hundred milliwatts of board static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Dynamic energy per fragment-core busy cycle, in nanojoules.
    pub fragment_nj_per_cycle: f64,
    /// Dynamic energy per vertex/binning-unit busy cycle, in nanojoules.
    pub vertex_nj_per_cycle: f64,
    /// Energy per byte moved to/from main memory (uploads, writebacks,
    /// reloads), in nanojoules.
    pub dram_nj_per_byte: f64,
    /// Energy per byte moved by the copy engine, in nanojoules.
    pub copy_nj_per_byte: f64,
    /// Static (idle + leakage) power of GPU and memory interface, in
    /// milliwatts, integrated over total simulated time.
    pub static_mw: f64,
}

impl EnergyModel {
    /// Defaults for the Raspberry Pi class board.
    #[must_use]
    pub fn videocore_iv() -> Self {
        EnergyModel {
            fragment_nj_per_cycle: 0.15,
            vertex_nj_per_cycle: 0.10,
            dram_nj_per_byte: 0.5,
            copy_nj_per_byte: 0.35,
            static_mw: 350.0,
        }
    }

    /// Defaults for the SGX 545 development platform.
    #[must_use]
    pub fn sgx_545() -> Self {
        EnergyModel {
            fragment_nj_per_cycle: 0.12,
            vertex_nj_per_cycle: 0.08,
            dram_nj_per_byte: 0.6,
            copy_nj_per_byte: 0.8,
            static_mw: 300.0,
        }
    }

    /// The default model for a named platform preset (falls back to the
    /// VideoCore figures for custom platforms).
    #[must_use]
    pub fn for_platform(platform: &Platform) -> Self {
        if platform.name.contains("SGX") {
            EnergyModel::sgx_545()
        } else {
            EnergyModel::videocore_iv()
        }
    }

    /// Estimates the energy of a simulated run.
    #[must_use]
    pub fn estimate(&self, report: &SimReport, platform: &Platform) -> EnergyEstimate {
        let frag_cycles = report.busy.fragment.as_secs_f64() * platform.fragment_clock.as_hz();
        let vtx_cycles = report.busy.vertex.as_secs_f64() * platform.vertex_clock.as_hz();
        let dram_bytes = report.traffic.upload_bytes
            + report.traffic.writeback_bytes
            + report.traffic.reload_bytes;
        // The copy engine reads the source and writes the destination.
        let copy_bytes = report.traffic.copy_bytes.saturating_mul(2);

        let fragment_mj = frag_cycles * self.fragment_nj_per_cycle * 1e-6;
        let vertex_mj = vtx_cycles * self.vertex_nj_per_cycle * 1e-6;
        let dram_mj = dram_bytes as f64 * self.dram_nj_per_byte * 1e-6;
        let copy_mj = copy_bytes as f64 * self.copy_nj_per_byte * 1e-6;
        let static_mj = report.total_time.as_secs_f64() * self.static_mw;
        EnergyEstimate {
            fragment_mj,
            vertex_mj,
            dram_mj,
            copy_mj,
            static_mj,
        }
    }
}

/// An energy breakdown, all in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyEstimate {
    /// Fragment-core dynamic energy.
    pub fragment_mj: f64,
    /// Vertex/binning dynamic energy.
    pub vertex_mj: f64,
    /// Main-memory traffic energy.
    pub dram_mj: f64,
    /// Copy-engine traffic energy.
    pub copy_mj: f64,
    /// Static energy over the run's duration.
    pub static_mj: f64,
}

impl EnergyEstimate {
    /// Total energy in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.fragment_mj + self.vertex_mj + self.dram_mj + self.copy_mj + self.static_mj
    }

    /// Dynamic (non-static) energy in millijoules.
    #[must_use]
    pub fn dynamic_mj(&self) -> f64 {
        self.total_mj() - self.static_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::PipelineSim;
    use crate::work::{AllocKind, CopyOut, FragmentProfile, FrameWork, ResourceId, SyncOp};

    fn profile() -> FragmentProfile {
        FragmentProfile {
            alu_cycles: 16.0,
            streaming_fetches: 2.0,
            streaming_fetch_bytes: 8.0,
            output_bytes: 4.0,
            ..FragmentProfile::default()
        }
    }

    fn run(platform: &Platform, frames: usize, copy: bool, sync: SyncOp) -> SimReport {
        let mut sim = PipelineSim::new(platform.clone());
        let mut c = 0;
        for _ in 0..frames {
            let mut f = FrameWork::simple(256, 256, profile());
            f.sync = sync;
            if copy {
                f.copy_out = Some(CopyOut {
                    dest: ResourceId::next(&mut c),
                    bytes: 256 * 256 * 4,
                    alloc: AllocKind::Fresh,
                });
            }
            sim.submit(&f);
        }
        sim.finish()
    }

    #[test]
    fn copies_cost_extra_energy() {
        let p = Platform::videocore_iv();
        let m = EnergyModel::videocore_iv();
        let without = m.estimate(&run(&p, 10, false, SyncOp::None), &p);
        let with = m.estimate(&run(&p, 10, true, SyncOp::None), &p);
        assert!(with.copy_mj > 0.0);
        assert_eq!(without.copy_mj, 0.0);
        assert!(with.total_mj() > without.total_mj());
    }

    #[test]
    fn vsync_waiting_burns_static_energy() {
        let p = Platform::videocore_iv();
        let m = EnergyModel::videocore_iv();
        let vsynced = m.estimate(&run(&p, 10, false, SyncOp::Swap { interval: 1 }), &p);
        let free = m.estimate(&run(&p, 10, false, SyncOp::None), &p);
        // Same dynamic work...
        assert!((vsynced.dynamic_mj() - free.dynamic_mj()).abs() < 1e-9);
        // ...but far more static energy while idling on the vsync grid.
        assert!(vsynced.static_mj > free.static_mj * 3.0);
    }

    #[test]
    fn energy_scales_with_work() {
        let p = Platform::sgx_545();
        let m = EnergyModel::sgx_545();
        let small = m.estimate(&run(&p, 5, false, SyncOp::None), &p);
        let large = m.estimate(&run(&p, 20, false, SyncOp::None), &p);
        assert!(large.fragment_mj > small.fragment_mj * 3.0);
        assert!(large.dram_mj > small.dram_mj * 3.0);
    }

    #[test]
    fn for_platform_picks_the_right_defaults() {
        assert_eq!(
            EnergyModel::for_platform(&Platform::sgx_545()),
            EnergyModel::sgx_545()
        );
        assert_eq!(
            EnergyModel::for_platform(&Platform::videocore_iv()),
            EnergyModel::videocore_iv()
        );
    }

    #[test]
    fn estimate_components_sum_to_total() {
        let p = Platform::videocore_iv();
        let m = EnergyModel::videocore_iv();
        let e = m.estimate(&run(&p, 3, true, SyncOp::Finish), &p);
        let sum = e.fragment_mj + e.vertex_mj + e.dram_mj + e.copy_mj + e.static_mj;
        assert!((e.total_mj() - sum).abs() < 1e-12);
        assert!(e.total_mj() > 0.0);
    }
}
