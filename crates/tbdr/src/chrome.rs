//! Export a [`SimReport`] as Chrome trace-event JSON.
//!
//! Load the output of [`chrome_trace`] in `chrome://tracing` (or Perfetto)
//! to see the deferred pipeline visually: one row per functional unit
//! (CPU, vertex/binning, fragment, copy engine), one slice per frame
//! stage, with hazards visible as gaps.
//!
//! The JSON is emitted by hand (the format is trivial) so the simulator
//! keeps its tiny dependency footprint.

use std::fmt::Write as _;

use crate::stats::SimReport;

/// Escapes a string for a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One complete ("X") trace event.
fn event(out: &mut String, name: &str, tid: u32, start_us: f64, dur_us: f64, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"ts\": {start_us:.3}, \"dur\": {dur_us:.3}, \"cat\": \"gpu\"}}",
        escape(name)
    );
}

/// Thread ids of the four unit rows.
const TID_CPU: u32 = 1;
/// Vertex/binning unit row.
const TID_VERTEX: u32 = 2;
/// Fragment unit row.
const TID_FRAGMENT: u32 = 3;
/// Copy engine row.
const TID_COPY: u32 = 4;

/// Renders `report` as a Chrome trace-event JSON document.
///
/// # Examples
///
/// ```
/// use mgpu_tbdr::{chrome_trace, FragmentProfile, FrameWork, PipelineSim, Platform};
///
/// let mut sim = PipelineSim::new(Platform::videocore_iv());
/// sim.submit(&FrameWork::simple(64, 64, FragmentProfile::default()));
/// let json = chrome_trace(&sim.finish());
/// assert!(json.starts_with('{'));
/// assert!(json.contains("traceEvents"));
/// ```
#[must_use]
pub fn chrome_trace(report: &SimReport) -> String {
    let mut out = String::from("{\n\"traceEvents\": [\n");
    let mut first = true;
    for f in &report.frames {
        let label = if f.label.is_empty() {
            format!("frame {}", f.index)
        } else {
            f.label.clone()
        };
        let us = |t: crate::SimTime| t.as_nanos() as f64 / 1000.0;
        if f.submit > f.cpu_start {
            event(
                &mut out,
                &format!("{label} [cpu]"),
                TID_CPU,
                us(f.cpu_start),
                us(f.submit) - us(f.cpu_start),
                &mut first,
            );
        }
        if f.vtx_end > f.vtx_start {
            event(
                &mut out,
                &format!("{label} [vertex+binning]"),
                TID_VERTEX,
                us(f.vtx_start),
                us(f.vtx_end) - us(f.vtx_start),
                &mut first,
            );
        }
        if f.frag_end > f.frag_start {
            event(
                &mut out,
                &format!("{label} [fragment]"),
                TID_FRAGMENT,
                us(f.frag_start),
                us(f.frag_end) - us(f.frag_start),
                &mut first,
            );
        }
        if let Some((cs, ce)) = f.copy {
            event(
                &mut out,
                &format!("{label} [copy]"),
                TID_COPY,
                us(cs),
                us(ce) - us(cs),
                &mut first,
            );
        }
    }
    out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n");
    let _ = write!(
        out,
        "\"otherData\": {{\"platform\": \"{}\", \"frames\": {}, \"total_ns\": {}}}\n}}\n",
        escape(&report.platform_name),
        report.frames.len(),
        report.total_time.as_nanos()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::sched::PipelineSim;
    use crate::work::{AllocKind, CopyOut, FragmentProfile, FrameWork, ResourceId};

    fn sample_report(with_copy: bool) -> SimReport {
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let mut f = FrameWork::simple(
            128,
            128,
            FragmentProfile {
                alu_cycles: 8.0,
                output_bytes: 4.0,
                ..FragmentProfile::default()
            },
        );
        f.label = "pass \"zero\"".to_owned();
        if with_copy {
            let mut c = 0;
            f.copy_out = Some(CopyOut {
                dest: ResourceId::next(&mut c),
                bytes: 128 * 128 * 4,
                alloc: AllocKind::Fresh,
            });
        }
        sim.submit(&f);
        sim.submit(&f);
        sim.finish()
    }

    #[test]
    fn trace_has_one_slice_per_stage() {
        let json = chrome_trace(&sample_report(true));
        assert_eq!(json.matches("[fragment]").count(), 2);
        assert_eq!(json.matches("[vertex+binning]").count(), 2);
        assert_eq!(json.matches("[copy]").count(), 2);
        assert!(json.contains("\"tid\": 3"));
    }

    #[test]
    fn copyless_frames_emit_no_copy_slice() {
        let json = chrome_trace(&sample_report(false));
        assert_eq!(json.matches("[copy]").count(), 0);
    }

    #[test]
    fn labels_are_json_escaped() {
        let json = chrome_trace(&sample_report(false));
        assert!(json.contains("pass \\\"zero\\\""));
    }

    #[test]
    fn structure_is_balanced_json() {
        // Not a parser, but cheap sanity: balanced braces/brackets and the
        // required top-level keys.
        let json = chrome_trace(&sample_report(true));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"otherData\""));
        assert!(json.contains("VideoCore IV"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
