//! Simulated-time primitives.
//!
//! The simulator measures everything in integer **nanoseconds** of simulated
//! time, wrapped in the [`SimTime`] newtype so that simulated instants can
//! never be confused with byte counts, cycle counts or host wall-clock time.
//!
//! Durations and instants share the same representation (an offset from the
//! simulation epoch), mirroring how hardware trace tools report timestamps.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant (or duration) in simulated time, in nanoseconds.
///
/// `SimTime` is a thin wrapper over `u64`; arithmetic saturates rather than
/// wrapping so that pathological configurations degrade gracefully instead of
/// corrupting schedules.
///
/// # Examples
///
/// ```
/// use mgpu_tbdr::SimTime;
///
/// let start = SimTime::from_micros(10);
/// let len = SimTime::from_nanos(500);
/// assert_eq!((start + len).as_nanos(), 10_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows `u64` nanoseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows `u64` nanoseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds expressed as a float.
    ///
    /// Negative or non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`SimTime::MAX`].
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// The raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (possibly fractional) microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Rounds this instant **up** to the next multiple of `period`.
    ///
    /// Used by the vsync model: a frame finishing mid-interval waits for the
    /// next refresh tick. An instant already on a tick is left unchanged.
    /// A zero `period` returns `self` unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use mgpu_tbdr::SimTime;
    ///
    /// let period = SimTime::from_millis(16);
    /// assert_eq!(
    ///     SimTime::from_millis(20).round_up_to(period),
    ///     SimTime::from_millis(32)
    /// );
    /// assert_eq!(
    ///     SimTime::from_millis(16).round_up_to(period),
    ///     SimTime::from_millis(16)
    /// );
    /// ```
    #[must_use]
    pub const fn round_up_to(self, period: SimTime) -> SimTime {
        if period.0 == 0 {
            return self;
        }
        let rem = self.0 % period.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0.saturating_add(period.0 - rem))
        }
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on division by zero, like integer division.
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A transfer or processing rate in **bytes per second**.
///
/// # Examples
///
/// ```
/// use mgpu_tbdr::{Bandwidth, SimTime};
///
/// let dma = Bandwidth::gibi_per_sec(1.0);
/// // Moving 1 GiB at 1 GiB/s takes one simulated second.
/// assert_eq!(dma.time_for(1 << 30), SimTime::from_secs_f64(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from raw bytes per second.
    ///
    /// Non-finite or non-positive rates are treated as "infinitely fast"
    /// (transfers take zero time), which is useful for disabling a cost.
    #[must_use]
    pub fn bytes_per_sec(rate: f64) -> Self {
        Bandwidth(rate)
    }

    /// Creates a bandwidth from mebibytes (2^20 bytes) per second.
    #[must_use]
    pub fn mebi_per_sec(rate: f64) -> Self {
        Bandwidth(rate * (1u64 << 20) as f64)
    }

    /// Creates a bandwidth from gibibytes (2^30 bytes) per second.
    #[must_use]
    pub fn gibi_per_sec(rate: f64) -> Self {
        Bandwidth(rate * (1u64 << 30) as f64)
    }

    /// The raw rate in bytes per second.
    #[must_use]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time needed to move `bytes` at this rate.
    #[must_use]
    pub fn time_for(self, bytes: u64) -> SimTime {
        if !(self.0.is_finite()) || self.0 <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs_f64(bytes as f64 / self.0)
    }
}

/// A processing clock in hertz, used to convert cycle counts to time.
///
/// # Examples
///
/// ```
/// use mgpu_tbdr::Clock;
///
/// let core = Clock::mhz(250.0);
/// assert_eq!(core.time_for_cycles(250).as_nanos(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Clock(f64);

impl Clock {
    /// Creates a clock from hertz.
    ///
    /// Non-finite or non-positive frequencies make all work free, which is
    /// useful for disabling a cost in ablation studies.
    #[must_use]
    pub fn hz(freq: f64) -> Self {
        Clock(freq)
    }

    /// Creates a clock from megahertz.
    #[must_use]
    pub fn mhz(freq: f64) -> Self {
        Clock(freq * 1e6)
    }

    /// The raw frequency in hertz.
    #[must_use]
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// Time needed to execute `cycles` cycles at this clock.
    #[must_use]
    pub fn time_for_cycles(self, cycles: u64) -> SimTime {
        self.time_for_cycles_f64(cycles as f64)
    }

    /// Time needed to execute a fractional number of cycles (cost models
    /// produce per-fragment averages that are rarely integral).
    #[must_use]
    pub fn time_for_cycles_f64(self, cycles: f64) -> SimTime {
        if !(self.0.is_finite()) || self.0 <= 0.0 || !cycles.is_finite() || cycles <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs_f64(cycles / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_micros(3), SimTime::from_nanos(3_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_nanos(2_000_000));
        assert_eq!(
            SimTime::from_secs_f64(1.5),
            SimTime::from_nanos(1_500_000_000)
        );
    }

    #[test]
    fn simtime_from_secs_clamps_bad_input() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn simtime_arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_nanos(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(1), SimTime::ZERO);
        assert_eq!(
            SimTime::from_nanos(10) - SimTime::from_nanos(4),
            SimTime::from_nanos(6)
        );
    }

    #[test]
    fn round_up_to_vsync_grid() {
        let p = SimTime::from_nanos(100);
        assert_eq!(
            SimTime::from_nanos(0).round_up_to(p),
            SimTime::from_nanos(0)
        );
        assert_eq!(
            SimTime::from_nanos(1).round_up_to(p),
            SimTime::from_nanos(100)
        );
        assert_eq!(
            SimTime::from_nanos(100).round_up_to(p),
            SimTime::from_nanos(100)
        );
        assert_eq!(
            SimTime::from_nanos(101).round_up_to(p),
            SimTime::from_nanos(200)
        );
    }

    #[test]
    fn round_up_to_zero_period_is_identity() {
        let t = SimTime::from_nanos(1234);
        assert_eq!(t.round_up_to(SimTime::ZERO), t);
    }

    #[test]
    fn bandwidth_time_for() {
        let bw = Bandwidth::mebi_per_sec(1.0);
        assert_eq!(bw.time_for(1 << 20), SimTime::from_secs_f64(1.0));
        assert_eq!(Bandwidth::bytes_per_sec(0.0).time_for(12345), SimTime::ZERO);
    }

    #[test]
    fn clock_time_for_cycles() {
        let c = Clock::mhz(1.0);
        assert_eq!(c.time_for_cycles(1), SimTime::from_nanos(1_000));
        assert_eq!(Clock::hz(0.0).time_for_cycles(999), SimTime::ZERO);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs_f64(5.0).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_nanos(n)).sum();
        assert_eq!(total, SimTime::from_nanos(6));
    }
}
