//! Descriptions of per-frame GPU work, as produced by the GL driver layer.
//!
//! One [`FrameWork`] corresponds to one kernel invocation in the paper's
//! terminology: the CPU-side uploads and submission, vertex processing,
//! fragment shading over the render target, the optional framebuffer→texture
//! copy (step 4 of the paper's Fig. 1) and the end-of-frame synchronisation.
//!
//! The types here are deliberately *dumb data*: the GL layer fills them in
//! from real API calls and the [`PipelineSim`](crate::PipelineSim) schedules
//! them. This keeps the timing model testable independently of the GL state
//! machine.

use crate::time::SimTime;

/// An opaque handle identifying a GPU-memory resource (texture storage or
/// buffer storage) across frames, used for dependency tracking.
///
/// Handles compare by identity; the GL layer allocates them via
/// [`ResourceId::next`] on a per-context counter. Note that *storage*, not
/// the GL object name, carries identity: re-allocating a texture's storage
/// (e.g. `tex_image_2d` on an existing texture) yields a fresh `ResourceId`,
/// which is exactly how driver-side renaming breaks false dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(u64);

impl ResourceId {
    /// Creates a handle from a raw counter value.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        ResourceId(raw)
    }

    /// The raw counter value.
    #[must_use]
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Returns this handle and advances `counter` past it.
    #[must_use]
    pub fn next(counter: &mut u64) -> Self {
        let id = ResourceId(*counter);
        *counter += 1;
        id
    }
}

/// Whether an upload targets freshly allocated storage or reuses existing
/// storage in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// `glTexImage2D` / `glBufferData`: allocate new storage, then copy.
    /// The driver may *rename* the storage, so no synchronisation with
    /// in-flight GPU work is needed.
    Fresh,
    /// `glTexSubImage2D` / `glBufferSubData`: copy into existing storage.
    /// If the GPU may still read that storage, the CPU must wait.
    Reuse,
}

/// A CPU→GPU-memory upload performed before the draw (steps 1–2 of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Upload {
    /// Destination storage.
    pub resource: ResourceId,
    /// Size of the storage being allocated (drives allocation cost on
    /// [`AllocKind::Fresh`]; ignored for reuse).
    pub alloc_bytes: u64,
    /// Bytes actually copied from the CPU (zero for allocate-only calls
    /// such as `tex_image_2d(..., None)` on a render target).
    pub copy_bytes: u64,
    /// Fresh allocation or in-place reuse.
    pub alloc: AllocKind,
}

impl Upload {
    /// An upload that allocates and fills `bytes` of fresh storage.
    #[must_use]
    pub fn fresh(resource: ResourceId, bytes: u64) -> Self {
        Upload {
            resource,
            alloc_bytes: bytes,
            copy_bytes: bytes,
            alloc: AllocKind::Fresh,
        }
    }

    /// An upload that rewrites `bytes` of existing storage in place.
    #[must_use]
    pub fn reuse(resource: ResourceId, bytes: u64) -> Self {
        Upload {
            resource,
            alloc_bytes: 0,
            copy_bytes: bytes,
            alloc: AllocKind::Reuse,
        }
    }
}

/// Per-fragment cost profile of the bound fragment kernel, as derived by the
/// shader cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FragmentProfile {
    /// Arithmetic cycles per fragment (after MAD fusion etc.).
    pub alu_cycles: f64,
    /// Texture fetches per fragment whose coordinates come straight from a
    /// varying (streaming, prefetch-friendly).
    pub streaming_fetches: f64,
    /// Bytes moved by streaming fetches, per fragment.
    pub streaming_fetch_bytes: f64,
    /// Texture fetches per fragment whose coordinates are computed in the
    /// shader (dependent reads, defeat prefetch).
    pub dependent_fetches: f64,
    /// Bytes moved by dependent fetches, per fragment.
    pub dependent_fetch_bytes: f64,
    /// Bytes written to the render target per fragment.
    pub output_bytes: f64,
}

/// Tile-redundancy-elimination outcome of one frame's fragment stage.
///
/// When the driver's per-tile signature cache proves a tile's inputs are
/// unchanged since it was last shaded (see *Rendering Elimination*), the
/// tile's fragments are not executed: the hardware instead reads the tile's
/// input signature over the bus and compares it. The zero value means "no
/// tiles skipped" and leaves every cost expression bit-identical to the
/// pre-skip model, which is what keeps the `MGPU_TILE_SKIP=off` timings
/// byte-stable across this feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SkipWork {
    /// Fragments whose shading was elided (their tile was replayed from the
    /// signature cache instead of shaded).
    pub skipped_fragments: u64,
    /// Tiles replayed instead of shaded (each also skips its per-tile
    /// scheduling overhead).
    pub skipped_tiles: u64,
    /// Bytes read over the memory bus to fetch and compare the per-tile
    /// input signatures of the skipped tiles.
    pub signature_bytes: u64,
}

/// The fragment-stage workload of one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentWork {
    /// Number of fragments covered by the draw (render-target coverage,
    /// *including* any fragments later elided by tile skipping).
    pub fragments: u64,
    /// Render-target width in pixels (for tile coverage).
    pub width: u32,
    /// Render-target height in pixels.
    pub height: u32,
    /// Per-fragment cost profile.
    pub profile: FragmentProfile,
    /// Whether the frame began by clearing/invalidating the target, skipping
    /// the expensive reload of previous contents (step 6 of Fig. 1).
    pub cleared: bool,
    /// Work elided by tile-level redundancy elimination.
    pub skip: SkipWork,
}

/// The vertex-stage workload of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VertexWork {
    /// Number of vertices processed.
    pub vertices: u64,
}

/// Where the frame's fragments are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderTarget {
    /// The window framebuffer; `surface` selects the double-buffer surface.
    Framebuffer {
        /// Surface index in `0..platform.framebuffer_surfaces`.
        surface: u32,
    },
    /// An off-screen texture bound through a framebuffer object
    /// (render-to-texture; step 5 of Fig. 1). Single-buffered.
    Texture {
        /// Destination texture storage.
        storage: ResourceId,
        /// Whether the storage was freshly allocated this frame (the driver
        /// may rename it) or reuses storage earlier frames touched.
        fresh: bool,
    },
}

/// A framebuffer→texture copy executed after rendering (step 4 of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyOut {
    /// Destination texture storage.
    pub dest: ResourceId,
    /// Bytes copied.
    pub bytes: u64,
    /// `Fresh` for `copy_tex_image_2d` (new storage each time, renameable),
    /// `Reuse` for `copy_tex_sub_image_2d` (in-place, false-sharing risk).
    pub alloc: AllocKind,
}

/// End-of-frame synchronisation requested by the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncOp {
    /// No synchronisation: the CPU immediately continues submitting
    /// (maximum kernel-launch rate; the paper's "no `eglSwapBuffers`").
    #[default]
    None,
    /// Wait for all of this frame's GPU work to finish (`glFinish`, or
    /// `eglSwapBuffers` with swap interval 0).
    Finish,
    /// `eglSwapBuffers` with the given swap interval: wait for the frame to
    /// finish, then for the next display tick of `interval × refresh`.
    Swap {
        /// Swap interval; 0 behaves like [`SyncOp::Finish`].
        interval: u32,
    },
}

/// Everything one frame (kernel invocation) asks of the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameWork {
    /// Optional label for traces (e.g. `"sgemm pass 3"`).
    pub label: String,
    /// CPU uploads performed before the draw.
    pub uploads: Vec<Upload>,
    /// Extra CPU time spent by the application this frame (e.g. the
    /// float↔RGBA8 data conversions of the GPGPU encoding).
    pub cpu_extra: SimTime,
    /// Vertex-stage workload.
    pub vertex: VertexWork,
    /// Fragment-stage workload.
    pub fragment: FragmentWork,
    /// Render target.
    pub target: RenderTarget,
    /// Texture storages sampled by the fragment kernel.
    pub reads: Vec<ResourceId>,
    /// Optional post-render framebuffer→texture copy.
    pub copy_out: Option<CopyOut>,
    /// End-of-frame synchronisation.
    pub sync: SyncOp,
}

impl FrameWork {
    /// A minimal frame rendering `width`×`height` fragments with the given
    /// profile to the first framebuffer surface; useful as a test fixture.
    #[must_use]
    pub fn simple(width: u32, height: u32, profile: FragmentProfile) -> Self {
        FrameWork {
            label: String::new(),
            uploads: Vec::new(),
            cpu_extra: SimTime::ZERO,
            vertex: VertexWork { vertices: 4 },
            fragment: FragmentWork {
                fragments: u64::from(width) * u64::from(height),
                width,
                height,
                profile,
                cleared: true,
                skip: SkipWork::default(),
            },
            target: RenderTarget::Framebuffer { surface: 0 },
            reads: Vec::new(),
            copy_out: None,
            sync: SyncOp::None,
        }
    }

    /// Total bytes uploaded by the CPU this frame.
    #[must_use]
    pub fn upload_bytes(&self) -> u64 {
        self.uploads.iter().map(|u| u.copy_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_id_counter_advances() {
        let mut c = 0;
        let a = ResourceId::next(&mut c);
        let b = ResourceId::next(&mut c);
        assert_ne!(a, b);
        assert_eq!(b.as_raw(), 1);
        assert_eq!(c, 2);
    }

    #[test]
    fn simple_frame_covers_target() {
        let f = FrameWork::simple(64, 32, FragmentProfile::default());
        assert_eq!(f.fragment.fragments, 64 * 32);
        assert_eq!(f.sync, SyncOp::None);
        assert_eq!(f.upload_bytes(), 0);
    }

    #[test]
    fn upload_bytes_sums() {
        let mut f = FrameWork::simple(4, 4, FragmentProfile::default());
        let mut c = 0;
        f.uploads.push(Upload::fresh(ResourceId::next(&mut c), 100));
        f.uploads.push(Upload::reuse(ResourceId::next(&mut c), 23));
        assert_eq!(f.upload_bytes(), 123);
    }

    #[test]
    fn sync_default_is_none() {
        assert_eq!(SyncOp::default(), SyncOp::None);
    }

    #[test]
    fn skip_defaults_to_nothing_skipped() {
        let s = SkipWork::default();
        assert_eq!(s.skipped_fragments, 0);
        assert_eq!(s.skipped_tiles, 0);
        assert_eq!(s.signature_bytes, 0);
        assert_eq!(
            FrameWork::simple(8, 8, FragmentProfile::default())
                .fragment
                .skip,
            s
        );
    }
}
