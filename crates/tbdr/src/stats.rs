//! Timing results and aggregate statistics produced by the scheduler.

use crate::time::SimTime;

/// When each stage of one frame ran.
///
/// All instants are simulated time; see [`crate::PipelineSim`] for the
/// scheduling rules that produce them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTiming {
    /// Zero-based submission index.
    pub index: usize,
    /// The frame's label, copied from [`crate::FrameWork::label`].
    pub label: String,
    /// When the CPU began working on this frame.
    pub cpu_start: SimTime,
    /// When the CPU finished uploads/conversions and submitted the draw.
    pub submit: SimTime,
    /// Vertex/binning stage interval.
    pub vtx_start: SimTime,
    /// End of the vertex/binning stage.
    pub vtx_end: SimTime,
    /// Fragment stage start (after hazard waits and flushes).
    pub frag_start: SimTime,
    /// Fragment stage end (including producer-chasing constraints).
    pub frag_end: SimTime,
    /// Copy-engine interval, if the frame had a copy-out.
    pub copy: Option<(SimTime, SimTime)>,
    /// When every piece of this frame's GPU work has retired.
    pub retire: SimTime,
    /// When the CPU may start the next frame (after sync/vsync waits).
    pub next_cpu_free: SimTime,
    /// CPU time lost waiting to reuse storage the GPU still referenced.
    pub upload_stall: SimTime,
    /// Whether the frame paid the single-buffered render-to-texture
    /// dependency flush.
    pub dependency_flush: bool,
    /// Time spent waiting for the display tick inside `eglSwapBuffers`.
    pub vsync_wait: SimTime,
}

impl FrameTiming {
    /// Wall-to-wall latency of the frame, CPU start to full retirement.
    #[must_use]
    pub fn latency(&self) -> SimTime {
        self.retire.max(self.next_cpu_free) - self.cpu_start
    }
}

/// Byte counters for the memory movements of the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// CPU→GPU uploads (steps 1–2).
    pub upload_bytes: u64,
    /// Tile writeback into the target (steps 3/5).
    pub writeback_bytes: u64,
    /// Reload of previous target contents into tiles (step 6).
    pub reload_bytes: u64,
    /// Framebuffer→texture copy payload (step 4).
    pub copy_bytes: u64,
    /// Per-tile input signatures fetched and compared for tiles whose
    /// shading was elided by tile-level redundancy elimination. Zero unless
    /// `MGPU_TILE_SKIP=on` produced actual skips.
    pub signature_bytes: u64,
}

impl Traffic {
    /// Total bytes moved.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.upload_bytes
            + self.writeback_bytes
            + self.reload_bytes
            + self.copy_bytes
            + self.signature_bytes
    }
}

/// Accumulated busy time per functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnitBusy {
    /// CPU (driver + application) busy time.
    pub cpu: SimTime,
    /// Vertex/binning unit busy time.
    pub vertex: SimTime,
    /// Fragment unit busy time.
    pub fragment: SimTime,
    /// Copy engine busy time.
    pub copy: SimTime,
}

/// Distribution of inter-frame retirement periods (see
/// [`SimReport::period_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodStats {
    /// Mean period.
    pub mean: SimTime,
    /// Median period.
    pub p50: SimTime,
    /// 90th percentile.
    pub p90: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Worst observed period.
    pub max: SimTime,
}

/// The full result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Name of the simulated platform.
    pub platform_name: String,
    /// Per-frame timings, in submission order.
    pub frames: Vec<FrameTiming>,
    /// Aggregate traffic counters.
    pub traffic: Traffic,
    /// Aggregate unit busy times.
    pub busy: UnitBusy,
    /// Retirement time of the last frame.
    pub total_time: SimTime,
}

impl SimReport {
    /// Average steady-state period between frame retirements, skipping the
    /// first `warmup` frames.
    ///
    /// Returns `None` when fewer than two frames remain after warm-up.
    #[must_use]
    pub fn steady_period(&self, warmup: usize) -> Option<SimTime> {
        let tail = &self.frames[warmup.min(self.frames.len())..];
        if tail.len() < 2 {
            return None;
        }
        let span = tail[tail.len() - 1].retire - tail[0].retire;
        Some(span / (tail.len() - 1) as u64)
    }

    /// Frame throughput in simulated frames per second, after warm-up.
    #[must_use]
    pub fn throughput_hz(&self, warmup: usize) -> Option<f64> {
        self.steady_period(warmup).map(|p| {
            let s = p.as_secs_f64();
            if s > 0.0 {
                1.0 / s
            } else {
                f64::INFINITY
            }
        })
    }

    /// Distribution statistics of the inter-retirement periods after
    /// `warmup` frames: (mean, p50, p90, p99, max).
    ///
    /// Useful for spotting vsync beating and hazard-induced jitter that a
    /// plain average hides. Returns `None` with fewer than two
    /// post-warm-up frames.
    #[must_use]
    pub fn period_stats(&self, warmup: usize) -> Option<PeriodStats> {
        let tail = &self.frames[warmup.min(self.frames.len())..];
        if tail.len() < 2 {
            return None;
        }
        let mut gaps: Vec<SimTime> = tail
            .windows(2)
            .map(|w| w[1].retire.saturating_sub(w[0].retire))
            .collect();
        gaps.sort_unstable();
        let total: SimTime = gaps.iter().copied().sum();
        let pick = |q: f64| {
            let idx = ((gaps.len() - 1) as f64 * q).round() as usize;
            gaps[idx]
        };
        Some(PeriodStats {
            mean: total / gaps.len() as u64,
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: gaps.last().copied().unwrap_or(SimTime::ZERO),
        })
    }

    /// Utilisation of each unit over the whole run, in `[0, 1]`.
    #[must_use]
    pub fn utilisation(&self) -> [(&'static str, f64); 4] {
        let total = self.total_time.as_secs_f64().max(f64::MIN_POSITIVE);
        [
            ("cpu", self.busy.cpu.as_secs_f64() / total),
            ("vertex", self.busy.vertex.as_secs_f64() / total),
            ("fragment", self.busy.fragment.as_secs_f64() / total),
            ("copy", self.busy.copy.as_secs_f64() / total),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(i: usize, retire_ns: u64) -> FrameTiming {
        FrameTiming {
            index: i,
            label: String::new(),
            cpu_start: SimTime::ZERO,
            submit: SimTime::ZERO,
            vtx_start: SimTime::ZERO,
            vtx_end: SimTime::ZERO,
            frag_start: SimTime::ZERO,
            frag_end: SimTime::from_nanos(retire_ns),
            copy: None,
            retire: SimTime::from_nanos(retire_ns),
            next_cpu_free: SimTime::from_nanos(retire_ns),
            upload_stall: SimTime::ZERO,
            dependency_flush: false,
            vsync_wait: SimTime::ZERO,
        }
    }

    fn report(retires: &[u64]) -> SimReport {
        SimReport {
            platform_name: "test".to_owned(),
            frames: retires
                .iter()
                .enumerate()
                .map(|(i, &r)| timing(i, r))
                .collect(),
            traffic: Traffic::default(),
            busy: UnitBusy::default(),
            total_time: SimTime::from_nanos(*retires.last().unwrap_or(&0)),
        }
    }

    #[test]
    fn period_stats_order_and_bounds() {
        let r = report(&[0, 100, 200, 350, 450, 1000]);
        let st = r.period_stats(0).unwrap();
        assert_eq!(st.mean, SimTime::from_nanos(200));
        assert!(st.p50 <= st.p90 && st.p90 <= st.p99 && st.p99 <= st.max);
        assert_eq!(st.max, SimTime::from_nanos(550));
        assert!(r.period_stats(5).is_none());
    }

    #[test]
    fn period_stats_uniform_stream_is_flat() {
        let r = report(&[100, 200, 300, 400, 500]);
        let st = r.period_stats(0).unwrap();
        assert_eq!(st.p50, st.max);
        assert_eq!(st.mean, SimTime::from_nanos(100));
    }

    #[test]
    fn steady_period_averages_gaps() {
        let r = report(&[100, 200, 300, 400]);
        assert_eq!(r.steady_period(0), Some(SimTime::from_nanos(100)));
        assert_eq!(r.steady_period(2), Some(SimTime::from_nanos(100)));
    }

    #[test]
    fn steady_period_needs_two_frames() {
        let r = report(&[100]);
        assert_eq!(r.steady_period(0), None);
        let r2 = report(&[100, 200]);
        assert_eq!(r2.steady_period(1), None);
        assert_eq!(r2.steady_period(5), None);
    }

    #[test]
    fn throughput_inverts_period() {
        let r = report(&[0, 1_000_000, 2_000_000]);
        let hz = r.throughput_hz(0).unwrap();
        assert!((hz - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn traffic_total_sums_counters() {
        let t = Traffic {
            upload_bytes: 1,
            writeback_bytes: 2,
            reload_bytes: 3,
            copy_bytes: 4,
            signature_bytes: 5,
        };
        assert_eq!(t.total(), 15);
    }

    #[test]
    fn latency_spans_cpu_to_retire() {
        let mut t = timing(0, 500);
        t.cpu_start = SimTime::from_nanos(100);
        assert_eq!(t.latency(), SimTime::from_nanos(400));
    }
}
