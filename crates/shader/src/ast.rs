//! Abstract syntax tree of the kernel shading language.
//!
//! The language is the fragment-shader subset of GLSL ES 1.00 that the
//! paper's kernels exercise: `float`/`vec2`–`vec4` arithmetic, `uniform` /
//! `varying` / `const` globals, swizzles, built-in calls, user functions
//! (inlined during lowering), constant-bounded `for` loops (fully unrolled)
//! and predicated `if`.

/// Scalar and vector types of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A single float.
    Float,
    /// A 2-component float vector.
    Vec2,
    /// A 3-component float vector.
    Vec3,
    /// A 4-component float vector.
    Vec4,
    /// A boolean (result of comparisons; only usable in conditions).
    Bool,
    /// A 2D texture sampler (uniform-only).
    Sampler2d,
    /// The return type of `main` and procedures.
    Void,
}

impl Type {
    /// Number of float components, or `None` for non-numeric types.
    #[must_use]
    pub fn components(self) -> Option<u8> {
        match self {
            Type::Float => Some(1),
            Type::Vec2 => Some(2),
            Type::Vec3 => Some(3),
            Type::Vec4 => Some(4),
            _ => None,
        }
    }

    /// The vector type with `n` components.
    #[must_use]
    pub fn vector(n: u8) -> Option<Type> {
        match n {
            1 => Some(Type::Float),
            2 => Some(Type::Vec2),
            3 => Some(Type::Vec3),
            4 => Some(Type::Vec4),
            _ => None,
        }
    }

    /// Parses a type keyword.
    #[must_use]
    pub fn from_keyword(word: &str) -> Option<Type> {
        Some(match word {
            "float" => Type::Float,
            "vec2" => Type::Vec2,
            "vec3" => Type::Vec3,
            "vec4" => Type::Vec4,
            "bool" => Type::Bool,
            "sampler2D" => Type::Sampler2d,
            "void" => Type::Void,
            _ => return None,
        })
    }

    /// The GLSL spelling of the type.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            Type::Float => "float",
            Type::Vec2 => "vec2",
            Type::Vec3 => "vec3",
            Type::Vec4 => "vec4",
            Type::Bool => "bool",
            Type::Sampler2d => "sampler2D",
            Type::Void => "void",
        }
    }
}

/// Storage qualifier of a global declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qualifier {
    /// Set by the application per draw; constant across fragments.
    Uniform,
    /// Interpolated per fragment (fed by the vertex stage).
    Varying,
    /// Compile-time constant.
    Const,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator produces a boolean.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator takes boolean operands.
    #[must_use]
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A float literal.
    Literal(f32),
    /// `true` / `false`.
    BoolLiteral(bool),
    /// A variable reference.
    Var(String),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A call to a built-in or user function (or vector constructor).
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source line of the call.
        line: u32,
    },
    /// A swizzle / component access, e.g. `v.xyz`.
    Swizzle {
        /// The swizzled value.
        base: Box<Expr>,
        /// Component letters (validated during type checking).
        fields: String,
        /// Source line.
        line: u32,
    },
    /// `cond ? a : b`.
    Ternary {
        /// The boolean condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
}

/// Compound-assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// An assignment target: a variable with an optional swizzle.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Variable name (`gl_FragColor` included).
    pub name: String,
    /// Optional component selection on the left-hand side.
    pub swizzle: Option<String>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local declaration list, e.g. `float a = 0.0, b;`.
    Decl {
        /// Declared type.
        ty: Type,
        /// Names with optional initialisers.
        names: Vec<(String, Option<Expr>)>,
        /// Source line.
        line: u32,
    },
    /// An assignment.
    Assign {
        /// Target.
        target: LValue,
        /// Plain or compound assignment.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// A `for` loop with a declared counter. Bounds must be compile-time
    /// constant; the compiler fully unrolls the loop.
    For {
        /// Counter type (must be `float`).
        var_ty: Type,
        /// Counter name.
        var: String,
        /// Initial value expression.
        init: Expr,
        /// Continuation condition (compared against the counter).
        cond: Expr,
        /// Per-iteration update.
        update_op: AssignOp,
        /// Update amount expression.
        update: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// An `if`/`else`, lowered by predication.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `return expr;` — only allowed as the final statement of a non-void
    /// user function.
    Return {
        /// Returned value (absent in `void` functions).
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect (a `void` call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Storage qualifier.
    pub qualifier: Qualifier,
    /// Declared type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Initialiser (required for `const`).
    pub init: Option<Expr>,
    /// Source line.
    pub line: u32,
}

/// A function definition (user functions are inlined; `main` is the entry).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(Type, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A parsed shader program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Global declarations in order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, `main` among them.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// A clone with every source-line field zeroed, so two programs can be
    /// compared *structurally* — the `parse(print(ast)) == ast` round-trip
    /// property cares about shape and values, not where tokens sat in the
    /// original text.
    #[must_use]
    pub fn without_lines(&self) -> Program {
        Program {
            globals: self
                .globals
                .iter()
                .map(|g| GlobalDecl {
                    qualifier: g.qualifier,
                    ty: g.ty,
                    name: g.name.clone(),
                    init: g.init.as_ref().map(strip_expr),
                    line: 0,
                })
                .collect(),
            functions: self
                .functions
                .iter()
                .map(|f| Function {
                    ret: f.ret,
                    name: f.name.clone(),
                    params: f.params.clone(),
                    body: f.body.iter().map(strip_stmt).collect(),
                    line: 0,
                })
                .collect(),
        }
    }
}

fn strip_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Literal(x) => Expr::Literal(*x),
        Expr::BoolLiteral(b) => Expr::BoolLiteral(*b),
        Expr::Var(name) => Expr::Var(name.clone()),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(strip_expr(expr)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(strip_expr(lhs)),
            rhs: Box::new(strip_expr(rhs)),
        },
        Expr::Call { name, args, .. } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(strip_expr).collect(),
            line: 0,
        },
        Expr::Swizzle { base, fields, .. } => Expr::Swizzle {
            base: Box::new(strip_expr(base)),
            fields: fields.clone(),
            line: 0,
        },
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => Expr::Ternary {
            cond: Box::new(strip_expr(cond)),
            then_expr: Box::new(strip_expr(then_expr)),
            else_expr: Box::new(strip_expr(else_expr)),
        },
    }
}

fn strip_stmt(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Decl { ty, names, .. } => Stmt::Decl {
            ty: *ty,
            names: names
                .iter()
                .map(|(n, e)| (n.clone(), e.as_ref().map(strip_expr)))
                .collect(),
            line: 0,
        },
        Stmt::Assign {
            target, op, value, ..
        } => Stmt::Assign {
            target: target.clone(),
            op: *op,
            value: strip_expr(value),
            line: 0,
        },
        Stmt::For {
            var_ty,
            var,
            init,
            cond,
            update_op,
            update,
            body,
            ..
        } => Stmt::For {
            var_ty: *var_ty,
            var: var.clone(),
            init: strip_expr(init),
            cond: strip_expr(cond),
            update_op: *update_op,
            update: strip_expr(update),
            body: body.iter().map(strip_stmt).collect(),
            line: 0,
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => Stmt::If {
            cond: strip_expr(cond),
            then_branch: then_branch.iter().map(strip_stmt).collect(),
            else_branch: else_branch.iter().map(strip_stmt).collect(),
            line: 0,
        },
        Stmt::Return { value, .. } => Stmt::Return {
            value: value.as_ref().map(strip_expr),
            line: 0,
        },
        Stmt::ExprStmt { expr, .. } => Stmt::ExprStmt {
            expr: strip_expr(expr),
            line: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_components() {
        assert_eq!(Type::Float.components(), Some(1));
        assert_eq!(Type::Vec4.components(), Some(4));
        assert_eq!(Type::Sampler2d.components(), None);
        assert_eq!(Type::vector(3), Some(Type::Vec3));
        assert_eq!(Type::vector(5), None);
    }

    #[test]
    fn type_keyword_round_trip() {
        for t in [
            Type::Float,
            Type::Vec2,
            Type::Vec3,
            Type::Vec4,
            Type::Bool,
            Type::Sampler2d,
            Type::Void,
        ] {
            assert_eq!(Type::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(Type::from_keyword("mat4"), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Eq.is_logical());
    }
}
