//! Lane-batched (SoA) execution of compiled shaders.
//!
//! [`BatchExecutor`] is the throughput tier of the two-tier execution
//! engine: it runs one IR instruction across a batch of up to [`LANES`]
//! fragments before advancing to the next instruction, with every virtual
//! register stored as four `[f32; LANES]` component planes. That layout
//! amortises the per-instruction enum dispatch that dominates the scalar
//! [`Executor`](crate::Executor) and turns the per-component loops into
//! straight-line array walks the compiler can autovectorise.
//!
//! The contract is strict bit-identity: for every lane, every instruction
//! evaluates exactly the f32 expression `eval_pure_op` evaluates for a
//! single fragment — same broadcast rules, same accumulation order, same
//! `mul24` truncation — so a batch of N fragments produces byte-for-byte
//! the outputs of N scalar runs. The one IEEE 754 carve-out is NaN
//! *payloads*: when two different NaN bit patterns meet in one operation
//! the propagated payload is unspecified and codegen may commute the
//! operands, so the two tiers can surface different (equally valid) NaN
//! payloads. NaN-ness itself is deterministic, and the rasteriser's
//! quantisation maps every NaN to the same byte, so pipeline output stays
//! byte-identical. The property tests in `tests/batch.rs` check all of
//! this across random shaders, NaN/±inf inputs and partial batches.

use crate::error::ExecError;
use crate::ir::{CmpOp, InputKind, Op, Reg, Shader};
use crate::vm::{register_widths_into, truncate_to_24bit, Sampler, UniformValues};

/// Number of fragments evaluated per batch.
pub const LANES: usize = 64;

/// One component plane: the same register component across all lanes.
type Plane = [f32; LANES];

/// One virtual register: four component planes.
type RegPlanes = [Plane; 4];

/// Executes a compiled shader for batches of fragments in SoA form.
///
/// Varyings are supplied slot-major with a stride of [`LANES`]: the value
/// of varying slot `s` for lane `l` lives at `varyings[s * LANES + l]`.
/// Unused tail lanes of a partial batch may hold anything; they are
/// evaluated but never read back.
///
/// # Examples
///
/// ```
/// use mgpu_shader::{compile, BatchExecutor, Executor, UniformValues, LANES};
///
/// let shader = compile("
///     varying vec2 v_coord;
///     void main() { gl_FragColor = vec4(v_coord, 0.0, 1.0); }
/// ").expect("compiles");
/// let uniforms = UniformValues::new();
///
/// let mut varyings = vec![[0.0f32; 4]; LANES];
/// varyings[0] = [0.25, 0.5, 0.0, 0.0];
/// varyings[1] = [0.75, 0.1, 0.0, 0.0];
/// let mut out = [[0.0f32; 4]; 2];
/// let mut batch = BatchExecutor::new(&shader, &uniforms).expect("binds");
/// batch.run(&varyings, 2, &[], &mut out).expect("runs");
///
/// let mut scalar = Executor::new(&shader, &uniforms).expect("binds");
/// assert_eq!(out[0], scalar.run(&[varyings[0]], &[]).expect("runs"));
/// assert_eq!(out[1], scalar.run(&[varyings[1]], &[]).expect("runs"));
/// ```
pub struct BatchExecutor<'s> {
    shader: &'s Shader,
    core: BatchCore,
}

impl<'s> BatchExecutor<'s> {
    /// Prepares a batch executor, resolving every uniform (broadcast to
    /// all lanes).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a uniform declared by the shader has no
    /// value in `uniforms`.
    pub fn new(shader: &'s Shader, uniforms: &UniformValues) -> Result<Self, ExecError> {
        Ok(BatchExecutor {
            shader,
            core: BatchCore::new(shader, uniforms)?,
        })
    }

    /// Runs the shader for a batch of `n` fragments (`1..=LANES`).
    ///
    /// `varyings` is slot-major with stride [`LANES`] (see the type-level
    /// docs); `samplers` supplies one implementation per texture unit;
    /// lane `l`'s output colour is written to `out[l]`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when `n` is out of range, the buffers are too
    /// small for the shader's varying count, or a texture unit referenced
    /// by the shader has no sampler bound.
    pub fn run(
        &mut self,
        varyings: &[[f32; 4]],
        n: usize,
        samplers: &[&dyn Sampler],
        out: &mut [[f32; 4]],
    ) -> Result<(), ExecError> {
        self.core.run(self.shader, varyings, n, samplers, out)
    }
}

/// The shader-independent state of a [`BatchExecutor`]: the SoA register
/// planes, width table and varying bindings, with uniforms broadcast in.
///
/// Like [`ExecCore`](crate::vm::ExecCore) for the scalar tier, a
/// `BatchCore` does not borrow its shader — the shader is passed to every
/// [`BatchCore::run`] — so long-lived caches can own the core next to the
/// (specialised) shader it executes, and [`BatchCore::rebind`] re-targets
/// the core without reallocating its (large) register planes when the new
/// shader fits. Lane planes are rewritten before they are read on every
/// run (single-assignment IR; partial batches only ever read back the
/// active `n` lanes), so reuse across draws is bitwise invisible.
pub struct BatchCore {
    widths: Vec<u8>,
    regs: Vec<RegPlanes>,
    varying_regs: Vec<Reg>,
}

impl BatchCore {
    /// Prepares a core for `shader`, resolving every uniform (broadcast
    /// to all lanes).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a uniform declared by the shader has no
    /// value in `uniforms`.
    pub fn new(shader: &Shader, uniforms: &UniformValues) -> Result<Self, ExecError> {
        let mut core = BatchCore {
            widths: Vec::new(),
            regs: Vec::new(),
            varying_regs: Vec::new(),
        };
        core.rebind(shader, uniforms)?;
        Ok(core)
    }

    /// Re-binds this core to a (possibly different) shader and uniform
    /// set, reusing the register-plane allocation where it fits. After a
    /// successful rebind the core is bit-identical in behaviour to a fresh
    /// [`BatchCore::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a uniform declared by the shader has no
    /// value in `uniforms`; the core is left safe to rebind again but must
    /// not be run.
    pub fn rebind(&mut self, shader: &Shader, uniforms: &UniformValues) -> Result<(), ExecError> {
        register_widths_into(shader, &mut self.widths);
        // Re-zero every plane, not just grown ones: a shader swap with an
        // equal `reg_count` would otherwise keep the previous shader's
        // plane contents, and hand-built IR is allowed to read registers
        // it never writes (the scalar tier reads 0.0 there). `clear` +
        // `resize` keeps the allocation, so rebinding stays cheap.
        self.regs.clear();
        self.regs
            .resize(shader.reg_count as usize, [[0.0f32; LANES]; 4]);
        self.varying_regs.clear();
        for slot in &shader.inputs {
            match slot.kind {
                InputKind::Uniform => {
                    let v = uniforms.get(&slot.name).ok_or_else(|| {
                        ExecError::new(format!("uniform `{}` is not set", slot.name))
                    })?;
                    let planes = &mut self.regs[slot.reg.0 as usize];
                    for c in 0..4 {
                        planes[c] = [v[c]; LANES];
                    }
                }
                InputKind::Varying => self.varying_regs.push(slot.reg),
            }
        }
        Ok(())
    }

    /// Runs `shader` for a batch of `n` fragments (`1..=LANES`). `shader`
    /// must be the shader this core was last (re)bound to.
    ///
    /// # Errors
    ///
    /// As [`BatchExecutor::run`], plus an [`ExecError`] when `shader` is
    /// not the bound shader (register-count mismatch).
    pub fn run(
        &mut self,
        shader: &Shader,
        varyings: &[[f32; 4]],
        n: usize,
        samplers: &[&dyn Sampler],
        out: &mut [[f32; 4]],
    ) -> Result<(), ExecError> {
        if shader.reg_count as usize != self.regs.len() {
            return Err(ExecError::new(
                "batch core run with a shader it was not bound to",
            ));
        }
        if n == 0 || n > LANES {
            return Err(ExecError::new(format!(
                "batch size {n} outside 1..={LANES}"
            )));
        }
        if varyings.len() < self.varying_regs.len() * LANES {
            return Err(ExecError::new(format!(
                "shader has {} varyings, {} lane-strided values provided",
                self.varying_regs.len(),
                varyings.len()
            )));
        }
        if out.len() < n {
            return Err(ExecError::new(format!(
                "output buffer holds {} lanes, batch has {n}",
                out.len()
            )));
        }
        for (slot, reg) in self.varying_regs.iter().enumerate() {
            let values = &varyings[slot * LANES..(slot + 1) * LANES];
            let planes = &mut self.regs[reg.0 as usize];
            for (l, v) in values[..n].iter().enumerate() {
                for c in 0..4 {
                    planes[c][l] = v[c];
                }
            }
        }
        let mut fetched = [[0.0f32; 4]; LANES];
        for instr in &shader.instrs {
            // Zeroed like the scalar evaluator's result: components the op
            // leaves unwritten must read back as 0.0.
            let mut scratch: RegPlanes = [[0.0; LANES]; 4];
            match instr.op {
                Op::TexFetch { sampler } => {
                    let s = samplers.get(sampler as usize).ok_or_else(|| {
                        ExecError::new(format!("texture unit {sampler} has no sampler bound"))
                    })?;
                    let coord = &self.regs[instr.srcs[0].0 as usize];
                    s.fetch_batch(&coord[0][..n], &coord[1][..n], &mut fetched[..n]);
                    for (l, t) in fetched[..n].iter().enumerate() {
                        for c in 0..4 {
                            scratch[c][l] = t[c];
                        }
                    }
                }
                ref op => eval_op_lanes(
                    op,
                    &self.regs,
                    &self.widths,
                    &instr.srcs,
                    instr.width,
                    n,
                    &mut scratch,
                ),
            }
            self.regs[instr.dst.0 as usize] = scratch;
        }
        let planes = &self.regs[shader.output.0 as usize];
        for (l, o) in out[..n].iter_mut().enumerate() {
            for c in 0..4 {
                o[c] = planes[c][l];
            }
        }
        Ok(())
    }
}

/// Evaluates one pure op across `n` lanes into `out` (pre-zeroed by the
/// caller, mirroring the scalar evaluator's zero-initialised result).
///
/// Every arm computes, per lane, exactly the f32 expression the scalar
/// `eval_pure_op` computes — bit-identity depends on it, so the arms are
/// kept in the same order and written with the same operations.
// Index loops mirror the per-component ISA semantics more clearly than
// iterator chains here, and keep the lane loops autovectorisable.
#[allow(clippy::needless_range_loop)]
fn eval_op_lanes(
    op: &Op,
    regs: &[RegPlanes],
    widths: &[u8],
    srcs: &[Reg],
    width: u8,
    n: usize,
    out: &mut RegPlanes,
) {
    // Broadcast read: a width-1 source supplies its component 0 plane for
    // every requested component, matching the scalar evaluator's `read`.
    let plane = |i: usize, c: usize| -> &Plane {
        let r = srcs[i].0 as usize;
        let pc = if widths[r] == 1 { 0 } else { c };
        &regs[r][pc]
    };
    // Raw read: component `c` of source `i` with no broadcast, matching
    // the scalar evaluator's direct `srcs[i][c]` accesses.
    let raw = |i: usize, c: usize| -> &Plane { &regs[srcs[i].0 as usize][c] };
    let w = width as usize;
    match op {
        Op::Const(v) => {
            for c in 0..4 {
                out[c][..n].fill(v[c]);
            }
        }
        Op::Mov => {
            for c in 0..w {
                out[c][..n].copy_from_slice(&plane(0, c)[..n]);
            }
        }
        Op::Neg => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = -a[l];
                }
            }
        }
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Min
        | Op::Max
        | Op::ModOp
        | Op::Pow
        | Op::Step => {
            for c in 0..w {
                let (a, b) = (plane(0, c), plane(1, c));
                let o = &mut out[c];
                match op {
                    Op::Add => {
                        for l in 0..n {
                            o[l] = a[l] + b[l];
                        }
                    }
                    Op::Sub => {
                        for l in 0..n {
                            o[l] = a[l] - b[l];
                        }
                    }
                    Op::Mul => {
                        for l in 0..n {
                            o[l] = a[l] * b[l];
                        }
                    }
                    Op::Div => {
                        for l in 0..n {
                            o[l] = a[l] / b[l];
                        }
                    }
                    Op::Min => {
                        for l in 0..n {
                            o[l] = a[l].min(b[l]);
                        }
                    }
                    Op::Max => {
                        for l in 0..n {
                            o[l] = a[l].max(b[l]);
                        }
                    }
                    Op::ModOp => {
                        for l in 0..n {
                            o[l] = a[l] - b[l] * (a[l] / b[l]).floor();
                        }
                    }
                    Op::Pow => {
                        for l in 0..n {
                            o[l] = a[l].powf(b[l]);
                        }
                    }
                    Op::Step => {
                        for l in 0..n {
                            o[l] = if b[l] < a[l] { 0.0 } else { 1.0 };
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
        Op::Mad => {
            for c in 0..w {
                let (a, b, acc) = (plane(0, c), plane(1, c), plane(2, c));
                for l in 0..n {
                    out[c][l] = a[l] * b[l] + acc[l];
                }
            }
        }
        Op::Mul24 => {
            let (a, b) = (plane(0, 0), plane(1, 0));
            for l in 0..n {
                out[0][l] = truncate_to_24bit(truncate_to_24bit(a[l]) * truncate_to_24bit(b[l]));
            }
        }
        Op::Dot => {
            let (r0, r1) = (srcs[0].0 as usize, srcs[1].0 as usize);
            let nc = widths[r0].max(widths[r1]) as usize;
            // `out[0]` starts at 0.0; accumulating component-major keeps
            // each lane's addition order identical to the scalar loop.
            for c in 0..nc {
                let (a, b) = (plane(0, c), plane(1, c));
                for l in 0..n {
                    out[0][l] += a[l] * b[l];
                }
            }
        }
        Op::Clamp => {
            for c in 0..w {
                let (x, lo, hi) = (plane(0, c), plane(1, c), plane(2, c));
                for l in 0..n {
                    out[c][l] = x[l].max(lo[l]).min(hi[l]);
                }
            }
        }
        Op::Floor => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l].floor();
                }
            }
        }
        Op::Fract => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l] - a[l].floor();
                }
            }
        }
        Op::Abs => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l].abs();
                }
            }
        }
        Op::Sqrt => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l].sqrt();
                }
            }
        }
        Op::Sin => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l].sin();
                }
            }
        }
        Op::Cos => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l].cos();
                }
            }
        }
        Op::Exp2 => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l].exp2();
                }
            }
        }
        Op::Log2 => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = a[l].log2();
                }
            }
        }
        Op::InverseSqrt => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = 1.0 / a[l].sqrt();
                }
            }
        }
        Op::Sign => {
            for c in 0..w {
                let a = plane(0, c);
                for l in 0..n {
                    out[c][l] = if a[l] > 0.0 {
                        1.0
                    } else if a[l] < 0.0 {
                        -1.0
                    } else {
                        0.0
                    };
                }
            }
        }
        Op::Mix => {
            for c in 0..w {
                let (a, b, t) = (plane(0, c), plane(1, c), plane(2, c));
                for l in 0..n {
                    out[c][l] = a[l] * (1.0 - t[l]) + b[l] * t[l];
                }
            }
        }
        Op::Cmp(cmp) => {
            let (a, b) = (raw(0, 0), raw(1, 0));
            for l in 0..n {
                let r = match cmp {
                    CmpOp::Lt => a[l] < b[l],
                    CmpOp::Le => a[l] <= b[l],
                    CmpOp::Gt => a[l] > b[l],
                    CmpOp::Ge => a[l] >= b[l],
                    CmpOp::Eq => a[l] == b[l],
                    CmpOp::Ne => a[l] != b[l],
                };
                out[0][l] = if r { 1.0 } else { 0.0 };
            }
        }
        Op::And => {
            let (a, b) = (raw(0, 0), raw(1, 0));
            for l in 0..n {
                out[0][l] = if a[l] != 0.0 && b[l] != 0.0 { 1.0 } else { 0.0 };
            }
        }
        Op::Or => {
            let (a, b) = (raw(0, 0), raw(1, 0));
            for l in 0..n {
                out[0][l] = if a[l] != 0.0 || b[l] != 0.0 { 1.0 } else { 0.0 };
            }
        }
        Op::Not => {
            let a = raw(0, 0);
            for l in 0..n {
                out[0][l] = if a[l] != 0.0 { 0.0 } else { 1.0 };
            }
        }
        Op::Select => {
            let mask = raw(0, 0);
            for c in 0..w {
                let (t, e) = (plane(1, c), plane(2, c));
                for l in 0..n {
                    out[c][l] = if mask[l] != 0.0 { t[l] } else { e[l] };
                }
            }
        }
        Op::Swizzle(pattern) => {
            for c in 0..w {
                out[c][..n].copy_from_slice(&raw(0, pattern[c] as usize)[..n]);
            }
        }
        Op::Merge { select } => {
            for c in 0..w {
                let src = if select[c] == 0xFF {
                    raw(0, c)
                } else {
                    plane(1, select[c] as usize)
                };
                out[c][..n].copy_from_slice(&src[..n]);
            }
        }
        Op::Construct => {
            let mut k = 0usize;
            for i in 0..srcs.len() {
                let sw = widths[srcs[i].0 as usize] as usize;
                for c in 0..sw {
                    if k < 4 {
                        out[k][..n].copy_from_slice(&raw(i, c)[..n]);
                        k += 1;
                    }
                }
            }
        }
        // Handled by the caller; keeping the arm makes the match total.
        Op::TexFetch { .. } => unreachable!("texture fetches are dispatched by the batch loop"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::ImageSampler;
    use crate::{compile, Executor};

    fn check(source: &str, uniforms: &UniformValues, cases: &[[f32; 4]]) {
        let sh = compile(source).unwrap();
        let mut scalar = Executor::new(&sh, uniforms).unwrap();
        let mut batch = BatchExecutor::new(&sh, uniforms).unwrap();
        let img_data: Vec<u8> = (0..4 * 4 * 4).map(|i| (i * 53 % 256) as u8).collect();
        let img = ImageSampler::new(4, 4, img_data);
        let samplers: [&dyn Sampler; 1] = [&img];

        let n = cases.len();
        assert!(n <= LANES);
        let mut varyings = vec![[0.0f32; 4]; LANES];
        varyings[..n].copy_from_slice(cases);
        let mut out = vec![[0.0f32; 4]; n];
        batch.run(&varyings, n, &samplers, &mut out).unwrap();
        for (v, got) in cases.iter().zip(&out) {
            let want = scalar.run(&[*v], &samplers).unwrap();
            assert_eq!(got.map(f32::to_bits), want.map(f32::to_bits));
        }
    }

    #[test]
    fn arithmetic_matches_scalar() {
        check(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x + v.y, v.x * v.y, v.x - v.y, v.x / v.y); }",
            &UniformValues::new(),
            &[
                [3.0, 4.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0],
                [f32::NAN, 1.0, 0.0, 0.0],
                [f32::INFINITY, -2.5, 0.0, 0.0],
            ],
        );
    }

    #[test]
    fn texture_and_select_match_scalar() {
        let mut uniforms = UniformValues::new();
        uniforms.set_scalar("u_cut", 0.5);
        check(
            "uniform sampler2D t;\n\
             uniform float u_cut;\n\
             varying vec2 v;\n\
             void main() {\n\
               vec4 c = texture2D(t, v);\n\
               if (c.x < u_cut) { c = c * 2.0; } else { c = c - vec4(0.25); }\n\
               gl_FragColor = c;\n\
             }",
            &uniforms,
            &[
                [0.1, 0.1, 0.0, 0.0],
                [0.9, 0.9, 0.0, 0.0],
                [0.4, 0.6, 0.0, 0.0],
            ],
        );
    }

    #[test]
    fn batch_size_validation() {
        let sh = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let mut batch = BatchExecutor::new(&sh, &UniformValues::new()).unwrap();
        let mut out = [[0.0f32; 4]; 1];
        assert!(batch.run(&[], 0, &[], &mut out).is_err());
        assert!(batch.run(&[], LANES + 1, &[], &mut out).is_err());
        assert!(batch.run(&[], 2, &[], &mut out).is_err()); // out too small
        assert!(batch.run(&[], 1, &[], &mut out).is_ok());
    }

    #[test]
    fn missing_varyings_are_an_error() {
        let sh =
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.0, 1.0); }").unwrap();
        let mut batch = BatchExecutor::new(&sh, &UniformValues::new()).unwrap();
        let mut out = [[0.0f32; 4]; 1];
        assert!(batch.run(&[], 1, &[], &mut out).is_err());
    }

    #[test]
    fn rebind_with_equal_reg_count_leaves_no_stale_planes() {
        use crate::ir::Instr;
        // Shader A writes register 1; shader B — same reg_count — reads
        // register 1 without ever writing it. The scalar tier reads 0.0
        // from its zeroed file, so a rebound batch core must too, not
        // shader A's leftover plane.
        let dirty = Shader {
            instrs: vec![Instr {
                dst: Reg(1),
                width: 4,
                op: Op::Const([7.0; 4]),
                srcs: vec![],
            }],
            reg_count: 3,
            inputs: vec![],
            samplers: vec![],
            output: Reg(1),
        };
        let reads_unwritten = Shader {
            instrs: vec![Instr {
                dst: Reg(2),
                width: 4,
                op: Op::Mov,
                srcs: vec![Reg(1)],
            }],
            reg_count: 3,
            inputs: vec![],
            samplers: vec![],
            output: Reg(2),
        };
        let uniforms = UniformValues::new();
        let mut core = BatchCore::new(&dirty, &uniforms).unwrap();
        let mut out = [[f32::NAN; 4]; 1];
        core.run(&dirty, &[], 1, &[], &mut out).unwrap();
        assert_eq!(out[0], [7.0; 4]);
        core.rebind(&reads_unwritten, &uniforms).unwrap();
        core.run(&reads_unwritten, &[], 1, &[], &mut out).unwrap();
        assert_eq!(out[0], [0.0; 4], "rebind must not leak shader A's planes");
    }

    #[test]
    fn unbound_sampler_is_an_error() {
        let sh = compile(
            "uniform sampler2D t; varying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let mut batch = BatchExecutor::new(&sh, &UniformValues::new()).unwrap();
        let varyings = vec![[0.0f32; 4]; LANES];
        let mut out = [[0.0f32; 4]; 1];
        assert!(batch.run(&varyings, 1, &[], &mut out).is_err());
    }
}
