//! # mgpu-shader — a GLSL-ES-like fragment-kernel compiler and interpreter
//!
//! This crate implements the shader toolchain a low-end mobile GPU driver
//! would contain, at the fidelity the DATE 2017 reproduction needs:
//!
//! * a **compiler** for the GLSL ES 1.00 fragment subset the paper's GPGPU
//!   kernels use (floats and vectors, swizzles, built-ins including `dot`,
//!   `clamp` and the paper's `mul24`, user functions, constant-bounded
//!   `for` loops);
//! * full **loop unrolling** and **function inlining** to straight-line IR,
//!   matching what ES2-era compilers did — and making the paper's Fig. 4b
//!   *shader limit* failures reproducible: the block-32 sgemm kernel
//!   genuinely exceeds `max_instructions`/`max_texture_fetches`;
//! * a **peephole optimiser** with toggleable MAD fusion (the paper's
//!   kernel-code optimisation), constant folding, copy propagation and DCE;
//! * a **cost model** classifying texture fetches as streaming vs
//!   dependent, feeding the TBDR timing simulator;
//! * an **interpreter** executing kernels per fragment for functional
//!   results.
//!
//! # Examples
//!
//! ```
//! use mgpu_shader::{compile, cost, Executor, UniformValues};
//!
//! let shader = compile("
//!     uniform sampler2D u_data;
//!     varying vec2 v_coord;
//!     void main() {
//!         vec4 t = texture2D(u_data, v_coord);
//!         gl_FragColor = clamp(t * 2.0, 0.0, 1.0);
//!     }
//! ").expect("compiles");
//!
//! // Static properties drive the timing model...
//! let cost = cost::analyze(&shader);
//! assert_eq!(cost.streaming_fetches(), 1);
//!
//! // ...and the interpreter produces functional results.
//! let mut exec = Executor::new(&shader, &UniformValues::new()).expect("no uniforms needed");
//! # let _ = exec;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

pub mod ast;
mod batch;
pub mod compile;
pub mod cost;
mod error;
mod fold;
pub mod hash;
mod lexer;
mod limits;
mod lower;
mod opt;
mod parser;
pub mod pretty;

pub mod ir;
mod token;
mod vm;

pub use batch::{BatchCore, BatchExecutor, LANES};
pub use compile::{CompiledCore, CompiledProgram};
pub use error::{render_error, CompileError, CompileErrorKind, ExecError};
pub use fold::{const_eval, ConstVal};
pub use limits::{check_limits, Limits};
pub use lower::{lower, MAX_UNROLL_ITERATIONS};
pub use opt::{optimize, specialize, OptOptions};
pub use parser::parse;
pub use vm::{
    truncate_to_24bit, u8_to_unorm, ExecCore, Executor, ImageSampler, Sampler, UniformValues,
};

use ir::Shader;

/// Everything configurable about a compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Peephole passes to run.
    pub opt: OptOptions,
    /// Implementation limits to enforce (default: unlimited).
    pub limits: Limits,
}

/// Compiles kernel source with default options (full optimisation, no
/// limits).
///
/// # Errors
///
/// Returns a [`CompileError`] on any lexical, syntactic, type or loop
/// problem.
///
/// # Examples
///
/// ```
/// let shader = mgpu_shader::compile(
///     "void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }",
/// )?;
/// assert_eq!(shader.texture_fetch_count(), 0);
/// # Ok::<(), mgpu_shader::CompileError>(())
/// ```
pub fn compile(source: &str) -> Result<Shader, CompileError> {
    compile_with(source, &CompileOptions::default())
}

/// Compiles kernel source with explicit options, enforcing the configured
/// implementation limits after optimisation — exactly where a driver's
/// compiler rejects over-budget kernels.
///
/// # Errors
///
/// Returns a [`CompileError`]; use
/// [`CompileError::is_limit_exceeded`] to distinguish resource-limit
/// failures (the paper's block-size wall) from malformed programs.
pub fn compile_with(source: &str, options: &CompileOptions) -> Result<Shader, CompileError> {
    let program = parse(source)?;
    let mut shader = lower(&program)?;
    optimize(&mut shader, &options.opt);
    check_limits(&shader, &options.limits)?;
    Ok(shader)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_end_to_end() {
        let sh = compile(
            "uniform sampler2D t;\n\
             varying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        assert_eq!(sh.samplers.len(), 1);
        assert_eq!(sh.texture_fetch_count(), 1);
    }

    #[test]
    fn paper_fig2_kernel_compiles_and_counts_fetches() {
        // Block size 4 over a 64-wide matrix: 4 iterations * 2 fetches + 1.
        let src = "
            uniform sampler2D text0;
            uniform sampler2D text1;
            uniform sampler2D text2;
            uniform float blk_n;
            varying vec2 Coord0;
            varying vec2 Coord1;
            varying vec2 Coord2;
            void main() {
                float acc = 0.0;
                for (float i = 0.0; i < 0.0625; i += 0.015625) {
                    float A = texture2D(text0, vec2(i + blk_n, Coord0.y)).x;
                    float B = texture2D(text1, vec2(Coord1.x, i + blk_n)).x;
                    acc += A * B;
                }
                float interm = texture2D(text2, Coord2).x;
                gl_FragColor = vec4(acc + interm);
            }
        ";
        let sh = compile(src).unwrap();
        assert_eq!(sh.texture_fetch_count(), 4 * 2 + 1);
        let cost = cost::analyze(&sh);
        assert_eq!(cost.dependent_fetches(), 8);
        assert_eq!(cost.streaming_fetches(), 1);
    }

    #[test]
    fn non_constant_loop_bound_is_rejected() {
        let err = compile(
            "uniform float n;\n\
             void main() {\n\
               float a = 0.0;\n\
               for (float i = 0.0; i < n; i += 1.0) { a += 1.0; }\n\
               gl_FragColor = vec4(a);\n\
             }",
        )
        .unwrap_err();
        assert_eq!(err.kind(), CompileErrorKind::Loop);
    }

    #[test]
    fn runaway_loop_is_rejected() {
        let err = compile(
            "void main() {\n\
               float a = 0.0;\n\
               for (float i = 0.0; i < 1000000.0; i += 1.0) { a += 1.0; }\n\
               gl_FragColor = vec4(a);\n\
             }",
        )
        .unwrap_err();
        assert_eq!(err.kind(), CompileErrorKind::Loop);
    }

    #[test]
    fn never_writing_fragcolor_is_an_error() {
        let err = compile("void main() { float x = 1.0; }").unwrap_err();
        assert!(err.to_string().contains("gl_FragColor"));
    }

    #[test]
    fn assigning_to_loop_counter_is_rejected() {
        let err = compile(
            "void main() {\n\
               for (float i = 0.0; i < 2.0; i += 1.0) { i = 5.0; }\n\
               gl_FragColor = vec4(0.0);\n\
             }",
        )
        .unwrap_err();
        assert_eq!(err.kind(), CompileErrorKind::Type);
    }

    #[test]
    fn recursion_is_rejected() {
        let err = compile(
            "float f(float x) { return f(x); }\n\
             void main() { gl_FragColor = vec4(f(1.0)); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("recursive"));
    }

    #[test]
    fn sampler_misuse_is_rejected() {
        let err = compile(
            "uniform sampler2D t;\n\
             void main() { gl_FragColor = vec4(t); }",
        )
        .unwrap_err();
        assert_eq!(err.kind(), CompileErrorKind::Type);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let err = compile(
            "varying vec2 v; varying vec3 w;\n\
             void main() { gl_FragColor = vec4(v + w, 0.0); }",
        )
        .unwrap_err();
        assert_eq!(err.kind(), CompileErrorKind::Type);
    }

    #[test]
    fn constant_condition_branches_are_pruned() {
        let sh = compile(
            "void main() {\n\
               float x = 0.0;\n\
               if (1.0 < 2.0) { x = 5.0; } else { x = sqrt(3.0); }\n\
               gl_FragColor = vec4(x);\n\
             }",
        )
        .unwrap();
        assert!(!sh.instrs.iter().any(|i| i.op == ir::Op::Sqrt));
        assert!(!sh.instrs.iter().any(|i| i.op == ir::Op::Select));
    }
}
