//! Recursive-descent parser for the kernel shading language.

use crate::ast::{
    AssignOp, BinOp, Expr, Function, GlobalDecl, LValue, Program, Qualifier, Stmt, Type, UnaryOp,
};
use crate::error::{CompileError, CompileErrorKind};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a complete shader program.
///
/// # Errors
///
/// Returns a [`CompileError`] with the offending line on any lexical or
/// syntactic problem.
///
/// # Examples
///
/// ```
/// let src = "
///     uniform sampler2D u_tex;
///     varying vec2 v_coord;
///     void main() {
///         gl_FragColor = texture2D(u_tex, v_coord);
///     }
/// ";
/// let program = mgpu_shader::parse(src).expect("valid program");
/// assert!(program.function("main").is_some());
/// ```
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(CompileErrorKind::Parse, msg, Some(self.line()))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), CompileError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    // ---- grammar ----------------------------------------------------

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut program = Program::default();
        loop {
            match self.peek_ident() {
                None if self.peek() == &TokenKind::Eof => break,
                None => return Err(self.err(format!("unexpected `{}`", self.peek()))),
                Some("precision") => {
                    // `precision highp float;` — accepted and ignored.
                    self.bump();
                    self.ident()?; // precision qualifier
                    self.ident()?; // type
                    self.expect(&TokenKind::Semicolon)?;
                }
                Some("uniform") | Some("varying") | Some("const") => {
                    program.globals.push(self.global()?);
                }
                Some(_) => {
                    // A type keyword starts a function definition.
                    program.functions.push(self.function()?);
                }
            }
        }
        if program.function("main").is_none() {
            return Err(CompileError::new(
                CompileErrorKind::Parse,
                "program has no `main` function",
                None,
            ));
        }
        Ok(program)
    }

    fn global(&mut self) -> Result<GlobalDecl, CompileError> {
        let line = self.line();
        let qualifier = match self.ident()?.as_str() {
            "uniform" => Qualifier::Uniform,
            "varying" => Qualifier::Varying,
            "const" => Qualifier::Const,
            q => return Err(self.err(format!("unknown qualifier `{q}`"))),
        };
        let ty = self.type_name()?;
        let name = self.ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        if qualifier == Qualifier::Const && init.is_none() {
            return Err(self.err(format!("const `{name}` needs an initialiser")));
        }
        self.expect(&TokenKind::Semicolon)?;
        Ok(GlobalDecl {
            qualifier,
            ty,
            name,
            init,
            line,
        })
    }

    fn type_name(&mut self) -> Result<Type, CompileError> {
        let line = self.line();
        let word = self.ident()?;
        Type::from_keyword(&word).ok_or_else(|| {
            CompileError::new(
                CompileErrorKind::Parse,
                format!("unknown type `{word}`"),
                Some(line),
            )
        })
    }

    fn function(&mut self) -> Result<Function, CompileError> {
        let line = self.line();
        let ret = self.type_name()?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let pty = self.type_name()?;
                let pname = self.ident()?;
                params.push((pty, pname));
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(Function {
            ret,
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek_ident() {
            Some("for") => self.for_stmt(),
            Some("if") => self.if_stmt(),
            Some("return") => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semicolon {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Return { value, line })
            }
            Some(word) if Type::from_keyword(word).is_some() => {
                let ty = self.type_name()?;
                let mut names = Vec::new();
                loop {
                    let name = self.ident()?;
                    let init = if self.eat(&TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    names.push((name, init));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Decl { ty, names, line })
            }
            _ => {
                // Assignment or expression statement.
                let checkpoint = self.pos;
                if let TokenKind::Ident(name) = self.peek().clone() {
                    self.bump();
                    let swizzle = if self.eat(&TokenKind::Dot) {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    if let Some(op) = self.assign_op() {
                        let value = self.expr()?;
                        self.expect(&TokenKind::Semicolon)?;
                        return Ok(Stmt::Assign {
                            target: LValue { name, swizzle },
                            op,
                            value,
                            line,
                        });
                    }
                    self.pos = checkpoint;
                }
                let expr = self.expr()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::ExprStmt { expr, line })
            }
        }
    }

    fn assign_op(&mut self) -> Option<AssignOp> {
        let op = match self.peek() {
            TokenKind::Assign => AssignOp::Set,
            TokenKind::PlusAssign => AssignOp::Add,
            TokenKind::MinusAssign => AssignOp::Sub,
            TokenKind::StarAssign => AssignOp::Mul,
            TokenKind::SlashAssign => AssignOp::Div,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.bump(); // `for`
        self.expect(&TokenKind::LParen)?;
        let var_ty = self.type_name()?;
        let var = self.ident()?;
        self.expect(&TokenKind::Assign)?;
        let init = self.expr()?;
        self.expect(&TokenKind::Semicolon)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Semicolon)?;
        let update_var = self.ident()?;
        if update_var != var {
            return Err(self.err(format!(
                "loop update must modify the counter `{var}`, found `{update_var}`"
            )));
        }
        let update_op = self
            .assign_op()
            .ok_or_else(|| self.err("expected assignment in loop update"))?;
        let update = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.stmt_or_block()?;
        Ok(Stmt::For {
            var_ty,
            var,
            init,
            cond,
            update_op,
            update,
            body,
            line,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.bump(); // `if`
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_branch = self.stmt_or_block()?;
        let else_branch = if self.peek_ident() == Some("else") {
            self.bump();
            if self.peek_ident() == Some("if") {
                vec![self.if_stmt()?]
            } else {
                self.stmt_or_block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            line,
        })
    }

    // ---- expressions (precedence climbing) ---------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.or_expr()?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let else_expr = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.eat(&TokenKind::Minus) {
            let expr = self.unary()?;
            // Fold negation into the literal: `-2.0` parses as
            // `Literal(-2.0)`, exactly what the pretty-printer emits for a
            // negative constant, so `parse ∘ print` is the identity on
            // literal-bearing ASTs. IEEE negation is exact (a sign-bit
            // flip) and lowering already constant-folds the `Neg`, so
            // neither value nor instruction count can change.
            if let Expr::Literal(v) = expr {
                return Ok(Expr::Literal(-v));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.eat(&TokenKind::Bang) {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.primary()?;
        while self.peek() == &TokenKind::Dot {
            let line = self.line();
            self.bump();
            let fields = self.ident()?;
            expr = Expr::Swizzle {
                base: Box::new(expr),
                fields,
                line,
            };
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Literal(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Expr::BoolLiteral(true)),
                    "false" => return Ok(Expr::BoolLiteral(false)),
                    _ => {}
                }
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(&TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Call { name, args, line })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("unexpected `{other}` in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("void main() { gl_FragColor = vec4(0.0, 0.0, 0.0, 1.0); }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
    }

    #[test]
    fn requires_main() {
        let err = parse("void helper() { }").unwrap_err();
        assert!(err.to_string().contains("main"));
    }

    #[test]
    fn parses_globals_and_precision() {
        let p = parse(
            "precision highp float;\n\
             uniform sampler2D u_t;\n\
             varying vec2 v_c;\n\
             const float k = 2.0;\n\
             void main() { gl_FragColor = vec4(k); }",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].qualifier, Qualifier::Uniform);
        assert_eq!(p.globals[2].qualifier, Qualifier::Const);
    }

    #[test]
    fn const_requires_initialiser() {
        assert!(parse("const float k; void main() {}").is_err());
    }

    #[test]
    fn parses_for_loop() {
        let p = parse(
            "void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < 4.0; i += 1.0) { acc += i; }\n\
               gl_FragColor = vec4(acc);\n\
             }",
        )
        .unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body[1], Stmt::For { .. }));
    }

    #[test]
    fn loop_update_must_touch_counter() {
        let err = parse("void main() { for (float i = 0.0; i < 2.0; j += 1.0) {} }").unwrap_err();
        assert!(err.to_string().contains("counter"));
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse(
            "void main() {\n\
               float x = 1.0;\n\
               if (x < 0.5) { x = 0.0; } else if (x < 0.7) { x = 1.0; } else x = 2.0;\n\
               gl_FragColor = vec4(x);\n\
             }",
        )
        .unwrap();
        match &p.functions[0].body[1] {
            Stmt::If { else_branch, .. } => {
                assert!(matches!(else_branch[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p =
            parse("void main() { float x = 1.0 + 2.0 * 3.0; gl_FragColor = vec4(x); }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Decl { names, .. } => match names[0].1.as_ref().unwrap() {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_swizzles_and_compound_assign() {
        let p = parse(
            "varying vec2 v;\n\
             void main() {\n\
               vec4 c = vec4(v.x, v.y, 0.0, 1.0);\n\
               c.xy *= 2.0;\n\
               gl_FragColor = c;\n\
             }",
        )
        .unwrap();
        match &p.functions[0].body[1] {
            Stmt::Assign { target, op, .. } => {
                assert_eq!(target.swizzle.as_deref(), Some("xy"));
                assert_eq!(*op, AssignOp::Mul);
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_user_function_with_return() {
        let p = parse(
            "float decode(vec4 v) { return v.x * 255.0; }\n\
             void main() { gl_FragColor = vec4(decode(vec4(1.0))); }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 2);
        assert!(matches!(
            p.functions[0].body[0],
            Stmt::Return { value: Some(_), .. }
        ));
    }

    #[test]
    fn parses_ternary() {
        let p = parse("void main() { float x = 1.0 < 2.0 ? 3.0 : 4.0; gl_FragColor = vec4(x); }")
            .unwrap();
        match &p.functions[0].body[0] {
            Stmt::Decl { names, .. } => {
                assert!(matches!(names[0].1, Some(Expr::Ternary { .. })));
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("void main() {\n  float x = ;\n}").unwrap_err();
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn parses_the_paper_fig2_kernel_shape() {
        // Structure of the paper's Fig. 2 multi-pass sgemm kernel, with the
        // reconstruction helpers written out as user functions.
        let src = "
            uniform sampler2D text0;
            uniform sampler2D text1;
            uniform sampler2D text2;
            uniform float blk_n;
            varying vec2 Coord0;
            varying vec2 Coord1;
            varying vec2 Coord2;

            float reconstr_in(vec4 t) {
                return dot(t, vec4(255.0, 0.996, 0.0039, 0.0000152));
            }
            vec4 encode_out(float v) {
                return vec4(v, v, v, 1.0);
            }
            void main() {
                float acc = 0.0;
                float A = 0.0;
                float B = 0.0;
                for (float i = 0.0; i < 0.015625; i += 0.0009765625) {
                    A = reconstr_in(texture2D(text0, vec2(i + blk_n, Coord0.y)));
                    B = reconstr_in(texture2D(text1, vec2(Coord1.x, i + blk_n)));
                    acc += A * B;
                }
                float interm = reconstr_in(texture2D(text2, Coord2));
                gl_FragColor = encode_out(acc + interm);
            }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.globals.len(), 7);
        assert_eq!(p.functions.len(), 3);
    }
}
