//! AST pretty-printer: renders a parsed [`Program`] back to kernel source.
//!
//! The printer is exact enough that `parse(print(parse(src)))` yields the
//! same AST as `parse(src)` — the round-trip property the test suite
//! enforces — which makes it usable for kernel-source golden tests,
//! debugging generated kernels, and normalising formatting.

use std::fmt::Write as _;

use crate::ast::{AssignOp, BinOp, Expr, Function, Program, Qualifier, Stmt, UnaryOp};

/// Renders a whole program as formatted kernel source.
#[must_use]
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        let q = match g.qualifier {
            Qualifier::Uniform => "uniform",
            Qualifier::Varying => "varying",
            Qualifier::Const => "const",
        };
        let _ = write!(out, "{q} {} {}", g.ty.keyword(), g.name);
        if let Some(init) = &g.init {
            let _ = write!(out, " = {}", print_expr(init));
        }
        out.push_str(";\n");
    }
    if !program.globals.is_empty() {
        out.push('\n');
    }
    for f in &program.functions {
        print_function(&mut out, f);
        out.push('\n');
    }
    out
}

fn print_function(out: &mut String, f: &Function) {
    let _ = write!(out, "{} {}(", f.ret.keyword(), f.name);
    for (i, (ty, name)) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {name}", ty.keyword());
    }
    out.push_str(") {\n");
    for s in &f.body {
        print_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::Decl { ty, names, .. } => {
            indent(out, depth);
            let _ = write!(out, "{} ", ty.keyword());
            for (i, (name, init)) in names.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(name);
                if let Some(e) = init {
                    let _ = write!(out, " = {}", print_expr(e));
                }
            }
            out.push_str(";\n");
        }
        Stmt::Assign {
            target, op, value, ..
        } => {
            indent(out, depth);
            out.push_str(&target.name);
            if let Some(sw) = &target.swizzle {
                let _ = write!(out, ".{sw}");
            }
            let _ = writeln!(out, " {} {};", assign_op(*op), print_expr(value));
        }
        Stmt::For {
            var_ty,
            var,
            init,
            cond,
            update_op,
            update,
            body,
            ..
        } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "for ({} {var} = {}; {}; {var} {} {}) {{",
                var_ty.keyword(),
                print_expr(init),
                print_expr(cond),
                assign_op(*update_op),
                print_expr(update)
            );
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for s in then_branch {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_branch {
                    print_stmt(out, s, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::Return { value, .. } => {
            indent(out, depth);
            match value {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::ExprStmt { expr, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "{};", print_expr(expr));
        }
    }
}

fn assign_op(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Set => "=",
        AssignOp::Add => "+=",
        AssignOp::Sub => "-=",
        AssignOp::Mul => "*=",
        AssignOp::Div => "/=",
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Renders one expression. Fully parenthesised, so precedence never needs
/// reconstructing (and the round trip is trivially faithful).
#[must_use]
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Literal(x) => {
            let s = format!("{x:?}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::BoolLiteral(b) => b.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Unary { op, expr } => {
            let o = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
            };
            format!("({o}{})", print_expr(expr))
        }
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", print_expr(lhs), bin_op(*op), print_expr(rhs))
        }
        Expr::Call { name, args, .. } => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", rendered.join(", "))
        }
        Expr::Swizzle { base, fields, .. } => format!("{}.{fields}", print_expr(base)),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => format!(
            "({} ? {} : {})",
            print_expr(cond),
            print_expr(then_expr),
            print_expr(else_expr)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trips(src: &str) {
        let first = parse(src).unwrap();
        let printed = print_program(&first);
        let second =
            parse(&printed).unwrap_or_else(|e| panic!("reprint failed to parse: {e}\n{printed}"));
        // Structural equality modulo source lines — strictly stronger than
        // comparing canonical print forms.
        assert_eq!(
            first.without_lines(),
            second.without_lines(),
            "round trip changed the AST:\n{printed}"
        );
    }

    #[test]
    fn round_trips_the_suite_kernels() {
        round_trips("void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }");
        round_trips(
            "uniform sampler2D t;\nvarying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        );
        round_trips(
            "uniform float blk_n;\nuniform sampler2D a;\nvarying vec2 c;\n\
             float dec(vec4 t) { return dot(t, vec4(1.0, 0.5, 0.25, 0.125)); }\n\
             void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < 0.5; i += 0.125) {\n\
                 acc += dec(texture2D(a, vec2(i + blk_n, c.y)));\n\
               }\n\
               if (acc > 1.0) { acc = 1.0; } else { acc *= 0.5; }\n\
               gl_FragColor = vec4(acc, -acc, acc > 0.5 ? 1.0 : 0.0, 1.0);\n\
             }",
        );
    }

    #[test]
    fn round_trips_the_generated_kernels() {
        // The real generated kernel sources must survive the printer too.
        // (mgpu-gpgpu generates them; here we hand-inline a representative.)
        round_trips(
            "uniform sampler2D u_a;\nuniform sampler2D u_b;\nvarying vec2 v_coord;\n\
             float unpack(vec4 c) { return dot(c, vec4(1.0, 0.00392156862745098, 0.0000153787004998078, 0.0000000603086314193)); }\n\
             vec4 pack(float t) {\n\
               float s = clamp(t, 0.0, 0.9999999);\n\
               vec4 enc = fract(s * vec4(1.0, 255.0, 65025.0, 16581375.0));\n\
               enc = enc - vec4(enc.y, enc.z, enc.w, 0.0) * 0.00392156862745098;\n\
               return enc;\n\
             }\n\
             void main() {\n\
               float a = unpack(texture2D(u_a, v_coord)) * 1.0 + 0.0;\n\
               float b = unpack(texture2D(u_b, v_coord)) * 1.0 + 0.0;\n\
               gl_FragColor = pack(((a + b) - 0.0) * 0.5);\n\
             }",
        );
    }

    #[test]
    fn printed_source_compiles_identically() {
        use crate::{compile, cost};
        let src = "uniform sampler2D t;\nvarying vec2 v;\n\
                   void main() {\n\
                     float acc = 0.0;\n\
                     for (float i = 0.0; i < 4.0; i += 1.0) {\n\
                       acc += texture2D(t, vec2(i / 4.0, v.y)).x;\n\
                     }\n\
                     gl_FragColor = vec4(acc);\n\
                   }";
        let direct = compile(src).unwrap();
        let printed = print_program(&parse(src).unwrap());
        let reprinted = compile(&printed).unwrap();
        assert_eq!(direct.instruction_count(), reprinted.instruction_count());
        assert_eq!(
            cost::analyze(&direct).alu_cycles,
            cost::analyze(&reprinted).alu_cycles
        );
    }

    #[test]
    fn literals_reprint_losslessly() {
        for x in [0.0f32, 1.5, -3.25, 0.0009765625, 16581375.0, 1.0 / 3.0] {
            let e = Expr::Literal(x);
            let s = print_expr(&e);
            let back: f32 = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }
}
