//! Ahead-of-time lowering of straight-line IR into fused native closures.
//!
//! [`CompiledProgram`] is the third tier of the fragment engine: where the
//! scalar [`Executor`](crate::Executor) decodes one instruction per
//! fragment and the SoA [`BatchExecutor`](crate::BatchExecutor) decodes
//! one instruction per [`LANES`]-wide batch, the compiled tier decodes
//! each instruction **once, at bind time**, lowering the (already
//! unrolled, already inlined, possibly uniform-specialised) straight-line
//! IR into a chain of monomorphised Rust closures over a flat
//! single-assignment plane file. Running a batch is then a plain walk of
//! that chain — no opcode dispatch, no per-instruction scratch, no
//! register copy-back.
//!
//! Lowering rules, in order:
//!
//! 1. **Slot renumbering.** Registers are renumbered into plane *slots* in
//!    topological order: a dedicated always-zero slot first, then the
//!    shader inputs, then every instruction's destination in sequence.
//!    Because the IR is straight-line, every source slot of a step is
//!    strictly smaller than its destination slot, so each step can split
//!    the plane file once (`split_at_mut`) and write its output planes
//!    directly — the per-instruction zero-initialise + copy-back the batch
//!    interpreter pays (4 KiB per instruction per batch) disappears.
//!    Registers that are never written read from the zero slot, exactly
//!    like the scalar tier's zero-initialised register file.
//! 2. **Constant folding into planes.** Uniforms and `Const` results are
//!    materialised as pre-filled constant planes at build time; any pure
//!    instruction whose sources are all constant is evaluated once at
//!    build (through the reference `eval_pure_op`, so folding is bitwise
//!    exact) and becomes a constant plane itself — no runtime step at
//!    all. With bind-time specialisation off this recovers the same
//!    constant coordinate math specialisation would have folded.
//! 3. **Select mask pruning.** A `Select` whose mask is constant keeps
//!    only the taken branch: it lowers to plane copies of that branch.
//! 4. **MAD-chain fusion.** A run of consecutive scalar `Mad`s, each
//!    accumulating into the next (the pattern the peephole optimiser's
//!    MAD fusion emits for `acc += a * b` loops), is fused into a single
//!    step that keeps the accumulator in a stack buffer: the dead
//!    intermediate destinations are never materialised. The per-lane f32
//!    operation sequence is unchanged, so the fusion is bitwise
//!    invisible.
//! 5. **Broadcast resolution.** Width-1 sources broadcast their component
//!    0; the compiled tier resolves that to a concrete plane index per
//!    component at build time instead of testing widths at run time.
//! 6. **Texture-chain fusion.** The GPGPU kernels' load pattern —
//!    `construct coord → fetch texel → dot-unpack with constant weights →
//!    affine range decode` — is fused into one step when every
//!    intermediate has a single consumer: the coordinate planes feed the
//!    batch fetch directly, the texel stays in registers, and the dot and
//!    the `* span + lo` MAD run lane-by-lane on the just-fetched values.
//!    The texel's four planes, the coordinate's two planes and the dot's
//!    plane are never materialised, collapsing the per-fetch plane
//!    traffic (the dominant cost of the paper's fetch-bound kernels) to a
//!    single destination write. Per lane the f32 expression sequence is
//!    exactly the scalar tier's, so the fusion is bitwise invisible; a
//!    chain whose shape ultimately does not match is *materialised* — the
//!    deferred steps are emitted individually — so partial matches fall
//!    back to the unfused lowering instead of miscompiling.
//!
//! The contract is the same strict bit-identity the batch tier holds (see
//! [`crate::BatchExecutor`]): for every lane, every step evaluates
//! exactly the f32 expressions of the scalar reference — same broadcast
//! rules, same accumulation order, same `mul24` truncation — with the one
//! NaN-*payload* carve-out shared by all tiers. The differential tests in
//! this module and the conformance lattice in `crates/conformance` hold
//! the three tiers against each other.

use crate::batch::LANES;
use crate::error::ExecError;
use crate::ir::{CmpOp, InputKind, Op, Reg, Shader};
use std::sync::Arc;

use crate::vm::{
    eval_pure_op, register_widths, truncate_to_24bit, u8_to_unorm, Sampler, UniformValues,
};

/// One component plane: the same slot component across all lanes.
type Plane = [f32; LANES];

/// Mutable per-batch execution state handed to every step.
struct Lanes<'a, 'b> {
    /// The flat plane file, indexed `slot * 4 + component`.
    planes: &'a mut [Plane],
    /// Active lane count of this batch.
    n: usize,
    /// One sampler per texture unit.
    samplers: &'a [&'b dyn Sampler],
    /// AoS staging for texture batch fetches.
    fetched: &'a mut [[f32; 4]; LANES],
}

/// One lowered step: a fused, monomorphised closure over the plane file.
type Step = Box<dyn Fn(&mut Lanes<'_, '_>) -> Result<(), ExecError> + Send + Sync>;

/// A shader lowered to a chain of fused native closures, with its
/// constant planes pre-filled — the immutable, shareable half of the
/// compiled tier. Pair it with a [`CompiledCore`] (one per worker) to
/// execute batches; the program itself is read-only at run time, so one
/// build can be shared across every seat of a draw plan.
pub struct CompiledProgram {
    steps: Vec<Step>,
    /// Initial plane file: zeros everywhere except constant slots.
    init: Vec<Plane>,
    /// Flat plane base (`slot * 4`) of each varying, in declaration order.
    varying_bases: Vec<usize>,
    /// Flat plane base of the output register's slot.
    output_base: usize,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("steps", &self.steps.len())
            .field("slots", &(self.init.len() / 4))
            .field("varyings", &self.varying_bases.len())
            .finish()
    }
}

/// The mutable per-worker state of the compiled tier: a plane file cloned
/// from the program's constant-initialised template, plus fetch staging.
/// The counterpart of [`ExecCore`](crate::ExecCore) /
/// [`BatchCore`](crate::BatchCore) for long-lived seat caches: rebind it
/// to a different program with [`CompiledCore::rebind`] to reuse its
/// allocation.
#[derive(Debug)]
pub struct CompiledCore {
    planes: Vec<Plane>,
    fetched: Box<[[f32; 4]; LANES]>,
}

impl CompiledCore {
    /// A fresh core for `program`, planes initialised from its template.
    #[must_use]
    pub fn new(program: &CompiledProgram) -> Self {
        CompiledCore {
            planes: program.init.clone(),
            fetched: Box::new([[0.0; 4]; LANES]),
        }
    }

    /// Re-targets this core at a (possibly different) program, reusing
    /// the plane allocation where it fits. Behaviour afterwards is
    /// bit-identical to a fresh [`CompiledCore::new`]: the whole plane
    /// file is re-seeded from the program's template, so no stale state
    /// can leak across shader swaps.
    pub fn rebind(&mut self, program: &CompiledProgram) {
        self.planes.clear();
        self.planes.extend_from_slice(&program.init);
    }
}

/// Appends a 4-plane slot to the file, pre-filled when `value` is a
/// build-time constant, and returns its slot index.
fn alloc(
    init: &mut Vec<Plane>,
    consts: &mut Vec<Option<[f32; 4]>>,
    value: Option<[f32; 4]>,
) -> usize {
    let slot = consts.len();
    consts.push(value);
    let v = value.unwrap_or([0.0; 4]);
    for component in v {
        init.push([component; LANES]);
    }
    slot
}

/// Resolves the slot of `r`, defaulting to the always-zero slot for
/// registers that are never written (the scalar tier reads 0.0 there).
fn slot_or_zero(slot_of: &[Option<usize>], r: Reg) -> usize {
    slot_of
        .get(r.0 as usize)
        .copied()
        .flatten()
        .unwrap_or(ZERO_SLOT)
}

/// The dedicated always-zero, constant slot.
const ZERO_SLOT: usize = 0;

/// A texture fetch whose result is still in flight (rule 6): coordinate
/// planes resolved, texel not yet materialised. `perm`/`width` carry any
/// swizzle applied between the fetch and its consumer.
#[derive(Clone, Copy)]
struct FetchRec {
    unit: usize,
    /// Coordinate planes (u, v).
    u: usize,
    v: usize,
    /// Whether each coordinate plane is a build-time constant (uniform
    /// across lanes by construction, no runtime check needed).
    u_const: bool,
    v_const: bool,
    /// Texel component feeding logical component `c`.
    perm: [usize; 4],
    /// Logical width of the (possibly swizzled) texel value.
    width: u8,
}

/// A fetch + dot-unpack still in flight: `Σ texel[widx[c]] * weff[c]`
/// over `nc` components, accumulation order identical to the scalar
/// tier's `Dot`. `tables[c][byte]` pre-composes `u8_to_unorm(byte) *
/// weff[c]` (the identical f32 multiply, so identical bits) for the
/// raw-texel gather path.
#[derive(Clone)]
struct FetchDotRec {
    fetch: FetchRec,
    widx: [usize; 4],
    weff: [f32; 4],
    nc: usize,
    tables: Arc<[[f32; 256]; 4]>,
}

/// A value whose producing step has been deferred in the hope of fusing
/// it into its sole consumer. If the consumer's shape does not match
/// after all, the value is materialised as its unfused step instead.
enum Deferred {
    /// A two-scalar coordinate construct destined for a texture fetch,
    /// with build-time constness of each component.
    Coord {
        u: usize,
        v: usize,
        u_const: bool,
        v_const: bool,
    },
    /// A texture fetch (possibly swizzled) destined for a dot-unpack.
    Fetch(FetchRec),
    /// A fetch + dot destined for an affine (`* span + lo`) MAD.
    FetchDot(FetchDotRec),
    /// A complete fetch→dot→affine chain destined to be one multiplicand
    /// of an inner-product MAD (`acc = A * B + acc`).
    Sealed(FetchDotRec, (f32, f32)),
}

/// One multiplicand of a fully-fused inner-product MAD: either a sealed
/// fetch→dot→affine chain evaluated in-flight, or an existing plane.
enum SealedVal {
    Chain(FetchDotRec, (f32, f32)),
    Plane(usize),
}

/// Emits the unfused step for a deferred value whose consumer's shape
/// did not match after all, binding `reg` to a fresh slot.
fn materialise(
    d: Deferred,
    reg: Reg,
    init: &mut Vec<Plane>,
    consts: &mut Vec<Option<[f32; 4]>>,
    slot_of: &mut [Option<usize>],
    steps: &mut Vec<Step>,
) {
    let dst = alloc(init, consts, None) * 4;
    if let Some(entry) = slot_of.get_mut(reg.0 as usize) {
        *entry = Some(dst / 4);
    }
    let step = match d {
        Deferred::Coord { u, v, .. } => PendingStep::Copies(vec![(0, u), (1, v)]),
        Deferred::Fetch(rec) => tex_fetch_step(rec),
        Deferred::FetchDot(rec) => fetch_dot_step(rec, None),
        Deferred::Sealed(rec, post) => fetch_dot_step(rec, Some(post)),
    };
    steps.push(step.finish(dst));
}

impl CompiledProgram {
    /// Lowers `shader` against its bound `uniforms` into a closure chain.
    ///
    /// Uniforms are resolved here (becoming constant planes), so a
    /// program — like a specialised shader — is only valid for the
    /// uniform values it was built with; the draw-plan cache keys on the
    /// uniform hash for exactly this reason.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a uniform declared by the shader has no
    /// value in `uniforms`, or an instruction is malformed.
    pub fn build(shader: &Shader, uniforms: &UniformValues) -> Result<CompiledProgram, ExecError> {
        let widths = register_widths(shader);
        let nregs = shader.reg_count as usize;
        let mut slot_of: Vec<Option<usize>> = vec![None; nregs];
        let mut init: Vec<Plane> = Vec::new();
        // Per-slot constant value, if the slot is a build-time constant.
        let mut consts: Vec<Option<[f32; 4]>> = Vec::new();

        // Slot 0: the always-zero slot.
        alloc(&mut init, &mut consts, Some([0.0; 4]));

        let mut varying_bases = Vec::new();
        for input in &shader.inputs {
            let s = match input.kind {
                InputKind::Uniform => {
                    let v = uniforms.get(&input.name).ok_or_else(|| {
                        ExecError::new(format!("uniform `{}` is not set", input.name))
                    })?;
                    alloc(&mut init, &mut consts, Some(v))
                }
                InputKind::Varying => {
                    let s = alloc(&mut init, &mut consts, None);
                    varying_bases.push(s * 4);
                    s
                }
            };
            if let Some(entry) = slot_of.get_mut(input.reg.0 as usize) {
                *entry = Some(s);
            }
        }

        // Use counts drive MAD-chain fusion: an intermediate accumulator
        // with exactly one consumer needs no plane of its own.
        let mut uses = vec![0u32; nregs];
        for instr in &shader.instrs {
            for s in &instr.srcs {
                if let Some(u) = uses.get_mut(s.0 as usize) {
                    *u += 1;
                }
            }
        }
        if let Some(u) = uses.get_mut(shader.output.0 as usize) {
            *u += 1;
        }

        // Broadcast-resolved plane of source `r`, component `c`.
        let bplane = |slot_of: &[Option<usize>], r: Reg, c: usize| -> usize {
            let s = slot_or_zero(slot_of, r);
            let pc = if widths.get(r.0 as usize).copied().unwrap_or(4) == 1 {
                0
            } else {
                c
            };
            s * 4 + pc
        };
        // Raw (no-broadcast) plane of source `r`, component `c`.
        let rplane = |slot_of: &[Option<usize>], r: Reg, c: usize| -> usize {
            slot_or_zero(slot_of, r) * 4 + c
        };

        let mut steps: Vec<Step> = Vec::new();
        let instrs = &shader.instrs;

        // Rule 6 state: values deferred toward a fusing consumer.
        let mut deferred: Vec<Option<Deferred>> = (0..nregs).map(|_| None).collect();
        let clear = |deferred: &[Option<Deferred>], r: Reg| {
            deferred.get(r.0 as usize).is_none_or(Option::is_none)
        };
        // The single instruction consuming `d`, when `d` has exactly one
        // use, is not the output, and is not redefined before that use.
        let sole_consumer = |from: usize, d: Reg| -> Option<usize> {
            if d == shader.output || uses.get(d.0 as usize).copied().unwrap_or(0) != 1 {
                return None;
            }
            for (j, ins) in instrs.iter().enumerate().skip(from) {
                if ins.srcs.contains(&d) {
                    return Some(j);
                }
                if ins.dst == d {
                    return None;
                }
            }
            None
        };

        let mut i = 0usize;
        while i < instrs.len() {
            let instr = &instrs[i];
            let w = instr.width as usize;

            // Rule 2: fold a pure instruction with all-constant sources
            // at build time, through the reference evaluator. A deferred
            // source is never constant (its slot is still unmapped and
            // must not alias the zero slot).
            let pure = !matches!(instr.op, Op::TexFetch { .. });
            if pure
                && instr.srcs.iter().all(|r| clear(&deferred, *r))
                && instr
                    .srcs
                    .iter()
                    .all(|r| consts[slot_or_zero(&slot_of, *r)].is_some())
            {
                let narg = instr.srcs.len().min(4);
                let mut vals = [[0.0f32; 4]; 4];
                let mut wbuf = [4u8; 4];
                for (k, r) in instr.srcs.iter().take(4).enumerate() {
                    vals[k] = consts[slot_or_zero(&slot_of, *r)].unwrap_or([0.0; 4]);
                    wbuf[k] = widths.get(r.0 as usize).copied().unwrap_or(4);
                }
                let folded = eval_pure_op(&instr.op, &vals[..narg], &wbuf[..narg], instr.width)
                    .ok_or_else(|| ExecError::new("malformed instruction"))?;
                let s = alloc(&mut init, &mut consts, Some(folded));
                if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                    *entry = Some(s);
                }
                i += 1;
                continue;
            }

            // Rule 6a: a two-scalar coordinate construct whose sole
            // consumer is a texture fetch never gets planes of its own.
            if instr.op == Op::Construct
                && instr.width == 2
                && instr.srcs.len() == 2
                && instr
                    .srcs
                    .iter()
                    .all(|r| widths.get(r.0 as usize).copied().unwrap_or(4) == 1)
                && instr.srcs.iter().all(|r| clear(&deferred, *r))
                && matches!(
                    sole_consumer(i + 1, instr.dst).map(|j| &instrs[j].op),
                    Some(Op::TexFetch { .. })
                )
            {
                deferred[instr.dst.0 as usize] = Some(Deferred::Coord {
                    u: rplane(&slot_of, instr.srcs[0], 0),
                    v: rplane(&slot_of, instr.srcs[1], 0),
                    u_const: consts[slot_or_zero(&slot_of, instr.srcs[0])].is_some(),
                    v_const: consts[slot_or_zero(&slot_of, instr.srcs[1])].is_some(),
                });
                i += 1;
                continue;
            }

            // Rule 6b: a texture fetch. Consume a deferred coordinate,
            // and defer the texel itself when its sole consumer can fuse
            // (a dot-unpack, possibly through a swizzle).
            if let Op::TexFetch { sampler } = instr.op {
                let coord = instr.srcs[0];
                let (u, v, u_const, v_const) =
                    match deferred.get_mut(coord.0 as usize).and_then(Option::take) {
                        Some(Deferred::Coord {
                            u,
                            v,
                            u_const,
                            v_const,
                        }) => (u, v, u_const, v_const),
                        Some(other) => {
                            materialise(
                                other,
                                coord,
                                &mut init,
                                &mut consts,
                                &mut slot_of,
                                &mut steps,
                            );
                            (
                                rplane(&slot_of, coord, 0),
                                rplane(&slot_of, coord, 1),
                                false,
                                false,
                            )
                        }
                        None => {
                            let c = consts[slot_or_zero(&slot_of, coord)].is_some();
                            (rplane(&slot_of, coord, 0), rplane(&slot_of, coord, 1), c, c)
                        }
                    };
                let rec = FetchRec {
                    unit: sampler as usize,
                    u,
                    v,
                    u_const,
                    v_const,
                    perm: [0, 1, 2, 3],
                    width: 4,
                };
                if matches!(
                    sole_consumer(i + 1, instr.dst).map(|j| &instrs[j].op),
                    Some(Op::Dot | Op::Swizzle(_))
                ) {
                    deferred[instr.dst.0 as usize] = Some(Deferred::Fetch(rec));
                } else {
                    let dst = alloc(&mut init, &mut consts, None) * 4;
                    if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                        *entry = Some(dst / 4);
                    }
                    steps.push(tex_fetch_step(rec).finish(dst));
                }
                i += 1;
                continue;
            }

            // Rule 6c: a swizzle of a deferred texel folds into the fetch
            // recipe when its own sole consumer is a dot-unpack.
            if let Op::Swizzle(pattern) = instr.op {
                let s0 = instr.srcs[0];
                let fetch_deferred =
                    matches!(deferred.get(s0.0 as usize), Some(Some(Deferred::Fetch(_))));
                let fusible = fetch_deferred
                    && matches!(
                        sole_consumer(i + 1, instr.dst).map(|j| &instrs[j].op),
                        Some(Op::Dot)
                    );
                if fusible {
                    if let Some(Some(Deferred::Fetch(rec))) =
                        deferred.get_mut(s0.0 as usize).map(Option::take)
                    {
                        // value[c] = texel[rec.perm[pattern[c]]], raw reads
                        // exactly like the scalar tier's swizzle.
                        let perm = std::array::from_fn(|c| rec.perm[pattern[c].min(3) as usize]);
                        deferred[instr.dst.0 as usize] = Some(Deferred::Fetch(FetchRec {
                            perm,
                            width: instr.width,
                            ..rec
                        }));
                        i += 1;
                        continue;
                    }
                }
            }

            // Rule 6d: a dot of a deferred texel against constant weights
            // fuses — and defers once more when its sole consumer is the
            // kernels' affine `* span + lo` MAD.
            if instr.op == Op::Dot && instr.width == 1 && instr.srcs.len() >= 2 {
                let fetch_k = (0..2).find(|&k| {
                    matches!(
                        deferred.get(instr.srcs[k].0 as usize),
                        Some(Some(Deferred::Fetch(_)))
                    )
                });
                if let Some(k) = fetch_k {
                    let other = instr.srcs[1 - k];
                    let weights = if clear(&deferred, other) {
                        consts[slot_or_zero(&slot_of, other)]
                    } else {
                        None
                    };
                    if let Some(wv) = weights {
                        let Some(Some(Deferred::Fetch(rec))) =
                            deferred.get_mut(instr.srcs[k].0 as usize).map(Option::take)
                        else {
                            unreachable!("fetch_k guaranteed a deferred fetch");
                        };
                        let t_w = rec.width;
                        let w_w = widths.get(other.0 as usize).copied().unwrap_or(4);
                        let nc = t_w.max(w_w) as usize;
                        let widx =
                            std::array::from_fn(
                                |c| {
                                    if t_w == 1 {
                                        rec.perm[0]
                                    } else {
                                        rec.perm[c]
                                    }
                                },
                            );
                        let weff: [f32; 4] =
                            std::array::from_fn(|c| if w_w == 1 { wv[0] } else { wv[c] });
                        let mut tables = [[0.0f32; 256]; 4];
                        for (t, w) in tables.iter_mut().zip(weff).take(nc) {
                            for (byte, slot) in t.iter_mut().enumerate() {
                                *slot = u8_to_unorm(byte as u8) * w;
                            }
                        }
                        let fd = FetchDotRec {
                            fetch: rec,
                            widx,
                            weff,
                            nc,
                            tables: Arc::new(tables),
                        };
                        let affine = sole_consumer(i + 1, instr.dst).is_some_and(|j| {
                            let m = &instrs[j];
                            m.op == Op::Mad
                                && m.width == 1
                                && m.srcs.len() >= 3
                                && (m.srcs[0] == instr.dst || m.srcs[1] == instr.dst)
                                && m.srcs[2] != instr.dst
                        });
                        if affine {
                            deferred[instr.dst.0 as usize] = Some(Deferred::FetchDot(fd));
                        } else {
                            let dst = alloc(&mut init, &mut consts, None) * 4;
                            if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                                *entry = Some(dst / 4);
                            }
                            steps.push(fetch_dot_step(fd, None).finish(dst));
                        }
                        i += 1;
                        continue;
                    }
                }
            }

            // Rule 6e: the affine MAD consuming a deferred fetch-dot, with
            // constant scale and offset, seals the fused chain.
            if instr.op == Op::Mad && instr.width == 1 && instr.srcs.len() >= 3 {
                let fd_k = (0..2).find(|&k| {
                    matches!(
                        deferred.get(instr.srcs[k].0 as usize),
                        Some(Some(Deferred::FetchDot(_)))
                    )
                });
                if let Some(k) = fd_k {
                    let scale = instr.srcs[1 - k];
                    let offset = instr.srcs[2];
                    let post = if clear(&deferred, scale) && clear(&deferred, offset) {
                        match (
                            consts[slot_or_zero(&slot_of, scale)],
                            consts[slot_or_zero(&slot_of, offset)],
                        ) {
                            (Some(b), Some(c)) => Some((b[0], c[0])),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let Some(Some(Deferred::FetchDot(fd))) =
                        deferred.get_mut(instr.srcs[k].0 as usize).map(Option::take)
                    else {
                        unreachable!("fd_k guaranteed a deferred fetch-dot");
                    };
                    match post {
                        Some(bc) => {
                            // Defer once more when the decoded value is a
                            // multiplicand of an inner-product MAD — the
                            // whole `acc += A * B` fuses then (rule 6f).
                            let feeds_mad = sole_consumer(i + 1, instr.dst).is_some_and(|j| {
                                let m = &instrs[j];
                                m.op == Op::Mad
                                    && m.width == 1
                                    && m.srcs.len() >= 3
                                    && (m.srcs[0] == instr.dst || m.srcs[1] == instr.dst)
                                    && m.srcs[2] != instr.dst
                            });
                            if feeds_mad {
                                deferred[instr.dst.0 as usize] = Some(Deferred::Sealed(fd, bc));
                            } else {
                                let dst = alloc(&mut init, &mut consts, None) * 4;
                                if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                                    *entry = Some(dst / 4);
                                }
                                steps.push(fetch_dot_step(fd, Some(bc)).finish(dst));
                            }
                            i += 1;
                            continue;
                        }
                        None => {
                            // Shape broke (operands not constant after
                            // all): emit the fetch-dot alone and fall
                            // through to the generic MAD.
                            materialise(
                                Deferred::FetchDot(fd),
                                instr.srcs[k],
                                &mut init,
                                &mut consts,
                                &mut slot_of,
                                &mut steps,
                            );
                        }
                    }
                }
            }

            // Rule 6f: the inner-product MAD (`acc = A * B + acc`) whose
            // multiplicands are sealed chains fuses whole — the paper
            // kernels' entire loop iteration becomes one step.
            if instr.op == Op::Mad
                && instr.width == 1
                && instr.srcs.len() >= 3
                && clear(&deferred, instr.srcs[2])
                && (0..2).any(|k| {
                    matches!(
                        deferred.get(instr.srcs[k].0 as usize),
                        Some(Some(Deferred::Sealed(..)))
                    )
                })
            {
                let mut operand = |k: usize| -> SealedVal {
                    match deferred
                        .get_mut(instr.srcs[k].0 as usize)
                        .and_then(Option::take)
                    {
                        Some(Deferred::Sealed(fd, post)) => SealedVal::Chain(fd, post),
                        Some(other) => {
                            materialise(
                                other,
                                instr.srcs[k],
                                &mut init,
                                &mut consts,
                                &mut slot_of,
                                &mut steps,
                            );
                            SealedVal::Plane(rplane(&slot_of, instr.srcs[k], 0))
                        }
                        None => SealedVal::Plane(rplane(&slot_of, instr.srcs[k], 0)),
                    }
                };
                let va = operand(0);
                let vb = operand(1);
                let acc = rplane(&slot_of, instr.srcs[2], 0);
                let dst = alloc(&mut init, &mut consts, None) * 4;
                if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                    *entry = Some(dst / 4);
                }
                steps.push(fused_mad_step(va, vb, acc).finish(dst));
                i += 1;
                continue;
            }

            // Rule 4: fuse a run of scalar MADs threaded through their
            // accumulator when every intermediate has a single consumer.
            if instr.op == Op::Mad
                && instr.width == 1
                && instr.srcs.len() >= 3
                && instr.srcs.iter().all(|r| clear(&deferred, *r))
            {
                let mut end = i + 1;
                while end < instrs.len() {
                    let prev = &instrs[end - 1];
                    let next = &instrs[end];
                    let chains = next.op == Op::Mad
                        && next.width == 1
                        && next.srcs.len() >= 3
                        && next.srcs[2] == prev.dst
                        && next.srcs.iter().all(|r| clear(&deferred, *r))
                        && uses.get(prev.dst.0 as usize).copied().unwrap_or(0) == 1
                        && prev.dst != shader.output;
                    if chains {
                        end += 1;
                    } else {
                        break;
                    }
                }
                if end > i + 1 {
                    // Width-1 reads always take component 0, broadcast or
                    // not, so the chain resolves to component-0 planes.
                    let acc = rplane(&slot_of, instr.srcs[2], 0);
                    let terms: Vec<(usize, usize)> = instrs[i..end]
                        .iter()
                        .map(|m| {
                            (
                                rplane(&slot_of, m.srcs[0], 0),
                                rplane(&slot_of, m.srcs[1], 0),
                            )
                        })
                        .collect();
                    let dst = alloc(&mut init, &mut consts, None) * 4;
                    if let Some(entry) = slot_of.get_mut(instrs[end - 1].dst.0 as usize) {
                        *entry = Some(dst / 4);
                    }
                    steps.push(mad_chain_step(dst, acc, terms));
                    i = end;
                    continue;
                }
            }

            // A consumer outside the fusable patterns: any still-deferred
            // source must be materialised into real planes first, or the
            // generic paths below would read it through the zero slot.
            for s in &instr.srcs {
                if let Some(d) = deferred.get_mut(s.0 as usize).and_then(Option::take) {
                    materialise(d, *s, &mut init, &mut consts, &mut slot_of, &mut steps);
                }
            }

            // Resolve per-component source planes before allocating the
            // destination, so every source index is below the split.
            let b = |k: usize, c: usize| bplane(&slot_of, instr.srcs[k], c);
            let r = |k: usize, c: usize| rplane(&slot_of, instr.srcs[k], c);
            let bcomp = |k: usize| -> [usize; 4] { std::array::from_fn(|c| b(k, c)) };

            // Rule 3: a constant-mask Select keeps only the taken branch.
            if instr.op == Op::Select {
                if let Some(m) = consts[slot_or_zero(&slot_of, instr.srcs[0])] {
                    let taken = if m[0] != 0.0 { 1 } else { 2 };
                    let pairs: Vec<(usize, usize)> = (0..w).map(|c| (c, b(taken, c))).collect();
                    let dst = alloc(&mut init, &mut consts, None) * 4;
                    if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                        *entry = Some(dst / 4);
                    }
                    steps.push(copies_step(dst, pairs));
                    i += 1;
                    continue;
                }
            }

            let step = match instr.op {
                // Folded above (no sources): a `Const` never reaches here.
                Op::Const(v) => {
                    let s = alloc(&mut init, &mut consts, Some(v));
                    if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                        *entry = Some(s);
                    }
                    i += 1;
                    continue;
                }
                Op::Mov => copies_step_from(w, |c| b(0, c)),
                Op::Neg => unary_step(bcomp(0), w, |x| -x),
                Op::Add => binary_step(bcomp(0), bcomp(1), w, |a, b| a + b),
                Op::Sub => binary_step(bcomp(0), bcomp(1), w, |a, b| a - b),
                Op::Mul => binary_step(bcomp(0), bcomp(1), w, |a, b| a * b),
                Op::Div => binary_step(bcomp(0), bcomp(1), w, |a, b| a / b),
                Op::Min => binary_step(bcomp(0), bcomp(1), w, |a, b| a.min(b)),
                Op::Max => binary_step(bcomp(0), bcomp(1), w, |a, b| a.max(b)),
                Op::ModOp => binary_step(bcomp(0), bcomp(1), w, |a, b| a - b * (a / b).floor()),
                Op::Pow => binary_step(bcomp(0), bcomp(1), w, |a, b| a.powf(b)),
                Op::Step => {
                    binary_step(bcomp(0), bcomp(1), w, |a, b| if b < a { 0.0 } else { 1.0 })
                }
                Op::Mad => ternary_step(bcomp(0), bcomp(1), bcomp(2), w, |a, b, c| a * b + c),
                Op::Mul24 => binary_step([r(0, 0); 4], [r(1, 0); 4], 1, |a, b| {
                    truncate_to_24bit(truncate_to_24bit(a) * truncate_to_24bit(b))
                }),
                Op::Dot => {
                    let w0 = widths.get(instr.srcs[0].0 as usize).copied().unwrap_or(4);
                    let w1 = widths.get(instr.srcs[1].0 as usize).copied().unwrap_or(4);
                    dot_step(bcomp(0), bcomp(1), w0.max(w1) as usize)
                }
                Op::Clamp => ternary_step(bcomp(0), bcomp(1), bcomp(2), w, |x, lo, hi| {
                    x.max(lo).min(hi)
                }),
                Op::Floor => unary_step(bcomp(0), w, |x| x.floor()),
                Op::Fract => unary_step(bcomp(0), w, |x| x - x.floor()),
                Op::Abs => unary_step(bcomp(0), w, |x| x.abs()),
                Op::Sqrt => unary_step(bcomp(0), w, |x| x.sqrt()),
                Op::Sin => unary_step(bcomp(0), w, |x| x.sin()),
                Op::Cos => unary_step(bcomp(0), w, |x| x.cos()),
                Op::Exp2 => unary_step(bcomp(0), w, |x| x.exp2()),
                Op::Log2 => unary_step(bcomp(0), w, |x| x.log2()),
                Op::InverseSqrt => unary_step(bcomp(0), w, |x| 1.0 / x.sqrt()),
                Op::Sign => unary_step(bcomp(0), w, |x| {
                    if x > 0.0 {
                        1.0
                    } else if x < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                }),
                Op::Mix => ternary_step(bcomp(0), bcomp(1), bcomp(2), w, |a, b, t| {
                    a * (1.0 - t) + b * t
                }),
                Op::Cmp(cmp) => {
                    let (a, b) = ([r(0, 0); 4], [r(1, 0); 4]);
                    match cmp {
                        CmpOp::Lt => binary_step(a, b, 1, |x, y| f32::from(x < y)),
                        CmpOp::Le => binary_step(a, b, 1, |x, y| f32::from(x <= y)),
                        CmpOp::Gt => binary_step(a, b, 1, |x, y| f32::from(x > y)),
                        CmpOp::Ge => binary_step(a, b, 1, |x, y| f32::from(x >= y)),
                        CmpOp::Eq => binary_step(a, b, 1, |x, y| f32::from(x == y)),
                        CmpOp::Ne => binary_step(a, b, 1, |x, y| f32::from(x != y)),
                    }
                }
                Op::And => binary_step([r(0, 0); 4], [r(1, 0); 4], 1, |a, b| {
                    f32::from(a != 0.0 && b != 0.0)
                }),
                Op::Or => binary_step([r(0, 0); 4], [r(1, 0); 4], 1, |a, b| {
                    f32::from(a != 0.0 || b != 0.0)
                }),
                Op::Not => unary_step([r(0, 0); 4], 1, |x| if x != 0.0 { 0.0 } else { 1.0 }),
                Op::Select => select_step(r(0, 0), bcomp(1), bcomp(2), w),
                Op::Swizzle(pattern) => copies_step_from(w, |c| r(0, pattern[c] as usize)),
                Op::Merge { select } => copies_step_from(w, |c| {
                    if select[c] == 0xFF {
                        r(0, c)
                    } else {
                        b(1, select[c] as usize)
                    }
                }),
                Op::Construct => {
                    let mut pairs = Vec::new();
                    let mut k = 0usize;
                    for (src_i, reg) in instr.srcs.iter().take(4).enumerate() {
                        let sw = widths.get(reg.0 as usize).copied().unwrap_or(4) as usize;
                        for c in 0..sw {
                            if k < 4 {
                                pairs.push((k, r(src_i, c)));
                                k += 1;
                            }
                        }
                    }
                    PendingStep::Copies(pairs)
                }
                // Unreachable in practice (rule 6b intercepts every
                // fetch), kept for match exhaustiveness.
                Op::TexFetch { sampler } => tex_fetch_step(FetchRec {
                    unit: sampler as usize,
                    u: r(0, 0),
                    v: r(0, 1),
                    u_const: false,
                    v_const: false,
                    perm: [0, 1, 2, 3],
                    width: 4,
                }),
            };

            let dst = alloc(&mut init, &mut consts, None) * 4;
            if let Some(entry) = slot_of.get_mut(instr.dst.0 as usize) {
                *entry = Some(dst / 4);
            }
            steps.push(step.finish(dst));
            i += 1;
        }

        let output_base = slot_or_zero(&slot_of, shader.output) * 4;
        Ok(CompiledProgram {
            steps,
            init,
            varying_bases,
            output_base,
        })
    }

    /// Runs the compiled chain for a batch of `n` fragments (`1..=LANES`)
    /// on `core` (which must have been built for — or last rebound to —
    /// this program).
    ///
    /// The calling convention matches [`BatchCore::run`](crate::BatchCore):
    /// `varyings` is slot-major with stride [`LANES`], `samplers` supplies
    /// one implementation per texture unit, and lane `l`'s colour lands in
    /// `out[l]`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when `n` is out of range, the buffers are too
    /// small, a referenced texture unit has no sampler, or `core` belongs
    /// to a different program (plane-count mismatch).
    pub fn run(
        &self,
        core: &mut CompiledCore,
        varyings: &[[f32; 4]],
        n: usize,
        samplers: &[&dyn Sampler],
        out: &mut [[f32; 4]],
    ) -> Result<(), ExecError> {
        if core.planes.len() != self.init.len() {
            return Err(ExecError::new(
                "compiled core run with a program it was not bound to",
            ));
        }
        if n == 0 || n > LANES {
            return Err(ExecError::new(format!(
                "batch size {n} outside 1..={LANES}"
            )));
        }
        if varyings.len() < self.varying_bases.len() * LANES {
            return Err(ExecError::new(format!(
                "shader has {} varyings, {} lane-strided values provided",
                self.varying_bases.len(),
                varyings.len()
            )));
        }
        if out.len() < n {
            return Err(ExecError::new(format!(
                "output buffer holds {} lanes, batch has {n}",
                out.len()
            )));
        }
        for (slot, &base) in self.varying_bases.iter().enumerate() {
            let values = &varyings[slot * LANES..(slot + 1) * LANES];
            for c in 0..4 {
                let plane = &mut core.planes[base + c];
                for (l, v) in values[..n].iter().enumerate() {
                    plane[l] = v[c];
                }
            }
        }
        let mut lanes = Lanes {
            planes: &mut core.planes,
            n,
            samplers,
            fetched: &mut core.fetched,
        };
        for step in &self.steps {
            step(&mut lanes)?;
        }
        for (l, o) in out[..n].iter_mut().enumerate() {
            for (c, v) in o.iter_mut().enumerate() {
                *v = core.planes[self.output_base + c][l];
            }
        }
        Ok(())
    }

    /// Number of runtime steps the lowering kept (constant-folded and
    /// fused-away instructions emit none). Exposed for tests and
    /// diagnostics.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

/// A step body still waiting for its destination plane base: source plane
/// indices are resolved against the pre-destination slot map, then the
/// destination is allocated and the closure sealed.
enum PendingStep {
    Unary([usize; 4], usize, fn(f32) -> f32),
    Copies(Vec<(usize, usize)>),
    Boxed(Box<dyn FnOnce(usize) -> Step>),
}

impl PendingStep {
    fn finish(self, dst: usize) -> Step {
        match self {
            PendingStep::Unary(a, w, f) => Box::new(move |lx: &mut Lanes<'_, '_>| {
                let n = lx.n;
                let (lo, hi) = lx.planes.split_at_mut(dst);
                for c in 0..w {
                    let s = &lo[a[c]];
                    let o = &mut hi[c];
                    for l in 0..n {
                        o[l] = f(s[l]);
                    }
                }
                Ok(())
            }),
            PendingStep::Copies(pairs) => Box::new(move |lx: &mut Lanes<'_, '_>| {
                let n = lx.n;
                let (lo, hi) = lx.planes.split_at_mut(dst);
                for &(c, p) in &pairs {
                    hi[c][..n].copy_from_slice(&lo[p][..n]);
                }
                Ok(())
            }),
            PendingStep::Boxed(f) => f(dst),
        }
    }
}

/// Component-wise unary step over broadcast-resolved planes.
fn unary_step(a: [usize; 4], w: usize, f: fn(f32) -> f32) -> PendingStep {
    PendingStep::Unary(a, w, f)
}

/// Plane-copy step from per-component resolved sources.
fn copies_step_from(w: usize, src: impl Fn(usize) -> usize) -> PendingStep {
    PendingStep::Copies((0..w).map(|c| (c, src(c))).collect())
}

/// Plane-copy step with a pre-built pair list (sealed immediately).
fn copies_step(dst: usize, pairs: Vec<(usize, usize)>) -> Step {
    PendingStep::Copies(pairs).finish(dst)
}

/// Component-wise binary step; `f` must be the exact scalar expression.
fn binary_step(
    a: [usize; 4],
    b: [usize; 4],
    w: usize,
    f: impl Fn(f32, f32) -> f32 + Send + Sync + 'static,
) -> PendingStep {
    PendingStep::Boxed(Box::new(move |dst| {
        Box::new(move |lx: &mut Lanes<'_, '_>| {
            let n = lx.n;
            let (lo, hi) = lx.planes.split_at_mut(dst);
            for c in 0..w {
                let (pa, pb) = (&lo[a[c]], &lo[b[c]]);
                let o = &mut hi[c];
                for l in 0..n {
                    o[l] = f(pa[l], pb[l]);
                }
            }
            Ok(())
        })
    }))
}

/// Component-wise ternary step; `f` must be the exact scalar expression.
fn ternary_step(
    a: [usize; 4],
    b: [usize; 4],
    c3: [usize; 4],
    w: usize,
    f: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
) -> PendingStep {
    PendingStep::Boxed(Box::new(move |dst| {
        Box::new(move |lx: &mut Lanes<'_, '_>| {
            let n = lx.n;
            let (lo, hi) = lx.planes.split_at_mut(dst);
            for c in 0..w {
                let (pa, pb, pc) = (&lo[a[c]], &lo[b[c]], &lo[c3[c]]);
                let o = &mut hi[c];
                for l in 0..n {
                    o[l] = f(pa[l], pb[l], pc[l]);
                }
            }
            Ok(())
        })
    }))
}

/// Inner-product step: component-major accumulation, matching the scalar
/// loop's addition order per lane.
fn dot_step(a: [usize; 4], b: [usize; 4], nc: usize) -> PendingStep {
    PendingStep::Boxed(Box::new(move |dst| {
        Box::new(move |lx: &mut Lanes<'_, '_>| {
            let n = lx.n;
            let (lo, hi) = lx.planes.split_at_mut(dst);
            let o = &mut hi[0];
            o[..n].fill(0.0);
            for c in 0..nc {
                let (pa, pb) = (&lo[a[c]], &lo[b[c]]);
                for l in 0..n {
                    o[l] += pa[l] * pb[l];
                }
            }
            Ok(())
        })
    }))
}

/// Predicated-select step with a runtime mask.
fn select_step(mask: usize, t: [usize; 4], e: [usize; 4], w: usize) -> PendingStep {
    PendingStep::Boxed(Box::new(move |dst| {
        Box::new(move |lx: &mut Lanes<'_, '_>| {
            let n = lx.n;
            let (lo, hi) = lx.planes.split_at_mut(dst);
            for c in 0..w {
                let m = &lo[mask];
                let (pt, pe) = (&lo[t[c]], &lo[e[c]]);
                let o = &mut hi[c];
                for l in 0..n {
                    o[l] = if m[l] != 0.0 { pt[l] } else { pe[l] };
                }
            }
            Ok(())
        })
    }))
}

/// Texture-fetch step: batch-fetches the coordinate planes through the
/// bound sampler and transposes straight into the destination planes,
/// applying `perm` (a fused swizzle) over `width` components.
fn tex_fetch_step(rec: FetchRec) -> PendingStep {
    let FetchRec {
        unit,
        u,
        v,
        perm,
        width,
        ..
    } = rec;
    PendingStep::Boxed(Box::new(move |dst| {
        Box::new(move |lx: &mut Lanes<'_, '_>| {
            let n = lx.n;
            let sampler = *lx.samplers.get(unit).ok_or_else(|| {
                ExecError::new(format!("texture unit {unit} has no sampler bound"))
            })?;
            let (lo, hi) = lx.planes.split_at_mut(dst);
            sampler.fetch_batch(&lo[u][..n], &lo[v][..n], &mut lx.fetched[..n]);
            for (c, o) in hi.iter_mut().take(width as usize).enumerate() {
                for (l, t) in lx.fetched[..n].iter().enumerate() {
                    o[l] = t[perm[c]];
                }
            }
            Ok(())
        })
    }))
}

/// Evaluates a fused fetch→dot(→affine) chain into `out[..n]`, reading
/// coordinate planes from `lo`. Per lane the arithmetic is the scalar
/// tier's exact sequence — `acc` starts at 0.0, accumulates
/// `texel[widx[c]] * weff[c]` in component order, then optionally
/// `acc * b + a`. When every lane shares one coordinate bitwise (the
/// fixed matrix column of a row batch, say), the chain runs once and the
/// result is broadcast — the same computation, so the same bits.
fn eval_fetch_dot(
    rec: &FetchDotRec,
    post: Option<(f32, f32)>,
    lo: &[Plane],
    n: usize,
    samplers: &[&dyn Sampler],
    fetched: &mut [[f32; 4]; LANES],
    out: &mut [f32; LANES],
) -> Result<(), ExecError> {
    let sampler = *samplers.get(rec.fetch.unit).ok_or_else(|| {
        ExecError::new(format!(
            "texture unit {} has no sampler bound",
            rec.fetch.unit
        ))
    })?;
    let us = &lo[rec.fetch.u][..n];
    let vs = &lo[rec.fetch.v][..n];
    let eval = |t: &[f32; 4]| {
        let mut acc = 0.0f32;
        for c in 0..rec.nc {
            acc += t[rec.widx[c]] * rec.weff[c];
        }
        match post {
            Some((b, a)) => acc * b + a,
            None => acc,
        }
    };
    let v_uniform =
        rec.fetch.v_const || (n > 1 && vs.iter().all(|v| v.to_bits() == vs[0].to_bits()));
    let u_uniform =
        v_uniform && (rec.fetch.u_const || us.iter().all(|u| u.to_bits() == us[0].to_bits()));

    // Raw gather: index the RGBA8 bytes directly and accumulate through
    // the precomposed unorm × weight tables — the same multiplies in the
    // same order, so the same bits, without the AoS staging round trip.
    if let Some((bytes, w, h)) = sampler.raw_rgba8() {
        let (wf, hf) = (w as f32, h as f32);
        let xmax = i64::from(w) - 1;
        let ymax = i64::from(h) - 1;
        let gather = |x: usize, y: usize| -> f32 {
            let idx = (y * w as usize + x) * 4;
            let t = &bytes[idx..idx + 4];
            let mut acc = 0.0f32;
            for c in 0..rec.nc {
                acc += rec.tables[c][t[rec.widx[c]] as usize];
            }
            match post {
                Some((b, a)) => acc * b + a,
                None => acc,
            }
        };
        let xat = |u: f32| ((u * wf).floor() as i64).clamp(0, xmax) as usize;
        let yat = |v: f32| ((v * hf).floor() as i64).clamp(0, ymax) as usize;
        if u_uniform {
            out[..n].fill(gather(xat(us[0]), yat(vs[0])));
        } else if v_uniform {
            let y = yat(vs[0]);
            for (o, u) in out[..n].iter_mut().zip(us) {
                *o = gather(xat(*u), y);
            }
        } else {
            for ((o, u), v) in out[..n].iter_mut().zip(us).zip(vs) {
                *o = gather(xat(*u), yat(*v));
            }
        }
        return Ok(());
    }

    if u_uniform {
        sampler.fetch_batch(&us[..1], &vs[..1], &mut fetched[..1]);
        out[..n].fill(eval(&fetched[0]));
    } else if v_uniform {
        sampler.fetch_row_batch(us, vs[0], &mut fetched[..n]);
        for (l, t) in fetched[..n].iter().enumerate() {
            out[l] = eval(t);
        }
    } else {
        sampler.fetch_batch(us, vs, &mut fetched[..n]);
        for (l, t) in fetched[..n].iter().enumerate() {
            out[l] = eval(t);
        }
    }
    Ok(())
}

/// Fused fetch + dot-unpack (+ optional affine MAD) step: the texel never
/// touches the plane file.
fn fetch_dot_step(rec: FetchDotRec, post: Option<(f32, f32)>) -> PendingStep {
    PendingStep::Boxed(Box::new(move |dst| {
        Box::new(move |lx: &mut Lanes<'_, '_>| {
            let n = lx.n;
            let (lo, hi) = lx.planes.split_at_mut(dst);
            eval_fetch_dot(&rec, post, lo, n, lx.samplers, lx.fetched, &mut hi[0])
        })
    }))
}

/// Fully-fused inner-product step: `dst = A * B + acc`, where each
/// multiplicand is a sealed fetch→dot→affine chain evaluated on the spot
/// or an existing plane. Two texture reads, two unpacks and the
/// accumulate run per lane with only `acc` and `dst` touching the plane
/// file — the compiled tier's whole-iteration form of the paper kernels'
/// `acc += unpack(A) * unpack(B)`.
fn fused_mad_step(a: SealedVal, b: SealedVal, acc: usize) -> PendingStep {
    PendingStep::Boxed(Box::new(move |dst| {
        Box::new(move |lx: &mut Lanes<'_, '_>| {
            let n = lx.n;
            let (lo, hi) = lx.planes.split_at_mut(dst);
            let mut abuf = [0.0f32; LANES];
            let mut bbuf = [0.0f32; LANES];
            let av: &[f32] = match &a {
                SealedVal::Chain(rec, post) => {
                    eval_fetch_dot(rec, Some(*post), lo, n, lx.samplers, lx.fetched, &mut abuf)?;
                    &abuf
                }
                SealedVal::Plane(p) => &lo[*p],
            };
            let bv: &[f32] = match &b {
                SealedVal::Chain(rec, post) => {
                    eval_fetch_dot(rec, Some(*post), lo, n, lx.samplers, lx.fetched, &mut bbuf)?;
                    &bbuf
                }
                SealedVal::Plane(p) => &lo[*p],
            };
            let accp = &lo[acc];
            let o = &mut hi[0];
            for l in 0..n {
                o[l] = av[l] * bv[l] + accp[l];
            }
            Ok(())
        })
    }))
}

/// Fused MAD chain: keeps the accumulator in a stack buffer across the
/// whole run, writing only the final destination plane. Per lane the f32
/// sequence is `acc = a_k * b_k + acc` in instruction order — exactly the
/// scalar chain.
fn mad_chain_step(dst: usize, acc: usize, terms: Vec<(usize, usize)>) -> Step {
    Box::new(move |lx: &mut Lanes<'_, '_>| {
        let n = lx.n;
        let (lo, hi) = lx.planes.split_at_mut(dst);
        let mut accbuf = [0.0f32; LANES];
        accbuf[..n].copy_from_slice(&lo[acc][..n]);
        for &(pa, pb) in &terms {
            let (a, b) = (&lo[pa], &lo[pb]);
            for (l, acc) in accbuf[..n].iter_mut().enumerate() {
                // Keep the scalar tier's exact operand order (`a*b + acc`,
                // not `acc += a*b`) so even NaN-propagation cases agree.
                #[allow(clippy::assign_op_pattern)]
                {
                    *acc = a[l] * b[l] + *acc;
                }
            }
        }
        hi[0][..n].copy_from_slice(&accbuf[..n]);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;
    use crate::vm::ImageSampler;
    use crate::{compile, specialize, Executor};

    /// Differential harness: the compiled tier must match the scalar
    /// reference bit for bit, with and without uniform specialisation.
    fn check(source: &str, uniforms: &UniformValues, cases: &[[f32; 4]]) {
        let sh = compile(source).unwrap();
        let img_data: Vec<u8> = (0..4 * 4 * 4).map(|i| (i * 53 % 256) as u8).collect();
        let img = ImageSampler::new(4, 4, img_data);
        let samplers: [&dyn Sampler; 1] = [&img];
        let mut scalar = Executor::new(&sh, uniforms).unwrap();

        let n = cases.len();
        assert!(n <= LANES);
        let mut varyings = vec![[0.0f32; 4]; LANES * sh.varying_slots().count().max(1)];
        for (l, v) in cases.iter().enumerate() {
            varyings[l] = *v;
        }
        for shader in [&sh, &specialize(&sh, uniforms).unwrap()] {
            let program = CompiledProgram::build(shader, uniforms).unwrap();
            let mut core = CompiledCore::new(&program);
            let mut out = vec![[0.0f32; 4]; n];
            program
                .run(&mut core, &varyings, n, &samplers, &mut out)
                .unwrap();
            for (v, got) in cases.iter().zip(&out) {
                let want = scalar.run(&[*v], &samplers).unwrap();
                assert_eq!(got.map(f32::to_bits), want.map(f32::to_bits));
            }
        }
    }

    #[test]
    fn arithmetic_matches_scalar() {
        check(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x + v.y, v.x * v.y, v.x - v.y, v.x / v.y); }",
            &UniformValues::new(),
            &[
                [3.0, 4.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0],
                [f32::NAN, 1.0, 0.0, 0.0],
                [f32::INFINITY, -2.5, 0.0, 0.0],
            ],
        );
    }

    #[test]
    fn builtins_and_uniforms_match_scalar() {
        let mut uniforms = UniformValues::new();
        uniforms.set_scalar("u_gain", 2.5);
        check(
            "uniform float u_gain;\n\
             varying vec2 v;\n\
             void main() {\n\
               float a = clamp(v.x * u_gain, 0.0, 1.0);\n\
               float b = mix(a, fract(v.y), 0.25);\n\
               float c = dot(vec2(v.x, v.y), vec2(b, a));\n\
               gl_FragColor = vec4(a, b, c, mul24(v.x, u_gain));\n\
             }",
            &uniforms,
            &[
                [0.3, 0.8, 0.0, 0.0],
                [-2.0, 5.5, 0.0, 0.0],
                [1.000_001, 0.5, 0.0, 0.0],
            ],
        );
    }

    #[test]
    fn texture_and_select_match_scalar() {
        let mut uniforms = UniformValues::new();
        uniforms.set_scalar("u_cut", 0.5);
        check(
            "uniform sampler2D t;\n\
             uniform float u_cut;\n\
             varying vec2 v;\n\
             void main() {\n\
               vec4 c = texture2D(t, v);\n\
               if (c.x < u_cut) { c = c * 2.0; } else { c = c - vec4(0.25); }\n\
               gl_FragColor = c;\n\
             }",
            &uniforms,
            &[
                [0.1, 0.1, 0.0, 0.0],
                [0.9, 0.9, 0.0, 0.0],
                [0.4, 0.6, 0.0, 0.0],
            ],
        );
    }

    #[test]
    fn unrolled_accumulator_loop_matches_scalar() {
        // The paper's sgemm shape: an unrolled `acc += A * B` loop the
        // peephole optimiser turns into a MAD chain.
        check(
            "varying vec2 v;\n\
             void main() {\n\
               float acc = v.x;\n\
               for (float i = 1.0; i <= 6.0; i += 1.0) {\n\
                 acc += (v.x + i) * (v.y - i);\n\
               }\n\
               gl_FragColor = vec4(acc);\n\
             }",
            &UniformValues::new(),
            &[[0.25, 0.75, 0.0, 0.0], [13.0, -2.0, 0.0, 0.0]],
        );
    }

    #[test]
    fn mad_chain_fuses_consecutive_scalar_mads() {
        // Hand-built IR: v0 = varying, then t_k = a*b + t_{k-1} three
        // times. The intermediates have one use each, so the lowering
        // must fuse the run into a single step — and stay bit-identical.
        let varying = Reg(0);
        let mut instrs = Vec::new();
        let mut acc = varying;
        for k in 1..=3u32 {
            instrs.push(Instr {
                dst: Reg(k),
                width: 1,
                op: Op::Mad,
                srcs: vec![varying, varying, acc],
            });
            acc = Reg(k);
        }
        let shader = Shader {
            instrs,
            reg_count: 4,
            inputs: vec![crate::ir::InputSlot {
                name: "v".into(),
                kind: InputKind::Varying,
                width: 1,
                reg: varying,
            }],
            samplers: vec![],
            output: acc,
        };
        let program = CompiledProgram::build(&shader, &UniformValues::new()).unwrap();
        assert_eq!(program.step_count(), 1, "three MADs must fuse to one step");

        let mut core = CompiledCore::new(&program);
        let mut varyings = vec![[0.0f32; 4]; LANES];
        varyings[0] = [1.5, 0.0, 0.0, 0.0];
        varyings[1] = [-0.75, 0.0, 0.0, 0.0];
        let mut out = [[0.0f32; 4]; 2];
        program.run(&mut core, &varyings, 2, &[], &mut out).unwrap();
        let mut exec = crate::ExecCore::new(&shader, &UniformValues::new()).unwrap();
        for (l, v) in varyings[..2].iter().enumerate() {
            let want = exec.run(&shader, &[*v], &[]).unwrap();
            assert_eq!(out[l].map(f32::to_bits), want.map(f32::to_bits));
        }
    }

    #[test]
    fn texture_dot_chain_fuses_whole_iteration() {
        // The sgemm inner-iteration shape: constant-coordinate construct →
        // fetch → dot-unpack against constant weights → affine decode,
        // twice, combined by `acc += A * B`. The whole iteration must
        // lower to a single fused step (plus the output construct), and
        // stay bit-identical to the scalar tier on row-uniform and mixed
        // coordinate batches, including NaN and out-of-range coordinates.
        let source = "uniform sampler2D t;\n\
             varying vec2 v;\n\
             void main() {\n\
               float acc = 0.25;\n\
               float A = dot(texture2D(t, vec2(0.3, v.y)), vec4(1.0, 0.5, 0.25, 0.125)) * 2.0 + 0.5;\n\
               float B = dot(texture2D(t, vec2(v.x, 0.8)), vec4(1.0, 0.5, 0.25, 0.125)) * 2.0 + 0.5;\n\
               acc += A * B;\n\
               gl_FragColor = vec4(acc, acc, acc, 1.0);\n\
             }";
        let sh = compile(source).unwrap();
        let program = CompiledProgram::build(&sh, &UniformValues::new()).unwrap();
        // Expected steps: the two varying-component extracts, ONE fused
        // inner-product step for the whole `acc += A * B` chain, and the
        // output construct — 17 instructions down to 4 passes.
        assert!(
            program.step_count() <= 4,
            "fetch/dot/affine chains must fuse into the inner-product MAD, \
             got {} steps",
            program.step_count()
        );
        // Row-uniform batch: every lane shares `v.y` (the A chain takes
        // the broadcast path) while `v.x` varies (the B chain takes the
        // row-gather path).
        check(
            source,
            &UniformValues::new(),
            &[
                [0.1, 0.5, 0.0, 0.0],
                [0.4, 0.5, 0.0, 0.0],
                [0.9, 0.5, 0.0, 0.0],
            ],
        );
        // Mixed batch: nothing uniform, plus NaN and out-of-range
        // coordinates through the clamp path.
        check(
            source,
            &UniformValues::new(),
            &[
                [0.1, 0.2, 0.0, 0.0],
                [f32::NAN, 0.9, 0.0, 0.0],
                [-3.0, f32::NAN, 0.0, 0.0],
                [7.5, -1.5, 0.0, 0.0],
            ],
        );
    }

    #[test]
    fn swizzled_texture_dot_chain_fuses() {
        // The Fp24 decode shape: the dot consumes a swizzle of the texel
        // (`c.xyz`), which must fold into the fetch recipe.
        let source = "uniform sampler2D t;\n\
             varying vec2 v;\n\
             void main() {\n\
               vec4 c = texture2D(t, vec2(0.6, v.y));\n\
               float d = dot(c.xyz, vec3(1.0, 0.5, 0.25)) * 2.0 + 0.125;\n\
               gl_FragColor = vec4(d, d, d, 1.0);\n\
             }";
        let sh = compile(source).unwrap();
        let program = CompiledProgram::build(&sh, &UniformValues::new()).unwrap();
        // Expected steps: the `v.y` extract, ONE fused step for the whole
        // construct→fetch→swizzle→dot→affine chain, the output construct.
        assert!(
            program.step_count() <= 3,
            "swizzled fetch→dot→affine must fuse, got {} steps",
            program.step_count()
        );
        check(
            source,
            &UniformValues::new(),
            &[[0.0, 0.1, 0.0, 0.0], [0.0, 0.7, 0.0, 0.0]],
        );
    }

    #[test]
    fn unfusable_texture_chains_materialise() {
        // Chains that start like the fused pattern but break its shape
        // must fall back to unfused steps, not miscompile: a dot against
        // per-lane (non-constant) weights, an affine MAD with a
        // non-constant scale, and a texel that is consumed twice.
        check(
            "uniform sampler2D t;\n\
             varying vec2 v;\n\
             void main() {\n\
               float d = dot(texture2D(t, v), vec4(v.x, 1.0, 1.0, 1.0));\n\
               gl_FragColor = vec4(d, d, d, 1.0);\n\
             }",
            &UniformValues::new(),
            &[[0.2, 0.4, 0.0, 0.0], [0.8, 0.1, 0.0, 0.0]],
        );
        check(
            "uniform sampler2D t;\n\
             varying vec2 v;\n\
             void main() {\n\
               float A = dot(texture2D(t, vec2(0.3, v.y)), vec4(1.0, 0.5, 0.25, 0.125));\n\
               float r = A * v.x + 0.5;\n\
               gl_FragColor = vec4(r, r, r, 1.0);\n\
             }",
            &UniformValues::new(),
            &[[0.3, 0.6, 0.0, 0.0], [-0.5, 0.9, 0.0, 0.0]],
        );
        check(
            "uniform sampler2D t;\n\
             varying vec2 v;\n\
             void main() {\n\
               vec4 c = texture2D(t, vec2(v.x, 0.5));\n\
               float d = dot(c, vec4(1.0, 0.5, 0.25, 0.125));\n\
               gl_FragColor = vec4(d, c.x, c.y, 1.0);\n\
             }",
            &UniformValues::new(),
            &[[0.1, 0.0, 0.0, 0.0], [0.9, 0.0, 0.0, 0.0]],
        );
    }

    #[test]
    fn constant_kernel_folds_to_zero_steps() {
        let sh = compile(
            "uniform float u;\n\
             void main() { gl_FragColor = vec4(u * 2.0, u + 1.0, 0.5, 1.0); }",
        )
        .unwrap();
        let mut uniforms = UniformValues::new();
        uniforms.set_scalar("u", 3.0);
        let program = CompiledProgram::build(&sh, &uniforms).unwrap();
        assert_eq!(
            program.step_count(),
            0,
            "an all-constant kernel must fold away entirely"
        );
        let mut core = CompiledCore::new(&program);
        let mut out = [[0.0f32; 4]; 1];
        program.run(&mut core, &[], 1, &[], &mut out).unwrap();
        assert_eq!(out[0], [6.0, 4.0, 0.5, 1.0]);
    }

    #[test]
    fn unwritten_register_reads_zero() {
        // Raw IR reading a register nothing ever writes: the scalar tier
        // reads 0.0 from its zero-initialised file; the compiled tier
        // must agree via its zero slot.
        let shader = Shader {
            instrs: vec![Instr {
                dst: Reg(2),
                width: 4,
                op: Op::Mov,
                srcs: vec![Reg(1)],
            }],
            reg_count: 3,
            inputs: vec![],
            samplers: vec![],
            output: Reg(2),
        };
        let program = CompiledProgram::build(&shader, &UniformValues::new()).unwrap();
        let mut core = CompiledCore::new(&program);
        let mut out = [[f32::NAN; 4]; 1];
        program.run(&mut core, &[], 1, &[], &mut out).unwrap();
        assert_eq!(out[0], [0.0; 4]);
    }

    #[test]
    fn rebound_core_matches_fresh_core_bitwise() {
        let sh_a = compile(
            "uniform float g; varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x * g, v.y + g, sqrt(v.x), 1.0); }",
        )
        .unwrap();
        let sh_b = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(fract(v.y * 9.7), v.x, 0.0, 1.0); }",
        )
        .unwrap();
        let mut u = UniformValues::new();
        u.set_scalar("g", 3.25);
        let prog_a = CompiledProgram::build(&sh_a, &u).unwrap();
        let prog_b = CompiledProgram::build(&sh_b, &UniformValues::new()).unwrap();
        let mut core = CompiledCore::new(&prog_a);
        for (sh, uni, prog) in [
            (&sh_a, &u, &prog_a),
            (&sh_b, &UniformValues::new(), &prog_b),
            (&sh_a, &u, &prog_a),
        ] {
            core.rebind(prog);
            let mut fresh = CompiledCore::new(prog);
            let mut scalar = Executor::new(sh, uni).unwrap();
            let mut varyings = vec![[0.0f32; 4]; LANES];
            varyings[0] = [0.1, 0.9, 0.0, 0.0];
            varyings[1] = [-1.0, 2.0, 0.0, 0.0];
            let (mut got, mut want) = ([[0.0f32; 4]; 2], [[0.0f32; 4]; 2]);
            prog.run(&mut core, &varyings, 2, &[], &mut got).unwrap();
            prog.run(&mut fresh, &varyings, 2, &[], &mut want).unwrap();
            assert_eq!(
                got.map(|v| v.map(f32::to_bits)),
                want.map(|v| v.map(f32::to_bits))
            );
            for (l, v) in varyings[..2].iter().enumerate() {
                let reference = scalar.run(&[*v], &[]).unwrap();
                assert_eq!(got[l].map(f32::to_bits), reference.map(f32::to_bits));
            }
        }
    }

    #[test]
    fn validation_mirrors_the_batch_tier() {
        let sh = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let program = CompiledProgram::build(&sh, &UniformValues::new()).unwrap();
        let mut core = CompiledCore::new(&program);
        let mut out = [[0.0f32; 4]; 1];
        assert!(program.run(&mut core, &[], 0, &[], &mut out).is_err());
        assert!(program
            .run(&mut core, &[], LANES + 1, &[], &mut out)
            .is_err());
        assert!(program.run(&mut core, &[], 2, &[], &mut out).is_err());
        assert!(program.run(&mut core, &[], 1, &[], &mut out).is_ok());

        let tex = compile(
            "uniform sampler2D t; varying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let tex_prog = CompiledProgram::build(&tex, &UniformValues::new()).unwrap();
        let mut tex_core = CompiledCore::new(&tex_prog);
        let varyings = vec![[0.0f32; 4]; LANES];
        let err = tex_prog
            .run(&mut tex_core, &varyings, 1, &[], &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("no sampler bound"));

        let missing = compile("uniform float u; void main() { gl_FragColor = vec4(u); }").unwrap();
        assert!(CompiledProgram::build(&missing, &UniformValues::new()).is_err());
    }

    #[test]
    fn partial_batches_never_read_stale_lanes() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x, v.y, v.x + v.y, 1.0); }",
        )
        .unwrap();
        let program = CompiledProgram::build(&sh, &UniformValues::new()).unwrap();
        let mut core = CompiledCore::new(&program);
        let mut varyings = vec![[9.0f32; 4]; LANES];
        // Full batch of junk first, then a 2-lane batch: lanes 2.. of the
        // big run must not bleed into the small run's output.
        let mut out_full = [[0.0f32; 4]; LANES];
        program
            .run(&mut core, &varyings, LANES, &[], &mut out_full)
            .unwrap();
        varyings[0] = [0.25, 0.5, 0.0, 0.0];
        varyings[1] = [0.75, 0.1, 0.0, 0.0];
        let mut out = [[0.0f32; 4]; 2];
        program.run(&mut core, &varyings, 2, &[], &mut out).unwrap();
        assert_eq!(out[0], [0.25, 0.5, 0.75, 1.0]);
        assert_eq!(out[1], [0.75, 0.1, 0.85, 1.0]);
    }
}
