//! Tokens of the kernel shading language.

use std::fmt;

/// A lexical token, tagged with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
}

/// All token kinds of the language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A floating-point literal, e.g. `1.0`, `.5`, `3`.
    Float(f32),
    /// An identifier or keyword candidate.
    Ident(String),
    /// `precision`, `uniform`, `varying`, `const`, type names and control
    /// keywords are recognised by the parser from `Ident`; only punctuation
    /// and operators get dedicated kinds.
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::PlusAssign => write!(f, "+="),
            TokenKind::MinusAssign => write!(f, "-="),
            TokenKind::StarAssign => write!(f, "*="),
            TokenKind::SlashAssign => write!(f, "/="),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Question => write!(f, "?"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}
