//! Static cost analysis of compiled kernels.
//!
//! Walks the IR and produces the per-fragment quantities the TBDR timing
//! model consumes: ALU cycles (post MAD fusion — this is where the paper's
//! kernel-code optimisations become measurable) and the texture fetches,
//! classified as *streaming* or *dependent*.
//!
//! **Classification rule**: a fetch is *streaming* if and only if its
//! coordinate register is an unmodified (possibly swizzled or copied)
//! varying. Any computed coordinate — including the paper's
//! `vec2(i + blk_n, Coord0.y)` sgemm accesses — is *dependent*: the texture
//! unit cannot prefetch it from the interpolators, which is what makes such
//! fetches expensive on the SGX.

use crate::ir::{Op, Reg, Shader};

/// One texture fetch found in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchCost {
    /// Texture unit sampled.
    pub sampler: u8,
    /// Whether the coordinate is computed in-shader (see module docs).
    pub dependent: bool,
}

/// Per-fragment cost summary of a compiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCost {
    /// Arithmetic cycles per fragment.
    pub alu_cycles: f64,
    /// Every texture fetch, in program order.
    pub fetches: Vec<FetchCost>,
}

impl KernelCost {
    /// Number of streaming fetches.
    #[must_use]
    pub fn streaming_fetches(&self) -> usize {
        self.fetches.iter().filter(|f| !f.dependent).count()
    }

    /// Number of dependent fetches.
    #[must_use]
    pub fn dependent_fetches(&self) -> usize {
        self.fetches.iter().filter(|f| f.dependent).count()
    }
}

/// ALU cycle cost of one op on an embedded GPU ISA.
///
/// `Const` is free (preloaded), moves and swizzles cost half a cycle
/// (operand routing), transcendental-ish ops are multi-cycle, and `mul24`
/// undercuts a full multiply — the basis of the paper's fp24 gain.
#[must_use]
pub fn op_cycles(op: &Op) -> f64 {
    match op {
        Op::Const(_) => 0.0,
        Op::Mov | Op::Swizzle(_) | Op::Merge { .. } | Op::Construct => 0.5,
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Mad
        | Op::Min
        | Op::Max
        | Op::Clamp
        | Op::Floor
        | Op::Fract
        | Op::Abs
        | Op::Step
        | Op::Dot
        | Op::Cmp(_)
        | Op::And
        | Op::Or
        | Op::Not
        | Op::Select
        | Op::Neg => 1.0,
        Op::Mul24 => 0.6,
        Op::Mix => 2.0,
        Op::Sign => 1.0,
        Op::Div | Op::Sqrt | Op::InverseSqrt => 4.0,
        Op::ModOp => 3.0,
        Op::Sin | Op::Cos | Op::Exp2 | Op::Log2 => 6.0,
        Op::Pow => 8.0,
        // Issue cost only; memory latency is the platform model's business.
        Op::TexFetch { .. } => 1.0,
    }
}

/// Analyses a compiled kernel.
#[must_use]
pub fn analyze(shader: &Shader) -> KernelCost {
    // Coordinate provenance per register.
    #[derive(Clone, Copy, PartialEq)]
    enum Provenance {
        /// An unmodified varying (or swizzle/copy of one).
        Varying,
        /// Anything else.
        Computed,
    }

    let mut prov = vec![Provenance::Computed; shader.reg_count as usize];
    for slot in shader.varying_slots() {
        prov[slot.reg.0 as usize] = Provenance::Varying;
    }

    let mut alu = 0.0f64;
    let mut fetches = Vec::new();
    for instr in &shader.instrs {
        alu += op_cycles(&instr.op);
        match instr.op {
            Op::Mov | Op::Swizzle(_) => {
                let src: Reg = instr.srcs[0];
                prov[instr.dst.0 as usize] = prov[src.0 as usize];
            }
            Op::TexFetch { sampler } => {
                let coord = instr.srcs[0];
                fetches.push(FetchCost {
                    sampler,
                    dependent: prov[coord.0 as usize] != Provenance::Varying,
                });
            }
            _ => {}
        }
    }
    KernelCost {
        alu_cycles: alu,
        fetches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn direct_varying_fetch_is_streaming() {
        let sh = compile(
            "uniform sampler2D t; varying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let cost = analyze(&sh);
        assert_eq!(cost.fetches.len(), 1);
        assert_eq!(cost.streaming_fetches(), 1);
        assert_eq!(cost.dependent_fetches(), 0);
    }

    #[test]
    fn swizzled_varying_fetch_is_streaming() {
        let sh = compile(
            "uniform sampler2D t; varying vec4 v;\n\
             void main() { gl_FragColor = texture2D(t, v.xy); }",
        )
        .unwrap();
        assert_eq!(analyze(&sh).streaming_fetches(), 1);
    }

    #[test]
    fn computed_coordinate_fetch_is_dependent() {
        // The paper's sgemm access pattern.
        let sh = compile(
            "uniform sampler2D t; uniform float blk_n; varying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, vec2(0.25 + blk_n, v.y)); }",
        )
        .unwrap();
        let cost = analyze(&sh);
        assert_eq!(cost.dependent_fetches(), 1);
        assert_eq!(cost.streaming_fetches(), 0);
    }

    #[test]
    fn alu_cycles_grow_with_unrolled_work() {
        let small = compile(
            "varying vec2 v;\n\
             void main() {\n\
               float a = 0.0;\n\
               for (float i = 0.0; i < 2.0; i += 1.0) { a += v.x * v.y; }\n\
               gl_FragColor = vec4(a);\n\
             }",
        )
        .unwrap();
        let large = compile(
            "varying vec2 v;\n\
             void main() {\n\
               float a = 0.0;\n\
               for (float i = 0.0; i < 16.0; i += 1.0) { a += v.x * v.y; }\n\
               gl_FragColor = vec4(a);\n\
             }",
        )
        .unwrap();
        assert!(analyze(&large).alu_cycles > analyze(&small).alu_cycles);
    }

    #[test]
    fn mad_fusion_lowers_alu_cost() {
        use crate::{compile_with, CompileOptions, OptOptions};
        let src = "varying vec2 v; uniform float k;\n\
                   void main() { gl_FragColor = vec4(v.x * v.y + k); }";
        let fused = compile_with(src, &CompileOptions::default()).unwrap();
        let plain = compile_with(
            src,
            &CompileOptions {
                opt: OptOptions::without_mad_fusion(),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(analyze(&fused).alu_cycles < analyze(&plain).alu_cycles);
    }

    #[test]
    fn mul24_is_cheaper_than_mul_plus_semantics() {
        assert!(op_cycles(&Op::Mul24) < op_cycles(&Op::Mul));
    }
}
