//! Compile-time constant evaluation over the AST.
//!
//! Used for `const` globals, loop bounds (which must be compile-time
//! constant so loops can be fully unrolled, per the GLSL ES 1.00 Appendix A
//! restrictions the paper's target drivers enforce) and branch pruning.

use crate::ast::{BinOp, Expr, UnaryOp};

/// A compile-time value: a float vector or a boolean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// A float vector with the given component count.
    Num {
        /// Component values (unused lanes are zero).
        v: [f32; 4],
        /// Active component count, 1–4.
        width: u8,
    },
    /// A boolean.
    Bool(bool),
}

impl ConstVal {
    /// A scalar constant.
    #[must_use]
    pub fn scalar(x: f32) -> Self {
        ConstVal::Num {
            v: [x, 0.0, 0.0, 0.0],
            width: 1,
        }
    }

    /// The scalar value, if this is a width-1 number.
    #[must_use]
    pub fn as_scalar(&self) -> Option<f32> {
        match *self {
            ConstVal::Num { v, width: 1 } => Some(v[0]),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            ConstVal::Bool(b) => Some(b),
            _ => None,
        }
    }
}

fn splat(x: f32) -> [f32; 4] {
    [x; 4]
}

fn zip(a: [f32; 4], b: [f32; 4], wa: u8, wb: u8, f: impl Fn(f32, f32) -> f32) -> Option<ConstVal> {
    let (a, b, w) = match (wa, wb) {
        (x, y) if x == y => (a, b, x),
        (1, y) => (splat(a[0]), b, y),
        (x, 1) => (a, splat(b[0]), x),
        _ => return None,
    };
    let mut out = [0.0f32; 4];
    for i in 0..w as usize {
        out[i] = f(a[i], b[i]);
    }
    Some(ConstVal::Num { v: out, width: w })
}

/// Evaluates `expr` to a constant, looking up named constants through
/// `lookup` (const globals and active loop counters).
///
/// Returns `None` when the expression is not compile-time constant. Calls to
/// a small set of pure built-ins on constant arguments fold too.
pub fn const_eval(expr: &Expr, lookup: &dyn Fn(&str) -> Option<ConstVal>) -> Option<ConstVal> {
    match expr {
        Expr::Literal(x) => Some(ConstVal::scalar(*x)),
        Expr::BoolLiteral(b) => Some(ConstVal::Bool(*b)),
        Expr::Var(name) => lookup(name),
        Expr::Unary { op, expr } => {
            let v = const_eval(expr, lookup)?;
            match (op, v) {
                (UnaryOp::Neg, ConstVal::Num { v, width }) => {
                    let mut out = v;
                    for o in &mut out {
                        *o = -*o;
                    }
                    Some(ConstVal::Num { v: out, width })
                }
                (UnaryOp::Not, ConstVal::Bool(b)) => Some(ConstVal::Bool(!b)),
                _ => None,
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, lookup)?;
            let b = const_eval(rhs, lookup)?;
            match (op, a, b) {
                (BinOp::And, ConstVal::Bool(x), ConstVal::Bool(y)) => Some(ConstVal::Bool(x && y)),
                (BinOp::Or, ConstVal::Bool(x), ConstVal::Bool(y)) => Some(ConstVal::Bool(x || y)),
                (op, ConstVal::Num { v: a, width: wa }, ConstVal::Num { v: b, width: wb }) => {
                    if op.is_comparison() {
                        if wa != 1 || wb != 1 {
                            return None;
                        }
                        let (x, y) = (a[0], b[0]);
                        let r = match op {
                            BinOp::Lt => x < y,
                            BinOp::Le => x <= y,
                            BinOp::Gt => x > y,
                            BinOp::Ge => x >= y,
                            BinOp::Eq => x == y,
                            BinOp::Ne => x != y,
                            _ => unreachable!(),
                        };
                        Some(ConstVal::Bool(r))
                    } else {
                        let f: fn(f32, f32) -> f32 = match op {
                            BinOp::Add => |x, y| x + y,
                            BinOp::Sub => |x, y| x - y,
                            BinOp::Mul => |x, y| x * y,
                            BinOp::Div => |x, y| x / y,
                            _ => return None,
                        };
                        zip(a, b, wa, wb, f)
                    }
                }
                _ => None,
            }
        }
        Expr::Swizzle { base, fields, .. } => {
            let v = const_eval(base, lookup)?;
            let ConstVal::Num { v, width } = v else {
                return None;
            };
            let mut out = [0.0f32; 4];
            for (i, c) in fields.chars().enumerate() {
                if i >= 4 {
                    return None;
                }
                let idx = component_index(c)?;
                if idx >= width {
                    return None;
                }
                out[i] = v[idx as usize];
            }
            let w = fields.len() as u8;
            if w == 0 || w > 4 {
                return None;
            }
            Some(ConstVal::Num { v: out, width: w })
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            let c = const_eval(cond, lookup)?.as_bool()?;
            const_eval(if c { then_expr } else { else_expr }, lookup)
        }
        Expr::Call { name, args, .. } => {
            let vals: Option<Vec<ConstVal>> = args.iter().map(|a| const_eval(a, lookup)).collect();
            let vals = vals?;
            fold_builtin(name, &vals)
        }
    }
}

/// Maps a swizzle letter to a component index (xyzw / rgba / stpq).
#[must_use]
pub fn component_index(c: char) -> Option<u8> {
    match c {
        'x' | 'r' | 's' => Some(0),
        'y' | 'g' | 't' => Some(1),
        'z' | 'b' | 'p' => Some(2),
        'w' | 'a' | 'q' => Some(3),
        _ => None,
    }
}

fn fold_builtin(name: &str, args: &[ConstVal]) -> Option<ConstVal> {
    let num = |v: &ConstVal| match *v {
        ConstVal::Num { v, width } => Some((v, width)),
        ConstVal::Bool(_) => None,
    };
    match (name, args.len()) {
        ("vec2" | "vec3" | "vec4", _) => {
            let want: u8 = match name {
                "vec2" => 2,
                "vec3" => 3,
                _ => 4,
            };
            if args.len() == 1 {
                let (v, w) = num(&args[0])?;
                if w == 1 {
                    return Some(ConstVal::Num {
                        v: splat(v[0]),
                        width: want,
                    });
                }
            }
            let mut out = [0.0f32; 4];
            let mut n = 0usize;
            for a in args {
                let (v, w) = num(a)?;
                for &c in v.iter().take(w as usize) {
                    if n >= want as usize {
                        return None;
                    }
                    out[n] = c;
                    n += 1;
                }
            }
            (n == want as usize).then_some(ConstVal::Num {
                v: out,
                width: want,
            })
        }
        (
            "floor" | "fract" | "abs" | "sqrt" | "sin" | "cos" | "exp2" | "log2" | "inversesqrt"
            | "sign",
            1,
        ) => {
            let (v, w) = num(&args[0])?;
            let mut out = v;
            for o in out.iter_mut().take(w as usize) {
                *o = match name {
                    "floor" => o.floor(),
                    "fract" => *o - o.floor(),
                    "abs" => o.abs(),
                    "sin" => o.sin(),
                    "cos" => o.cos(),
                    "exp2" => o.exp2(),
                    "log2" => o.log2(),
                    "inversesqrt" => 1.0 / o.sqrt(),
                    "sign" => {
                        if *o > 0.0 {
                            1.0
                        } else if *o < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    }
                    _ => o.sqrt(),
                };
            }
            Some(ConstVal::Num { v: out, width: w })
        }
        ("min", 2) | ("max", 2) | ("mod", 2) | ("pow", 2) | ("step", 2) => {
            let (a, wa) = num(&args[0])?;
            let (b, wb) = num(&args[1])?;
            let f: fn(f32, f32) -> f32 = match name {
                "min" => f32::min,
                "max" => f32::max,
                "mod" => |x, y| x - y * (x / y).floor(),
                "pow" => f32::powf,
                _ => |edge, x| if x < edge { 0.0 } else { 1.0 },
            };
            zip(a, b, wa, wb, f)
        }
        ("clamp", 3) => {
            let x = num(&args[0])?;
            let lo = num(&args[1])?;
            let hi = num(&args[2])?;
            let m = zip(x.0, lo.0, x.1, lo.1, f32::max)?;
            let ConstVal::Num { v, width } = m else {
                return None;
            };
            zip(v, hi.0, width, hi.1, f32::min)
        }
        ("dot", 2) => {
            let (a, wa) = num(&args[0])?;
            let (b, wb) = num(&args[1])?;
            if wa != wb {
                return None;
            }
            let s = (0..wa as usize).map(|i| a[i] * b[i]).sum();
            Some(ConstVal::scalar(s))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval(src_expr: &str) -> Option<ConstVal> {
        // Wrap the expression into a tiny program and pull it back out.
        let src = format!("void main() {{ float x = {src_expr}; gl_FragColor = vec4(x); }}");
        let p = parse(&src).unwrap();
        let crate::ast::Stmt::Decl { names, .. } = &p.functions[0].body[0] else {
            panic!("expected decl");
        };
        const_eval(names[0].1.as_ref().unwrap(), &|_| None)
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(eval("1.0 + 2.0 * 3.0").unwrap().as_scalar(), Some(7.0));
        assert_eq!(eval("-(4.0 / 2.0)").unwrap().as_scalar(), Some(-2.0));
    }

    #[test]
    fn folds_the_paper_loop_bound() {
        // 1.0 / (M / BLOCK_SIZE) with M = 1024, BLOCK_SIZE = 16.
        let v = eval("1.0 / (1024.0 / 16.0)").unwrap().as_scalar().unwrap();
        assert!((v - 0.015625).abs() < 1e-9);
    }

    #[test]
    fn folds_builtins() {
        assert_eq!(eval("min(3.0, 2.0)").unwrap().as_scalar(), Some(2.0));
        assert_eq!(eval("clamp(5.0, 0.0, 1.0)").unwrap().as_scalar(), Some(1.0));
        assert_eq!(eval("floor(1.7)").unwrap().as_scalar(), Some(1.0));
        assert_eq!(eval("mod(7.0, 3.0)").unwrap().as_scalar(), Some(1.0));
        assert_eq!(eval("step(0.5, 0.4)").unwrap().as_scalar(), Some(0.0));
    }

    #[test]
    fn folds_vector_constructor_and_swizzle() {
        let v = eval("vec4(1.0, 2.0, 3.0, 4.0).zy").unwrap();
        assert_eq!(
            v,
            ConstVal::Num {
                v: [3.0, 2.0, 0.0, 0.0],
                width: 2
            }
        );
        let d = eval("dot(vec2(1.0, 2.0), vec2(3.0, 4.0))").unwrap();
        assert_eq!(d.as_scalar(), Some(11.0));
    }

    #[test]
    fn folds_comparisons_and_ternary() {
        assert_eq!(
            eval("1.0 < 2.0 ? 5.0 : 6.0").unwrap().as_scalar(),
            Some(5.0)
        );
    }

    #[test]
    fn non_const_vars_do_not_fold() {
        assert_eq!(eval("y + 1.0"), None);
    }

    #[test]
    fn lookup_supplies_named_constants() {
        let expr = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Var("k".into())),
            rhs: Box::new(Expr::Literal(2.0)),
        };
        let v = const_eval(&expr, &|n| (n == "k").then(|| ConstVal::scalar(21.0)));
        assert_eq!(v.unwrap().as_scalar(), Some(42.0));
    }

    #[test]
    fn component_letters_cover_all_aliases() {
        for (c, i) in [('x', 0), ('g', 1), ('p', 2), ('q', 3)] {
            assert_eq!(component_index(c), Some(i));
        }
        assert_eq!(component_index('m'), None);
    }
}
