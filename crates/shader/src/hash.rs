//! Stable structural hashing for shaders and uniform bindings.
//!
//! The draw-plan cache in `mgpu-gles` keys cached execution state by the
//! *content* of a shader and its bound uniforms, so the hashes here must
//! be stable across processes and runs — [`std::collections::HashMap`]'s
//! `RandomState` (or anything keyed off addresses or iteration order) is
//! unusable. Everything is hashed through 64-bit FNV-1a over an explicit,
//! documented byte encoding:
//!
//! * `f32` values hash as their IEEE-754 bit patterns, so `-0.0 != 0.0`
//!   and every NaN payload is distinguished — bitwise identity is the
//!   contract of the whole execution stack, and the hash must not be
//!   coarser than it;
//! * uniform bindings hash in **name-sorted** order, making the hash
//!   independent of insertion order and of `HashMap` iteration order.
//!
//! These are content hashes for caching, not cryptographic digests;
//! collisions are astronomically unlikely but tolerable only because the
//! cache key also carries the program handle and target geometry.

use crate::ir::{InputKind, Op, Shader};
use crate::vm::UniformValues;

/// 64-bit FNV-1a running hash with explicit write methods.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher in its initial state.
    #[must_use]
    pub const fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` (little-endian byte order).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs an `f32` as its exact bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Hashes a flat slice of `f32`s by bit pattern (length included).
#[must_use]
pub fn hash_f32_bits(values: &[f32]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(values.len() as u64);
    for &v in values {
        h.write_f32(v);
    }
    h.finish()
}

/// A small distinct tag per opcode so structurally different instructions
/// can never hash alike through payload coincidence.
fn op_tag(op: &Op) -> u8 {
    match op {
        Op::Const(_) => 0,
        Op::Mov => 1,
        Op::Neg => 2,
        Op::Add => 3,
        Op::Sub => 4,
        Op::Mul => 5,
        Op::Mad => 6,
        Op::Mul24 => 7,
        Op::Div => 8,
        Op::Dot => 9,
        Op::Min => 10,
        Op::Max => 11,
        Op::Clamp => 12,
        Op::Floor => 13,
        Op::Fract => 14,
        Op::Abs => 15,
        Op::Sqrt => 16,
        Op::Pow => 17,
        Op::ModOp => 18,
        Op::Mix => 19,
        Op::Sin => 20,
        Op::Cos => 21,
        Op::Exp2 => 22,
        Op::Log2 => 23,
        Op::InverseSqrt => 24,
        Op::Sign => 25,
        Op::Step => 26,
        Op::Cmp(_) => 27,
        Op::And => 28,
        Op::Or => 29,
        Op::Not => 30,
        Op::Select => 31,
        Op::Swizzle(_) => 32,
        Op::Merge { .. } => 33,
        Op::Construct => 34,
        Op::TexFetch { .. } => 35,
    }
}

impl Shader {
    /// A stable structural hash of the compiled shader: instructions
    /// (opcodes, immediate bit patterns, operands), input and sampler
    /// declarations, register count and output register. Equal shaders
    /// hash equal in every process; any structural difference — down to a
    /// single immediate bit — changes the hash with overwhelming
    /// probability.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u32(self.reg_count);
        h.write_u32(self.output.0);
        h.write_u64(self.inputs.len() as u64);
        for slot in &self.inputs {
            h.write_str(&slot.name);
            h.write_u8(match slot.kind {
                InputKind::Uniform => 0,
                InputKind::Varying => 1,
            });
            h.write_u8(slot.width);
            h.write_u32(slot.reg.0);
        }
        h.write_u64(self.samplers.len() as u64);
        for s in &self.samplers {
            h.write_str(&s.name);
            h.write_u8(s.unit);
        }
        h.write_u64(self.instrs.len() as u64);
        for i in &self.instrs {
            h.write_u32(i.dst.0);
            h.write_u8(i.width);
            h.write_u8(op_tag(&i.op));
            match &i.op {
                Op::Const(v) => {
                    for &c in v {
                        h.write_f32(c);
                    }
                }
                Op::Cmp(c) => h.write_u8(*c as u8),
                Op::Swizzle(p) => h.write(p),
                Op::Merge { select } => h.write(select),
                Op::TexFetch { sampler } => h.write_u8(*sampler),
                _ => {}
            }
            h.write_u64(i.srcs.len() as u64);
            for s in &i.srcs {
                h.write_u32(s.0);
            }
        }
        h.finish()
    }
}

impl UniformValues {
    /// A stable hash of the bound uniform values: name-sorted, values by
    /// f32 bit pattern. Independent of insertion order; sensitive to every
    /// bit of every component. The draw-plan cache uses this to detect
    /// uniform changes between draws.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        let mut entries: Vec<(&str, [f32; 4])> = self.entries().collect();
        entries.sort_by_key(|(name, _)| *name);
        let mut h = Fnv64::new();
        h.write_u64(entries.len() as u64);
        for (name, v) in entries {
            h.write_str(name);
            for c in v {
                h.write_f32(c);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn shader_hash_is_stable_and_content_sensitive() {
        let a =
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.0, 1.0); }").unwrap();
        let a2 =
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.0, 1.0); }").unwrap();
        let b =
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.5, 1.0); }").unwrap();
        assert_eq!(a.stable_hash(), a2.stable_hash());
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn uniform_hash_ignores_insertion_order() {
        let mut u1 = UniformValues::new();
        u1.set_scalar("a", 1.0).set_scalar("b", 2.0);
        let mut u2 = UniformValues::new();
        u2.set_scalar("b", 2.0).set_scalar("a", 1.0);
        assert_eq!(u1.stable_hash(), u2.stable_hash());
    }

    #[test]
    fn uniform_hash_sees_every_bit() {
        let mut u1 = UniformValues::new();
        u1.set_scalar("x", 0.0);
        let mut u2 = UniformValues::new();
        u2.set_scalar("x", -0.0);
        assert_ne!(u1.stable_hash(), u2.stable_hash(), "sign of zero matters");
        let mut u3 = UniformValues::new();
        u3.set("x", [0.0, 1.0, 0.0, 0.0]);
        let mut u4 = UniformValues::new();
        u4.set("x", [0.0, 0.0, 1.0, 0.0]);
        assert_ne!(
            u3.stable_hash(),
            u4.stable_hash(),
            "component position matters"
        );
    }

    #[test]
    fn f32_slice_hash_distinguishes_lengths() {
        assert_ne!(hash_f32_bits(&[0.0]), hash_f32_bits(&[0.0, 0.0]));
    }
}
