//! `mgpu-shaderc` — offline kernel compiler CLI.
//!
//! Compiles a kernel source file with the mgpu shader toolchain and prints
//! the IR listing, the static cost summary and (optionally) an
//! implementation-limit verdict.
//!
//! ```text
//! mgpu-shaderc [OPTIONS] <FILE | ->
//!
//! OPTIONS:
//!   --no-opt                 disable the peephole optimiser
//!   --no-mad                 disable MAD fusion only
//!   --max-instructions <N>   enforce an instruction limit
//!   --max-fetches <N>        enforce a texture-fetch limit
//!   --quiet                  print only the verdict line
//! ```

use std::io::Read;
use std::process::ExitCode;

use mgpu_shader::{compile_with, cost, render_error, CompileOptions, Limits, OptOptions};

struct Args {
    path: Option<String>,
    opt: OptOptions,
    limits: Limits,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: None,
        opt: OptOptions::full(),
        limits: Limits::unlimited(),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-opt" => args.opt = OptOptions::none(),
            "--no-mad" => args.opt = OptOptions::without_mad_fusion(),
            "--quiet" => args.quiet = true,
            "--max-instructions" => {
                let v = it.next().ok_or("--max-instructions needs a value")?;
                args.limits.max_instructions =
                    v.parse().map_err(|_| format!("bad number `{v}`"))?;
            }
            "--max-fetches" => {
                let v = it.next().ok_or("--max-fetches needs a value")?;
                args.limits.max_texture_fetches =
                    v.parse().map_err(|_| format!("bad number `{v}`"))?;
            }
            "--help" | "-h" => {
                return Err("usage: mgpu-shaderc [--no-opt] [--no-mad] \
                            [--max-instructions N] [--max-fetches N] [--quiet] <FILE | ->"
                    .to_owned())
            }
            other if args.path.is_none() => args.path = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if args.path.is_none() {
        return Err("no input file (use `-` for stdin)".to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let path = args.path.expect("validated");
    let source = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let options = CompileOptions {
        opt: args.opt,
        limits: args.limits,
    };
    match compile_with(&source, &options) {
        Ok(shader) => {
            let summary = cost::analyze(&shader);
            if !args.quiet {
                print!("{shader}");
                println!();
            }
            println!(
                "ok: {} instructions, {} texture fetches ({} streaming, {} dependent), {:.1} ALU cycles/fragment",
                shader.instruction_count(),
                shader.texture_fetch_count(),
                summary.streaming_fetches(),
                summary.dependent_fetches(),
                summary.alu_cycles
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            if e.is_limit_exceeded() {
                println!("error (implementation limit): {e}");
            } else {
                print!("{}", render_error(&source, &e));
            }
            ExitCode::FAILURE
        }
    }
}
