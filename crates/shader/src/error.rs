//! Compile- and run-time errors of the kernel language.

use std::error::Error;
use std::fmt;

/// An error produced while compiling a kernel.
///
/// The `Display` form is a single lowercase line including the source line
/// number where one is known, in the style of driver info logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
    line: Option<u32>,
    kind: CompileErrorKind,
}

/// Broad classification of compile errors, used by callers that react
/// differently to resource-limit failures (the paper's Fig. 4b relies on
/// detecting those).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileErrorKind {
    /// Lexical error (bad character, malformed number).
    Lex,
    /// Syntax error.
    Parse,
    /// Type or name error.
    Type,
    /// Loop bounds not compile-time constant, or loop too long to unroll.
    Loop,
    /// A platform shader implementation limit was exceeded
    /// (`max_instructions`, `max_texture_fetches`, ...).
    LimitExceeded,
}

impl CompileError {
    /// Creates an error with a message and optional source line.
    #[must_use]
    pub fn new(kind: CompileErrorKind, message: impl Into<String>, line: Option<u32>) -> Self {
        CompileError {
            message: message.into(),
            line,
            kind,
        }
    }

    /// The error classification.
    #[must_use]
    pub fn kind(&self) -> CompileErrorKind {
        self.kind
    }

    /// Whether this is a resource-limit failure (as opposed to a malformed
    /// program).
    #[must_use]
    pub fn is_limit_exceeded(&self) -> bool {
        self.kind == CompileErrorKind::LimitExceeded
    }

    /// The source line, if known.
    #[must_use]
    pub fn line(&self) -> Option<u32> {
        self.line
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for CompileError {}

/// Renders a compile error as a driver-style info log with the offending
/// source line and a marker column, e.g.:
///
/// ```text
/// error: line 3: unknown variable `ghost`
///   3 |     gl_FragColor = vec4(ghost);
///     |     ^
/// ```
///
/// Falls back to the plain message when the error carries no line.
///
/// # Examples
///
/// ```
/// let src = "void main() {\n    gl_FragColor = vec4(ghost);\n}";
/// let err = mgpu_shader::compile(src).unwrap_err();
/// let log = mgpu_shader::render_error(src, &err);
/// assert!(log.contains("ghost"));
/// assert!(log.contains("2 |"));
/// ```
#[must_use]
pub fn render_error(source: &str, err: &CompileError) -> String {
    let mut out = format!("error: {err}\n");
    if let Some(line) = err.line() {
        if let Some(text) = source.lines().nth(line as usize - 1) {
            let number = line.to_string();
            out.push_str(&format!("  {number} | {text}\n"));
            let indent = text.len() - text.trim_start().len();
            out.push_str(&format!(
                "  {:width$} | {:indent$}^\n",
                "",
                "",
                width = number.len(),
                indent = indent
            ));
        }
    }
    out
}

/// An error produced while executing a compiled kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    message: String,
}

impl ExecError {
    /// Creates an execution error.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_known() {
        let e = CompileError::new(CompileErrorKind::Parse, "unexpected token", Some(3));
        assert_eq!(e.to_string(), "line 3: unexpected token");
        let e2 = CompileError::new(CompileErrorKind::Type, "unknown name", None);
        assert_eq!(e2.to_string(), "unknown name");
    }

    #[test]
    fn render_error_without_line_is_plain() {
        let e = CompileError::new(CompileErrorKind::Type, "no main", None);
        assert_eq!(render_error("x", &e), "error: no main\n");
    }

    #[test]
    fn render_error_points_at_the_line() {
        let src = "void main() {\n    float x = ;\n}";
        let e = CompileError::new(CompileErrorKind::Parse, "unexpected `;`", Some(2));
        let log = render_error(src, &e);
        assert!(log.contains("2 |     float x = ;"));
        assert!(log.contains('^'));
    }

    #[test]
    fn limit_classification() {
        let e = CompileError::new(
            CompileErrorKind::LimitExceeded,
            "too many instructions",
            None,
        );
        assert!(e.is_limit_exceeded());
        assert!(!CompileError::new(CompileErrorKind::Lex, "x", None).is_limit_exceeded());
    }
}
