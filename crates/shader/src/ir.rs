//! The register-based intermediate representation kernels compile to.
//!
//! After loop unrolling, function inlining and `if` predication, a kernel is
//! a straight-line, single-assignment sequence of vector instructions over an
//! infinite virtual register file — close to what OpenGL ES 2-era shader
//! compilers fed their schedulers, and exactly what the resource-limit check
//! and the cost model inspect.

use std::fmt;

/// A virtual register (single-assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Instruction opcodes.
///
/// All arithmetic is component-wise over up-to-4-wide vectors unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Load an immediate vector.
    Const([f32; 4]),
    /// Copy.
    Mov,
    /// Negate.
    Neg,
    /// Add.
    Add,
    /// Subtract.
    Sub,
    /// Multiply.
    Mul,
    /// Fused multiply-add: `dst = src0 * src1 + src2` (one cycle on
    /// embedded GPU ALUs; produced by the peephole optimiser).
    Mad,
    /// 24-bit multiply (`mul24` built-in): cheaper, reduced precision.
    Mul24,
    /// Divide.
    Div,
    /// Inner product of the two sources (scalar result); maps to a single
    /// hardware instruction on most embedded ISAs.
    Dot,
    /// Component-wise minimum.
    Min,
    /// Component-wise maximum.
    Max,
    /// `clamp(x, lo, hi)` — single hardware op on most embedded ISAs.
    Clamp,
    /// `floor`.
    Floor,
    /// `fract`.
    Fract,
    /// `abs`.
    Abs,
    /// `sqrt`.
    Sqrt,
    /// `pow(x, y)`.
    Pow,
    /// `mod(x, y)`.
    ModOp,
    /// `mix(a, b, t)`.
    Mix,
    /// `sin(x)`.
    Sin,
    /// `cos(x)`.
    Cos,
    /// `exp2(x)`.
    Exp2,
    /// `log2(x)`.
    Log2,
    /// `inversesqrt(x)`.
    InverseSqrt,
    /// `sign(x)`.
    Sign,
    /// `step(edge, x)`.
    Step,
    /// Comparison producing a 0.0/1.0 scalar mask.
    Cmp(CmpOp),
    /// Logical and of two masks.
    And,
    /// Logical or of two masks.
    Or,
    /// Logical not of a mask.
    Not,
    /// `dst = mask != 0 ? src1 : src2` (predicated select; `src0` is the
    /// scalar mask, broadcast over the result width).
    Select,
    /// Reorder/duplicate components of `src0` by the pattern.
    Swizzle([u8; 4]),
    /// Write-masked merge for left-hand-side swizzles: for each destination
    /// component `c`, `select[c] == 0xFF` keeps `src0[c]`, otherwise the
    /// component `select[c]` of `src1` is taken.
    Merge {
        /// Per-component selector (0xFF = keep old).
        select: [u8; 4],
    },
    /// Concatenate the components of the sources into a wider vector
    /// (vector constructor).
    Construct,
    /// Sample texture unit `sampler` at the 2D coordinate in `src0`,
    /// producing an RGBA vec4 in [0, 1].
    TexFetch {
        /// Texture unit index.
        sampler: u8,
    },
}

/// Comparison kinds for [`Op::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Destination register.
    pub dst: Reg,
    /// Width of the destination in components (1–4).
    pub width: u8,
    /// Opcode.
    pub op: Op,
    /// Source registers (count depends on the opcode).
    pub srcs: Vec<Reg>,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <-{} ", self.dst, self.width)?;
        match &self.op {
            Op::Const(v) => write!(f, "const {v:?}")?,
            Op::Swizzle(p) => {
                let letters: String = p
                    .iter()
                    .take(self.width as usize)
                    .map(|&i| ['x', 'y', 'z', 'w'][i as usize])
                    .collect();
                write!(f, "swz.{letters} {}", self.srcs[0])?;
            }
            Op::TexFetch { sampler } => write!(f, "tex{} {}", sampler, self.srcs[0])?,
            Op::Merge { select } => {
                write!(
                    f,
                    "merge{:?} {}, {}",
                    select
                        .map(|x| x as i16)
                        .map(|x| if x == 0xFF { -1 } else { x }),
                    self.srcs[0],
                    self.srcs[1]
                )?;
            }
            Op::Cmp(c) => {
                write!(f, "cmp.{c:?} ")?;
                for (i, s) in self.srcs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
            }
            op => {
                write!(f, "{} ", format!("{op:?}").to_lowercase())?;
                for (i, s) in self.srcs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
            }
        }
        Ok(())
    }
}

/// Where a shader input register gets its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputKind {
    /// A `uniform` scalar/vector set by the application.
    Uniform,
    /// A `varying` interpolated per fragment.
    Varying,
}

/// An input binding of the compiled shader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSlot {
    /// Source-level name.
    pub name: String,
    /// Uniform or varying.
    pub kind: InputKind,
    /// Number of components.
    pub width: u8,
    /// The register preloaded with the value.
    pub reg: Reg,
}

/// A sampler binding of the compiled shader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerSlot {
    /// Source-level name of the `sampler2D` uniform.
    pub name: String,
    /// Texture unit index used by [`Op::TexFetch`].
    pub unit: u8,
}

/// A fully compiled fragment kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Shader {
    /// Straight-line instruction sequence.
    pub instrs: Vec<Instr>,
    /// Total virtual registers (inputs included).
    pub reg_count: u32,
    /// Uniform and varying input slots.
    pub inputs: Vec<InputSlot>,
    /// Sampler slots in declaration order.
    pub samplers: Vec<SamplerSlot>,
    /// Register holding the final `gl_FragColor` (always width 4).
    pub output: Reg,
}

impl Shader {
    /// Number of texture fetch instructions.
    #[must_use]
    pub fn texture_fetch_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i.op, Op::TexFetch { .. }))
            .count()
    }

    /// Number of instructions (the quantity GLSL implementation limits
    /// bound).
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.instrs.len()
    }

    /// The uniform input slots (excluding samplers).
    pub fn uniform_slots(&self) -> impl Iterator<Item = &InputSlot> {
        self.inputs.iter().filter(|s| s.kind == InputKind::Uniform)
    }

    /// The varying input slots.
    pub fn varying_slots(&self) -> impl Iterator<Item = &InputSlot> {
        self.inputs.iter().filter(|s| s.kind == InputKind::Varying)
    }

    /// Looks up a sampler's unit by name.
    #[must_use]
    pub fn sampler_unit(&self, name: &str) -> Option<u8> {
        self.samplers
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.unit)
    }
}

impl fmt::Display for Shader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for slot in &self.inputs {
            writeln!(
                f,
                "; {} {} -> {} (w{})",
                match slot.kind {
                    InputKind::Uniform => "uniform",
                    InputKind::Varying => "varying",
                },
                slot.name,
                slot.reg,
                slot.width
            )?;
        }
        for s in &self.samplers {
            writeln!(f, "; sampler {} -> unit {}", s.name, s.unit)?;
        }
        for i in &self.instrs {
            writeln!(f, "{i}")?;
        }
        writeln!(f, "; out {}", self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_display_is_readable() {
        let i = Instr {
            dst: Reg(3),
            width: 4,
            op: Op::Mad,
            srcs: vec![Reg(0), Reg(1), Reg(2)],
        };
        assert_eq!(i.to_string(), "r3 <-4 mad r0, r1, r2");

        let s = Instr {
            dst: Reg(5),
            width: 2,
            op: Op::Swizzle([1, 0, 0, 0]),
            srcs: vec![Reg(4)],
        };
        assert_eq!(s.to_string(), "r5 <-2 swz.yx r4");
    }

    #[test]
    fn shader_counts() {
        let sh = Shader {
            instrs: vec![
                Instr {
                    dst: Reg(1),
                    width: 4,
                    op: Op::TexFetch { sampler: 0 },
                    srcs: vec![Reg(0)],
                },
                Instr {
                    dst: Reg(2),
                    width: 4,
                    op: Op::Mov,
                    srcs: vec![Reg(1)],
                },
            ],
            reg_count: 3,
            inputs: vec![],
            samplers: vec![SamplerSlot {
                name: "t".into(),
                unit: 0,
            }],
            output: Reg(2),
        };
        assert_eq!(sh.texture_fetch_count(), 1);
        assert_eq!(sh.instruction_count(), 2);
        assert_eq!(sh.sampler_unit("t"), Some(0));
        assert_eq!(sh.sampler_unit("nope"), None);
    }
}
