//! Peephole optimiser over the straight-line IR.
//!
//! Implements the transformations the paper's §II ("Kernel Code") relies
//! on: **MAD fusion** (writing code so multiplies and adds combine into the
//! single-cycle multiply-add every embedded GPU ISA provides), plus the
//! standard enablers — constant folding, copy propagation and dead-code
//! elimination. Each pass can be toggled independently so the benchmark
//! harness can ablate them.

use std::collections::HashMap;

use crate::error::ExecError;
use crate::ir::{InputKind, Instr, Op, Reg, Shader};
use crate::vm::{eval_pure_op, register_widths, UniformValues};

/// Which optimisation passes run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptOptions {
    /// Fold instructions whose operands are all constants.
    pub fold_constants: bool,
    /// Propagate `mov` and identity swizzles.
    pub propagate_copies: bool,
    /// Fuse `mul` + `add` into `mad`.
    pub fuse_mad: bool,
    /// Deduplicate identical pure instructions (local CSE) — important
    /// after loop unrolling, which replicates constants and address math.
    pub merge_common: bool,
    /// Remove instructions whose results are never used.
    pub eliminate_dead: bool,
}

impl OptOptions {
    /// Everything on — the driver default.
    #[must_use]
    pub const fn full() -> Self {
        OptOptions {
            fold_constants: true,
            propagate_copies: true,
            fuse_mad: true,
            merge_common: true,
            eliminate_dead: true,
        }
    }

    /// Everything off — the naive-compiler ablation.
    #[must_use]
    pub const fn none() -> Self {
        OptOptions {
            fold_constants: false,
            propagate_copies: false,
            fuse_mad: false,
            merge_common: false,
            eliminate_dead: false,
        }
    }

    /// Full optimisation minus MAD fusion, for the kernel-code ablation.
    #[must_use]
    pub const fn without_mad_fusion() -> Self {
        OptOptions {
            fuse_mad: false,
            ..OptOptions::full()
        }
    }
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions::full()
    }
}

/// Optimises `shader` in place according to `options`.
pub fn optimize(shader: &mut Shader, options: &OptOptions) {
    // Iterate to a fixpoint: folding exposes copies, fusion exposes dead
    // multiplies, and so on. Eight rounds is far beyond what any kernel in
    // the suite needs; the loop exits early on no change.
    for _ in 0..8 {
        let mut changed = false;
        if options.fold_constants {
            changed |= fold_constants(shader);
        }
        if options.propagate_copies {
            changed |= propagate_copies(shader);
        }
        if options.fuse_mad {
            changed |= fuse_mad(shader);
        }
        if options.merge_common {
            changed |= merge_common(shader);
        }
        if options.eliminate_dead {
            changed |= eliminate_dead(shader);
        }
        if !changed {
            break;
        }
    }
}

/// Bind-time specialisation: folds concrete uniform values into `shader`
/// as constants and re-optimises, producing a slimmer per-draw shader.
///
/// Each uniform register is seeded with an `Op::Const` of its bound value,
/// then the full optimisation pipeline (constant folding, copy propagation,
/// CSE, DCE) runs together with [`prune_const_selects`], which resolves
/// `Select`s whose condition became a known constant. All passes preserve
/// bitwise f32 semantics — folding evaluates through the same
/// `eval_pure_op` the interpreter uses — so the specialised shader's output
/// is byte-identical to running the original with the same uniforms.
///
/// The returned shader keeps its input declarations, so executors built
/// from it still accept (and ignore) the same `UniformValues`.
///
/// # Errors
///
/// Returns [`ExecError`] if a uniform declared by the shader has no value
/// in `uniforms` — the same condition `Executor::new` reports.
pub fn specialize(shader: &Shader, uniforms: &UniformValues) -> Result<Shader, ExecError> {
    let mut out = shader.clone();
    let mut prelude = Vec::new();
    for slot in &out.inputs {
        if slot.kind == InputKind::Uniform {
            let v = uniforms
                .get(&slot.name)
                .ok_or_else(|| ExecError::new(format!("uniform `{}` is not set", slot.name)))?;
            prelude.push(Instr {
                dst: slot.reg,
                width: slot.width,
                op: Op::Const(v),
                srcs: Vec::new(),
            });
        }
    }
    out.instrs.splice(0..0, prelude);
    let options = OptOptions::full();
    optimize(&mut out, &options);
    // Select pruning exposes new folding opportunities (the surviving
    // branch may now be all-constant), so interleave to a fixpoint.
    while prune_const_selects(&mut out) {
        optimize(&mut out, &options);
    }
    Ok(out)
}

/// Rewrites `Select`s whose condition register is a known constant into a
/// `Mov` of the taken branch. The scalar VM reads the condition's raw
/// component 0 and broadcasts either branch through the usual width rules,
/// exactly what the replacement `Mov` does — bitwise equivalence holds for
/// every lane.
fn prune_const_selects(shader: &mut Shader) -> bool {
    let widths = register_widths(shader);
    let mut consts: HashMap<Reg, [f32; 4]> = HashMap::new();
    let mut changed = false;
    for instr in &mut shader.instrs {
        if let Op::Const(v) = instr.op {
            consts.insert(instr.dst, v);
            continue;
        }
        if matches!(instr.op, Op::Select) {
            if let Some(mask) = consts.get(&instr.srcs[0]) {
                let taken = if mask[0] != 0.0 {
                    instr.srcs[1]
                } else {
                    instr.srcs[2]
                };
                // A wider-than-dst source would later be aliased through
                // copy propagation without the narrowing re-read; skip the
                // (never lowered in practice) mismatch instead of risking
                // a semantic change.
                let src_w = widths[taken.0 as usize];
                if src_w == instr.width || src_w == 1 {
                    instr.op = Op::Mov;
                    instr.srcs = vec![taken];
                    changed = true;
                }
            }
        }
    }
    changed
}

fn fold_constants(shader: &mut Shader) -> bool {
    let widths = register_widths(shader);
    let mut consts: HashMap<Reg, [f32; 4]> = HashMap::new();
    let mut changed = false;
    for instr in &mut shader.instrs {
        if let Op::Const(v) = instr.op {
            consts.insert(instr.dst, v);
            continue;
        }
        if matches!(instr.op, Op::TexFetch { .. }) {
            continue;
        }
        let all_const = instr.srcs.iter().all(|s| consts.contains_key(s));
        if !all_const {
            continue;
        }
        let srcs: Vec<[f32; 4]> = instr.srcs.iter().map(|s| consts[s]).collect();
        let src_widths: Vec<u8> = instr.srcs.iter().map(|s| widths[s.0 as usize]).collect();
        if let Some(v) = eval_pure_op(&instr.op, &srcs, &src_widths, instr.width) {
            instr.op = Op::Const(v);
            instr.srcs.clear();
            consts.insert(instr.dst, v);
            changed = true;
        }
    }
    changed
}

fn propagate_copies(shader: &mut Shader) -> bool {
    let widths = register_widths(shader);
    let mut alias: HashMap<Reg, Reg> = HashMap::new();
    let mut changed = false;
    for instr in &mut shader.instrs {
        // Rewrite sources through known aliases first.
        for s in &mut instr.srcs {
            if let Some(&a) = alias.get(s) {
                *s = a;
                changed = true;
            }
        }
        let identity_swizzle = match instr.op {
            Op::Mov => true,
            Op::Swizzle(p) => {
                let src_w = widths[instr.srcs[0].0 as usize];
                instr.width == src_w && (0..instr.width as usize).all(|c| p[c] == c as u8)
            }
            _ => false,
        };
        if identity_swizzle {
            alias.insert(instr.dst, instr.srcs[0]);
        }
    }
    changed
}

fn fuse_mad(shader: &mut Shader) -> bool {
    // Map each register to the (a, b) of the Mul that defines it.
    let mut muls: HashMap<Reg, (Reg, Reg)> = HashMap::new();
    let mut changed = false;
    let widths = register_widths(shader);
    for idx in 0..shader.instrs.len() {
        let instr = &shader.instrs[idx];
        match instr.op {
            Op::Mul => {
                muls.insert(instr.dst, (instr.srcs[0], instr.srcs[1]));
            }
            Op::Add => {
                let (x, y) = (instr.srcs[0], instr.srcs[1]);
                // Prefer fusing the side whose Mul width matches the add's
                // (scalar-broadcast fusions stay correct either way because
                // the VM broadcasts width-1 operands).
                let candidate = [x, y]
                    .into_iter()
                    .find(|r| muls.contains_key(r) && widths[r.0 as usize] == instr.width)
                    .or_else(|| [x, y].into_iter().find(|r| muls.contains_key(r)));
                if let Some(m) = candidate {
                    let (a, b) = muls[&m];
                    let other = if m == x { y } else { x };
                    let instr = &mut shader.instrs[idx];
                    instr.op = Op::Mad;
                    instr.srcs = vec![a, b, other];
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

/// Builds a structural key for an instruction, with float payloads keyed
/// by their bit patterns so `-0.0`/`NaN` never alias `0.0`.
fn instr_key(op: &Op, srcs: &[Reg], width: u8) -> String {
    use std::fmt::Write as _;
    let mut key = String::new();
    match op {
        Op::Const(v) => {
            let _ = write!(
                key,
                "const:{:08x}{:08x}{:08x}{:08x}",
                v[0].to_bits(),
                v[1].to_bits(),
                v[2].to_bits(),
                v[3].to_bits()
            );
        }
        Op::Swizzle(p) => {
            let _ = write!(key, "swz:{p:?}");
        }
        Op::Merge { select } => {
            let _ = write!(key, "merge:{select:?}");
        }
        Op::TexFetch { sampler } => {
            let _ = write!(key, "tex:{sampler}");
        }
        other => {
            let _ = write!(key, "{other:?}");
        }
    }
    let _ = write!(key, "/w{width}");
    for s in srcs {
        let _ = write!(key, "/r{}", s.0);
    }
    key
}

/// Local common-subexpression elimination: the first occurrence of each
/// structurally identical pure instruction wins; later duplicates become
/// aliases rewritten into their users. Texture fetches participate too —
/// re-fetching the same coordinate from the same unit is pure in GLES2
/// (no derivatives in the kernel subset), and real compilers merge them.
fn merge_common(shader: &mut Shader) -> bool {
    let mut seen: HashMap<String, Reg> = HashMap::new();
    let mut alias: HashMap<Reg, Reg> = HashMap::new();
    let mut changed = false;
    for instr in &mut shader.instrs {
        for s in &mut instr.srcs {
            if let Some(&a) = alias.get(s) {
                *s = a;
                changed = true;
            }
        }
        let key = instr_key(&instr.op, &instr.srcs, instr.width);
        match seen.get(&key) {
            Some(&first) => {
                // Rewrite this duplicate as a Mov so copy propagation and
                // DCE clean it up on the next round.
                alias.insert(instr.dst, first);
                instr.op = Op::Mov;
                instr.srcs = vec![first];
                changed = true;
            }
            None => {
                seen.insert(key, instr.dst);
            }
        }
    }
    changed
}

fn eliminate_dead(shader: &mut Shader) -> bool {
    let mut live = vec![false; shader.reg_count as usize];
    live[shader.output.0 as usize] = true;
    for instr in shader.instrs.iter().rev() {
        if live[instr.dst.0 as usize] {
            for s in &instr.srcs {
                live[s.0 as usize] = true;
            }
        }
    }
    let before = shader.instrs.len();
    shader.instrs.retain(|i| live[i.dst.0 as usize]);
    shader.instrs.len() != before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;
    use crate::vm::{Executor, UniformValues};

    fn build(src: &str, options: &OptOptions) -> Shader {
        let mut sh = lower(&parse(src).unwrap()).unwrap();
        optimize(&mut sh, options);
        sh
    }

    #[test]
    fn mad_fusion_reduces_instruction_count() {
        let src = "
            varying vec2 v;
            uniform float k;
            void main() { gl_FragColor = vec4(v.x * v.y + k); }
        ";
        let fused = build(src, &OptOptions::full());
        let plain = build(src, &OptOptions::without_mad_fusion());
        assert!(fused.instrs.iter().any(|i| i.op == Op::Mad));
        assert!(!plain.instrs.iter().any(|i| i.op == Op::Mad));
        assert!(fused.instruction_count() < plain.instruction_count());
    }

    #[test]
    fn optimisation_preserves_semantics() {
        let src = "
            varying vec2 v;
            void main() {
                float acc = 0.0;
                for (float i = 1.0; i <= 3.0; i += 1.0) {
                    acc += v.x * i + v.y;
                }
                gl_FragColor = vec4(acc, clamp(acc, 0.0, 1.0), fract(acc), 1.0);
            }
        ";
        let opt = build(src, &OptOptions::full());
        let raw = build(src, &OptOptions::none());
        let mut e1 = Executor::new(&opt, &UniformValues::new()).unwrap();
        let mut e2 = Executor::new(&raw, &UniformValues::new()).unwrap();
        for (x, y) in [(0.1f32, 0.9f32), (2.0, -1.0), (0.0, 0.0)] {
            let a = e1.run(&[[x, y, 0.0, 0.0]], &[]).unwrap();
            let b = e2.run(&[[x, y, 0.0, 0.0]], &[]).unwrap();
            for c in 0..4 {
                assert!((a[c] - b[c]).abs() < 1e-5, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn constant_folding_collapses_const_math() {
        // blk_n-style uniform keeps things non-constant; pure const math
        // folds to a single Const.
        let sh = build(
            "void main() { gl_FragColor = vec4(1.0 + 2.0 * 3.0); }",
            &OptOptions::full(),
        );
        // Everything folds into constants; no arithmetic survives.
        assert!(sh
            .instrs
            .iter()
            .all(|i| matches!(i.op, Op::Const(_) | Op::Swizzle(_))));
    }

    #[test]
    fn dead_code_is_removed() {
        let src = "
            varying vec2 v;
            void main() {
                float unused = v.x * v.y + 3.0;
                float unused2 = sqrt(unused);
                gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0);
            }
        ";
        let opt = build(src, &OptOptions::full());
        let raw = build(src, &OptOptions::none());
        assert!(opt.instruction_count() < raw.instruction_count());
        assert!(!opt.instrs.iter().any(|i| i.op == Op::Sqrt));
    }

    #[test]
    fn unused_texture_fetches_are_dce_candidates() {
        let src = "
            uniform sampler2D t;
            varying vec2 v;
            void main() {
                vec4 unused = texture2D(t, v);
                gl_FragColor = vec4(v, 0.0, 1.0);
            }
        ";
        let opt = build(src, &OptOptions::full());
        assert_eq!(opt.texture_fetch_count(), 0);
    }

    #[test]
    fn optimizer_is_idempotent() {
        let src = "
            varying vec2 v;
            uniform float k;
            void main() { gl_FragColor = vec4(v.x * k + v.y, v.y * k + 1.0, 0.0, 1.0); }
        ";
        let mut once = build(src, &OptOptions::full());
        let snapshot = once.clone();
        optimize(&mut once, &OptOptions::full());
        assert_eq!(once, snapshot);
    }

    #[test]
    fn specialisation_folds_uniforms_and_preserves_bits() {
        let src = "
            uniform float k;
            uniform float cut;
            varying vec2 v;
            void main() {
                float x = v.x * k + k * 2.0;
                if (k < cut) { x = x + 1.0; } else { x = x * 0.5; }
                gl_FragColor = vec4(x, k, v.y, 1.0);
            }
        ";
        let sh = build(src, &OptOptions::full());
        let mut uniforms = UniformValues::new();
        uniforms.set_scalar("k", 3.0);
        uniforms.set_scalar("cut", 2.0);
        let spec = specialize(&sh, &uniforms).unwrap();
        // The branch on two now-constant uniforms must be resolved away.
        assert!(!spec.instrs.iter().any(|i| matches!(i.op, Op::Select)));
        assert!(spec.instruction_count() < sh.instruction_count());
        let mut orig = Executor::new(&sh, &uniforms).unwrap();
        let mut fast = Executor::new(&spec, &uniforms).unwrap();
        for v in [[0.3f32, -1.5, 0.0, 0.0], [f32::NAN, 7.0, 0.0, 0.0]] {
            let a = orig.run(&[v], &[]).unwrap();
            let b = fast.run(&[v], &[]).unwrap();
            assert_eq!(a.map(f32::to_bits), b.map(f32::to_bits));
        }
    }

    #[test]
    fn specialisation_requires_all_uniforms() {
        let sh = build(
            "uniform float k; void main() { gl_FragColor = vec4(k); }",
            &OptOptions::full(),
        );
        assert!(specialize(&sh, &UniformValues::new()).is_err());
    }

    #[test]
    fn cse_merges_duplicate_constants_and_subexpressions() {
        let src = "
            varying vec2 v;
            void main() {
                float a = v.x * 255.0 + 1.0;
                float b = v.x * 255.0 + 2.0;
                gl_FragColor = vec4(a, b, a, b);
            }
        ";
        let merged = build(src, &OptOptions::full());
        let unmerged = build(
            src,
            &OptOptions {
                merge_common: false,
                ..OptOptions::full()
            },
        );
        assert!(merged.instruction_count() < unmerged.instruction_count());
        // The shared `v.x * 255.0` must survive exactly once.
        let muls = merged
            .instrs
            .iter()
            .filter(|i| matches!(i.op, Op::Mul | Op::Mad))
            .count();
        assert!(muls <= 2, "{merged}");
    }

    #[test]
    fn cse_merges_identical_texture_fetches() {
        let src = "
            uniform sampler2D t;
            varying vec2 v;
            void main() {
                vec4 a = texture2D(t, v);
                vec4 b = texture2D(t, v);
                gl_FragColor = a + b;
            }
        ";
        let sh = build(src, &OptOptions::full());
        assert_eq!(sh.texture_fetch_count(), 1);
    }

    #[test]
    fn cse_does_not_merge_across_different_bits() {
        // 0.0 and -0.0 have different bit patterns; CSE must keep both.
        let src = "
            varying vec2 v;
            void main() { gl_FragColor = vec4(v.x + 0.0, v.x + (-0.0), 0.0, 1.0); }
        ";
        let sh = build(src, &OptOptions::full());
        let mut e = crate::vm::Executor::new(&sh, &crate::vm::UniformValues::new()).unwrap();
        let out = e.run(&[[2.0, 0.0, 0.0, 0.0]], &[]).unwrap();
        assert_eq!(out[0], 2.0);
        assert_eq!(out[1], 2.0);
    }

    #[test]
    fn cse_preserves_semantics_of_unrolled_loops() {
        let src = "
            varying vec2 v;
            void main() {
                float acc = 0.0;
                for (float i = 0.0; i < 8.0; i += 1.0) {
                    acc += v.x * 0.125;
                }
                gl_FragColor = vec4(acc);
            }
        ";
        let merged = build(src, &OptOptions::full());
        let raw = build(src, &OptOptions::none());
        assert!(merged.instruction_count() < raw.instruction_count());
        let mut e1 = crate::vm::Executor::new(&merged, &crate::vm::UniformValues::new()).unwrap();
        let mut e2 = crate::vm::Executor::new(&raw, &crate::vm::UniformValues::new()).unwrap();
        for x in [0.0f32, 1.0, -3.5] {
            let a = e1.run(&[[x, 0.0, 0.0, 0.0]], &[]).unwrap();
            let b = e2.run(&[[x, 0.0, 0.0, 0.0]], &[]).unwrap();
            assert_eq!(a, b);
        }
    }
}
