//! Lowering from the AST to straight-line IR.
//!
//! This pass does, in one walk: name resolution, type checking, `const`
//! evaluation, full loop unrolling (bounds must be compile-time constant,
//! as GLSL ES 1.00 Appendix A requires), user-function inlining, and
//! `if`/ternary predication (both branches execute, results are selected —
//! how ES 2-class fragment hardware actually runs divergent code).

// The expect/unreachable sites in this pass assert invariants the parser
// and type checker establish on the same compilation; they are not
// reachable from malformed user input, which fails earlier with a
// `CompileError`.
#![allow(clippy::expect_used)]

use std::collections::HashMap;

use crate::ast::{
    AssignOp, BinOp, Expr, Function, LValue, Program, Qualifier, Stmt, Type, UnaryOp,
};
use crate::error::{CompileError, CompileErrorKind};
use crate::fold::{component_index, const_eval, ConstVal};
use crate::ir::{CmpOp, InputKind, InputSlot, Instr, Op, Reg, SamplerSlot, Shader};

/// Maximum number of unrolled loop iterations before compilation fails,
/// standing in for real drivers running out of instruction store.
pub const MAX_UNROLL_ITERATIONS: usize = 10_000;

/// Lowers a parsed program to IR.
///
/// # Errors
///
/// Returns a [`CompileError`] for type errors, unknown names, non-constant
/// loop bounds, or misuse of samplers.
pub fn lower(program: &Program) -> Result<Shader, CompileError> {
    Lowerer::new(program).run()
}

#[derive(Debug, Clone, PartialEq)]
enum Binding {
    Value { reg: Reg, ty: Type },
    Const(ConstVal),
    Sampler(u8),
}

struct Lowerer<'p> {
    program: &'p Program,
    instrs: Vec<Instr>,
    next_reg: u32,
    scopes: Vec<HashMap<String, Binding>>,
    inputs: Vec<InputSlot>,
    samplers: Vec<SamplerSlot>,
    call_stack: Vec<String>,
    line: u32,
}

impl<'p> Lowerer<'p> {
    fn new(program: &'p Program) -> Self {
        Lowerer {
            program,
            instrs: Vec::new(),
            next_reg: 0,
            scopes: vec![HashMap::new()],
            inputs: Vec::new(),
            samplers: Vec::new(),
            call_stack: Vec::new(),
            line: 0,
        }
    }

    fn err(&self, kind: CompileErrorKind, msg: impl Into<String>) -> CompileError {
        CompileError::new(kind, msg, Some(self.line).filter(|&l| l > 0))
    }

    fn type_err(&self, msg: impl Into<String>) -> CompileError {
        self.err(CompileErrorKind::Type, msg)
    }

    fn new_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, op: Op, width: u8, srcs: Vec<Reg>) -> Reg {
        let dst = self.new_reg();
        self.instrs.push(Instr {
            dst,
            width,
            op,
            srcs,
        });
        dst
    }

    fn emit_const(&mut self, v: [f32; 4], width: u8) -> Reg {
        self.emit(Op::Const(v), width, Vec::new())
    }

    fn materialize(&mut self, c: ConstVal) -> (Reg, Type) {
        match c {
            ConstVal::Num { v, width } => {
                let ty = Type::vector(width).expect("const width is 1-4");
                (self.emit_const(v, width), ty)
            }
            ConstVal::Bool(b) => {
                let r = self.emit_const([if b { 1.0 } else { 0.0 }, 0.0, 0.0, 0.0], 1);
                (r, Type::Bool)
            }
        }
    }

    // ---- scope helpers ----------------------------------------------

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn const_lookup(&self, name: &str) -> Option<ConstVal> {
        match self.lookup(name) {
            Some(Binding::Const(c)) => Some(*c),
            _ => None,
        }
    }

    fn declare(&mut self, name: &str, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_owned(), binding);
    }

    fn rebind(&mut self, name: &str, binding: Binding) -> Result<(), CompileError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = binding;
                return Ok(());
            }
        }
        Err(CompileError::new(
            CompileErrorKind::Type,
            format!("assignment to undeclared variable `{name}`"),
            Some(self.line).filter(|&l| l > 0),
        ))
    }

    // ---- entry -------------------------------------------------------

    fn run(mut self) -> Result<Shader, CompileError> {
        // Globals.
        for g in self.program.globals.clone() {
            self.line = g.line;
            match g.qualifier {
                Qualifier::Uniform => {
                    if g.ty == Type::Sampler2d {
                        let unit = self.samplers.len() as u8;
                        self.samplers.push(SamplerSlot {
                            name: g.name.clone(),
                            unit,
                        });
                        self.declare(&g.name, Binding::Sampler(unit));
                    } else {
                        let width = g.ty.components().ok_or_else(|| {
                            self.type_err(format!("uniform `{}` has non-numeric type", g.name))
                        })?;
                        let reg = self.new_reg();
                        self.inputs.push(InputSlot {
                            name: g.name.clone(),
                            kind: InputKind::Uniform,
                            width,
                            reg,
                        });
                        self.declare(&g.name, Binding::Value { reg, ty: g.ty });
                    }
                }
                Qualifier::Varying => {
                    let width = g.ty.components().ok_or_else(|| {
                        self.type_err(format!("varying `{}` has non-numeric type", g.name))
                    })?;
                    let reg = self.new_reg();
                    self.inputs.push(InputSlot {
                        name: g.name.clone(),
                        kind: InputKind::Varying,
                        width,
                        reg,
                    });
                    self.declare(&g.name, Binding::Value { reg, ty: g.ty });
                }
                Qualifier::Const => {
                    let init = g.init.as_ref().expect("parser enforces const init");
                    let me = &self;
                    let val = const_eval(init, &|n| me.const_lookup(n)).ok_or_else(|| {
                        self.err(
                            CompileErrorKind::Type,
                            format!("const `{}` initialiser is not constant", g.name),
                        )
                    })?;
                    // Check declared type agrees with the folded width.
                    if let ConstVal::Num { width, .. } = val {
                        if g.ty.components() != Some(width) {
                            return Err(self.type_err(format!(
                                "const `{}` declared {} but initialiser has {} components",
                                g.name,
                                g.ty.keyword(),
                                width
                            )));
                        }
                    }
                    self.declare(&g.name, Binding::Const(val));
                }
            }
        }

        // gl_FragColor starts as an unwritten sentinel.
        let sentinel = self.emit_const([0.0; 4], 4);
        self.declare(
            "gl_FragColor",
            Binding::Value {
                reg: sentinel,
                ty: Type::Vec4,
            },
        );

        let main = self.program.function("main").expect("parser enforces main");
        if !main.params.is_empty() {
            self.line = main.line;
            return Err(self.type_err("`main` takes no parameters"));
        }
        if main.ret != Type::Void {
            self.line = main.line;
            return Err(self.type_err("`main` must return void"));
        }
        self.lower_block(&main.body, false)?;

        let output = match self.lookup("gl_FragColor") {
            Some(Binding::Value { reg, .. }) => *reg,
            _ => unreachable!("gl_FragColor is always bound"),
        };
        if output == sentinel {
            return Err(CompileError::new(
                CompileErrorKind::Type,
                "kernel never writes gl_FragColor",
                None,
            ));
        }

        Ok(Shader {
            instrs: self.instrs,
            reg_count: self.next_reg,
            inputs: self.inputs,
            samplers: self.samplers,
            output,
        })
    }

    // ---- statements ----------------------------------------------------

    fn lower_block(&mut self, stmts: &[Stmt], in_function: bool) -> Result<(), CompileError> {
        for (i, stmt) in stmts.iter().enumerate() {
            if let Stmt::Return { line, .. } = stmt {
                self.line = *line;
                if !in_function {
                    return Err(self.type_err("`return` is only allowed in user functions"));
                }
                if i + 1 != stmts.len() {
                    return Err(self.type_err("`return` must be the last statement"));
                }
                // Handled by the inliner; a bare `return;` in a void helper
                // simply terminates it.
                return Ok(());
            }
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl { ty, names, line } => {
                self.line = *line;
                let width = ty
                    .components()
                    .ok_or_else(|| self.type_err("locals must have numeric type"))?;
                for (name, init) in names {
                    let (reg, ity) = match init {
                        Some(e) => {
                            let (r, t) = self.lower_expr(e)?;
                            self.convert_to(r, t, *ty)?
                        }
                        // GLSL leaves uninitialised locals undefined; we
                        // define them as zero for reproducibility.
                        None => (self.emit_const([0.0; 4], width), *ty),
                    };
                    debug_assert_eq!(ity, *ty);
                    self.declare(name, Binding::Value { reg, ty: *ty });
                }
                Ok(())
            }
            Stmt::Assign {
                target,
                op,
                value,
                line,
            } => {
                self.line = *line;
                self.lower_assign(target, *op, value)
            }
            Stmt::For {
                var_ty,
                var,
                init,
                cond,
                update_op,
                update,
                body,
                line,
            } => {
                self.line = *line;
                if *var_ty != Type::Float {
                    return Err(self.type_err("loop counters must be float"));
                }
                self.unroll_for(var, init, cond, *update_op, update, body)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                line,
            } => {
                self.line = *line;
                self.lower_if(cond, then_branch, else_branch)
            }
            Stmt::ExprStmt { expr, line } => {
                self.line = *line;
                // Evaluated for effect (void helper calls); value discarded.
                if let Expr::Call { name, .. } = expr {
                    if let Some(f) = self.program.function(name) {
                        if f.ret == Type::Void {
                            let args = match expr {
                                Expr::Call { args, .. } => args.clone(),
                                _ => unreachable!(),
                            };
                            self.inline_call(f, &args)?;
                            return Ok(());
                        }
                    }
                }
                self.lower_expr(expr)?;
                Ok(())
            }
            Stmt::Return { .. } => unreachable!("handled in lower_block"),
        }
    }

    fn lower_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), CompileError> {
        let (old_reg, old_ty) = match self.lookup(&target.name) {
            Some(Binding::Value { reg, ty }) => (*reg, *ty),
            Some(Binding::Const(_)) => {
                return Err(self.type_err(format!(
                    "cannot assign to constant `{}` (loop counters and consts are read-only)",
                    target.name
                )))
            }
            Some(Binding::Sampler(_)) => {
                return Err(self.type_err(format!("cannot assign to sampler `{}`", target.name)))
            }
            None => {
                return Err(self.type_err(format!(
                    "assignment to undeclared variable `{}`",
                    target.name
                )))
            }
        };

        let (val_reg, val_ty) = self.lower_expr(value)?;

        match &target.swizzle {
            None => {
                // Whole-variable assignment (with compound operators).
                let combined = match op {
                    AssignOp::Set => self.convert_to(val_reg, val_ty, old_ty)?.0,
                    _ => {
                        let bop = compound_op(op);
                        let (r, _t) = self.numeric_binary(bop, old_reg, old_ty, val_reg, val_ty)?;
                        if _t != old_ty {
                            return Err(self.type_err(format!(
                                "compound assignment changes type of `{}`",
                                target.name
                            )));
                        }
                        r
                    }
                };
                self.rebind(
                    &target.name,
                    Binding::Value {
                        reg: combined,
                        ty: old_ty,
                    },
                )
            }
            Some(fields) => {
                let old_width = old_ty
                    .components()
                    .ok_or_else(|| self.type_err("swizzle on non-vector"))?;
                let idxs = self.swizzle_indices(fields, old_width)?;
                // Unique component check for LHS swizzles.
                for (i, a) in idxs.iter().enumerate() {
                    if idxs[..i].contains(a) {
                        return Err(self.type_err("duplicate component in assignment swizzle"));
                    }
                }
                let lane_ty = Type::vector(idxs.len() as u8).expect("1-4 components");
                // Compute the replacement lanes.
                let new_lanes = match op {
                    AssignOp::Set => self.convert_to(val_reg, val_ty, lane_ty)?.0,
                    _ => {
                        let pattern = pattern_from(&idxs);
                        let old_lanes =
                            self.emit(Op::Swizzle(pattern), idxs.len() as u8, vec![old_reg]);
                        let bop = compound_op(op);
                        let (r, t) =
                            self.numeric_binary(bop, old_lanes, lane_ty, val_reg, val_ty)?;
                        if t != lane_ty {
                            return Err(self.type_err("compound swizzle assignment width error"));
                        }
                        r
                    }
                };
                // Merge back: select[c] = 0xFF keeps old, else index into new.
                let mut select = [0xFFu8; 4];
                for (j, &c) in idxs.iter().enumerate() {
                    select[c as usize] = j as u8;
                }
                let merged = self.emit(Op::Merge { select }, old_width, vec![old_reg, new_lanes]);
                self.rebind(
                    &target.name,
                    Binding::Value {
                        reg: merged,
                        ty: old_ty,
                    },
                )
            }
        }
    }

    fn unroll_for(
        &mut self,
        var: &str,
        init: &Expr,
        cond: &Expr,
        update_op: AssignOp,
        update: &Expr,
        body: &[Stmt],
    ) -> Result<(), CompileError> {
        let me = &self;
        let mut counter = const_eval(init, &|n| me.const_lookup(n))
            .and_then(|c| c.as_scalar())
            .ok_or_else(|| {
                self.err(
                    CompileErrorKind::Loop,
                    "loop initialiser must be a compile-time constant scalar",
                )
            })?;

        let mut iterations = 0usize;
        loop {
            // Evaluate the condition with the counter bound.
            let keep_going = {
                let me = &self;
                let lookup = |n: &str| {
                    if n == var {
                        Some(ConstVal::scalar(counter))
                    } else {
                        me.const_lookup(n)
                    }
                };
                const_eval(cond, &lookup).and_then(|c| c.as_bool())
            }
            .ok_or_else(|| {
                self.err(
                    CompileErrorKind::Loop,
                    "loop condition must be a compile-time constant comparison",
                )
            })?;
            if !keep_going {
                break;
            }
            iterations += 1;
            if iterations > MAX_UNROLL_ITERATIONS {
                return Err(self.err(
                    CompileErrorKind::Loop,
                    format!("loop exceeds {MAX_UNROLL_ITERATIONS} unrolled iterations"),
                ));
            }

            // Lower the body with the counter visible as a constant.
            self.scopes.push(HashMap::new());
            self.declare(var, Binding::Const(ConstVal::scalar(counter)));
            let result = self.lower_block(body, false);
            self.scopes.pop();
            result?;

            // Step the counter.
            let step = {
                let me = &self;
                let lookup = |n: &str| {
                    if n == var {
                        Some(ConstVal::scalar(counter))
                    } else {
                        me.const_lookup(n)
                    }
                };
                const_eval(update, &lookup).and_then(|c| c.as_scalar())
            }
            .ok_or_else(|| {
                self.err(
                    CompileErrorKind::Loop,
                    "loop update must be a compile-time constant expression",
                )
            })?;
            counter = match update_op {
                AssignOp::Set => step,
                AssignOp::Add => counter + step,
                AssignOp::Sub => counter - step,
                AssignOp::Mul => counter * step,
                AssignOp::Div => counter / step,
            };
            if !counter.is_finite() {
                return Err(self.err(CompileErrorKind::Loop, "loop counter diverged"));
            }
        }
        Ok(())
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_branch: &[Stmt],
        else_branch: &[Stmt],
    ) -> Result<(), CompileError> {
        // Prune constant conditions (common after loop unrolling).
        {
            let me = &self;
            if let Some(b) = const_eval(cond, &|n| me.const_lookup(n)).and_then(|c| c.as_bool()) {
                self.scopes.push(HashMap::new());
                let r = self.lower_block(if b { then_branch } else { else_branch }, false);
                self.scopes.pop();
                return r;
            }
        }

        let (mask, cond_ty) = self.lower_expr(cond)?;
        if cond_ty != Type::Bool {
            return Err(self.type_err("if condition must be boolean"));
        }

        let snapshot = self.scopes.clone();

        self.scopes.push(HashMap::new());
        self.lower_block(then_branch, false)?;
        self.scopes.pop();
        let then_state = std::mem::replace(&mut self.scopes, snapshot.clone());

        self.scopes.push(HashMap::new());
        self.lower_block(else_branch, false)?;
        self.scopes.pop();
        let else_state = std::mem::replace(&mut self.scopes, snapshot);

        // Predicated merge of every variable either branch reassigned.
        for level in 0..self.scopes.len() {
            let names: Vec<String> = self.scopes[level].keys().cloned().collect();
            for name in names {
                let base = self.scopes[level][&name].clone();
                let t = then_state[level]
                    .get(&name)
                    .cloned()
                    .unwrap_or(base.clone());
                let e = else_state[level]
                    .get(&name)
                    .cloned()
                    .unwrap_or(base.clone());
                if t == e {
                    if t != base {
                        self.scopes[level].insert(name, t);
                    }
                    continue;
                }
                let (tr, tt) = self.binding_value(&t)?;
                let (er, et) = self.binding_value(&e)?;
                if tt != et {
                    return Err(
                        self.type_err(format!("`{name}` has different types in the two branches"))
                    );
                }
                let width = tt.components().unwrap_or(1);
                let merged = self.emit(Op::Select, width, vec![mask, tr, er]);
                self.scopes[level].insert(
                    name,
                    Binding::Value {
                        reg: merged,
                        ty: tt,
                    },
                );
            }
        }
        Ok(())
    }

    fn binding_value(&mut self, b: &Binding) -> Result<(Reg, Type), CompileError> {
        match b {
            Binding::Value { reg, ty } => Ok((*reg, *ty)),
            Binding::Const(c) => Ok(self.materialize(*c)),
            Binding::Sampler(_) => Err(self.type_err("sampler used as value")),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn lower_expr(&mut self, expr: &Expr) -> Result<(Reg, Type), CompileError> {
        // Fold first: loop counters and consts vanish here.
        {
            let me = &self;
            if let Some(c) = const_eval(expr, &|n| me.const_lookup(n)) {
                return Ok(self.materialize(c));
            }
        }
        match expr {
            Expr::Literal(v) => Ok((self.emit_const([*v, 0.0, 0.0, 0.0], 1), Type::Float)),
            Expr::BoolLiteral(b) => Ok(self.materialize(ConstVal::Bool(*b))),
            Expr::Var(name) => match self.lookup(name).cloned() {
                Some(b) => self.binding_value(&b),
                None => Err(self.type_err(format!("unknown variable `{name}`"))),
            },
            Expr::Unary { op, expr } => {
                let (r, ty) = self.lower_expr(expr)?;
                match op {
                    UnaryOp::Neg => {
                        let w = ty
                            .components()
                            .ok_or_else(|| self.type_err("negation of non-numeric value"))?;
                        Ok((self.emit(Op::Neg, w, vec![r]), ty))
                    }
                    UnaryOp::Not => {
                        if ty != Type::Bool {
                            return Err(self.type_err("`!` needs a boolean"));
                        }
                        Ok((self.emit(Op::Not, 1, vec![r]), Type::Bool))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let (lr, lt) = self.lower_expr(lhs)?;
                let (rr, rt) = self.lower_expr(rhs)?;
                if op.is_logical() {
                    if lt != Type::Bool || rt != Type::Bool {
                        return Err(self.type_err("logical operators need booleans"));
                    }
                    let o = if *op == BinOp::And { Op::And } else { Op::Or };
                    return Ok((self.emit(o, 1, vec![lr, rr]), Type::Bool));
                }
                if op.is_comparison() {
                    if lt != Type::Float || rt != Type::Float {
                        return Err(self
                            .type_err("comparisons are scalar-only (GLSL ES: use lessThan ...)"));
                    }
                    let cmp = match op {
                        BinOp::Lt => CmpOp::Lt,
                        BinOp::Le => CmpOp::Le,
                        BinOp::Gt => CmpOp::Gt,
                        BinOp::Ge => CmpOp::Ge,
                        BinOp::Eq => CmpOp::Eq,
                        BinOp::Ne => CmpOp::Ne,
                        _ => unreachable!(),
                    };
                    return Ok((self.emit(Op::Cmp(cmp), 1, vec![lr, rr]), Type::Bool));
                }
                self.numeric_binary(*op, lr, lt, rr, rt)
            }
            Expr::Swizzle { base, fields, line } => {
                self.line = *line;
                let (r, ty) = self.lower_expr(base)?;
                let width = ty
                    .components()
                    .ok_or_else(|| self.type_err("swizzle on non-vector value"))?;
                let idxs = self.swizzle_indices(fields, width)?;
                let out_ty = Type::vector(idxs.len() as u8).expect("1-4 fields");
                Ok((
                    self.emit(Op::Swizzle(pattern_from(&idxs)), idxs.len() as u8, vec![r]),
                    out_ty,
                ))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let (c, ct) = self.lower_expr(cond)?;
                if ct != Type::Bool {
                    return Err(self.type_err("ternary condition must be boolean"));
                }
                let (a, at) = self.lower_expr(then_expr)?;
                let (b, bt) = self.lower_expr(else_expr)?;
                if at != bt {
                    return Err(self.type_err("ternary branches have different types"));
                }
                let w = at
                    .components()
                    .ok_or_else(|| self.type_err("ternary on non-numeric values"))?;
                Ok((self.emit(Op::Select, w, vec![c, a, b]), at))
            }
            Expr::Call { name, args, line } => {
                self.line = *line;
                self.lower_call(name, args)
            }
        }
    }

    fn numeric_binary(
        &mut self,
        op: BinOp,
        lr: Reg,
        lt: Type,
        rr: Reg,
        rt: Type,
    ) -> Result<(Reg, Type), CompileError> {
        let lw = lt
            .components()
            .ok_or_else(|| self.type_err("arithmetic on non-numeric value"))?;
        let rw = rt
            .components()
            .ok_or_else(|| self.type_err("arithmetic on non-numeric value"))?;
        let w = if lw == rw {
            lw
        } else if lw == 1 {
            rw
        } else if rw == 1 {
            lw
        } else {
            return Err(self.type_err(format!("operand widths {lw} and {rw} are incompatible")));
        };
        let o = match op {
            BinOp::Add => Op::Add,
            BinOp::Sub => Op::Sub,
            BinOp::Mul => Op::Mul,
            BinOp::Div => Op::Div,
            _ => return Err(self.type_err("not an arithmetic operator")),
        };
        Ok((
            self.emit(o, w, vec![lr, rr]),
            Type::vector(w).expect("1-4 wide"),
        ))
    }

    fn swizzle_indices(&self, fields: &str, base_width: u8) -> Result<Vec<u8>, CompileError> {
        if fields.is_empty() || fields.len() > 4 {
            return Err(self.type_err(format!("swizzle `.{fields}` has bad length")));
        }
        fields
            .chars()
            .map(|c| {
                let idx = component_index(c)
                    .ok_or_else(|| self.type_err(format!("bad swizzle letter `{c}`")))?;
                if idx >= base_width {
                    return Err(self.type_err(format!(
                        "component `{c}` out of range for width {base_width}"
                    )));
                }
                Ok(idx)
            })
            .collect()
    }

    fn lower_call(&mut self, name: &str, args: &[Expr]) -> Result<(Reg, Type), CompileError> {
        // Vector constructors.
        if let Some(want) = match name {
            "vec2" => Some(2u8),
            "vec3" => Some(3),
            "vec4" => Some(4),
            _ => None,
        } {
            return self.lower_constructor(want, args);
        }

        // texture2D needs its sampler argument resolved by name.
        if name == "texture2D" {
            if args.len() != 2 {
                return Err(self.type_err("texture2D takes (sampler2D, vec2)"));
            }
            let unit = match &args[0] {
                Expr::Var(n) => match self.lookup(n) {
                    Some(Binding::Sampler(u)) => *u,
                    _ => return Err(self.type_err(format!("`{n}` is not a sampler2D uniform"))),
                },
                _ => return Err(self.type_err("first texture2D argument must be a sampler name")),
            };
            let (coord, cty) = self.lower_expr(&args[1])?;
            if cty != Type::Vec2 {
                return Err(self.type_err("texture2D coordinate must be vec2"));
            }
            return Ok((
                self.emit(Op::TexFetch { sampler: unit }, 4, vec![coord]),
                Type::Vec4,
            ));
        }

        // User functions inline.
        if let Some(f) = self.program.function(name) {
            return self.inline_call(&f.clone(), args);
        }

        // Remaining built-ins.
        self.lower_builtin(name, args)
    }

    fn lower_constructor(&mut self, want: u8, args: &[Expr]) -> Result<(Reg, Type), CompileError> {
        if args.is_empty() {
            return Err(self.type_err("constructor needs arguments"));
        }
        let mut parts = Vec::new();
        let mut total = 0u8;
        for a in args {
            let (r, t) = self.lower_expr(a)?;
            let w = t
                .components()
                .ok_or_else(|| self.type_err("constructor argument must be numeric"))?;
            total += w;
            parts.push((r, w));
        }
        let out_ty = Type::vector(want).expect("2-4");
        if parts.len() == 1 && parts[0].1 == 1 {
            // Scalar splat.
            let r = self.emit(Op::Swizzle([0, 0, 0, 0]), want, vec![parts[0].0]);
            return Ok((r, out_ty));
        }
        if total != want {
            return Err(self.type_err(format!("vec{want} constructor got {total} components")));
        }
        let srcs = parts.iter().map(|(r, _)| *r).collect();
        Ok((self.emit(Op::Construct, want, srcs), out_ty))
    }

    fn inline_call(&mut self, f: &Function, args: &[Expr]) -> Result<(Reg, Type), CompileError> {
        if self.call_stack.iter().any(|n| n == &f.name) {
            return Err(self.type_err(format!("recursive call to `{}`", f.name)));
        }
        if self.call_stack.len() >= 16 {
            return Err(self.type_err("call nesting too deep"));
        }
        if args.len() != f.params.len() {
            return Err(self.type_err(format!(
                "`{}` takes {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        // Evaluate arguments in the caller's scope.
        let mut bound = Vec::new();
        for ((pty, pname), arg) in f.params.iter().zip(args) {
            let (r, t) = self.lower_expr(arg)?;
            let (r, t) = self.convert_to(r, t, *pty)?;
            bound.push((pname.clone(), Binding::Value { reg: r, ty: t }));
        }

        self.call_stack.push(f.name.clone());
        self.scopes.push(HashMap::new());
        for (n, b) in bound {
            self.declare(&n, b);
        }
        let body_result = self.lower_block(&f.body, true);
        let ret = match body_result {
            Ok(()) => match f.body.last() {
                Some(Stmt::Return {
                    value: Some(e),
                    line,
                }) => {
                    self.line = *line;
                    let (r, t) = self.lower_expr(&e.clone())?;
                    self.convert_to(r, t, f.ret)
                }
                _ if f.ret == Type::Void => {
                    // Void helpers yield a dummy zero scalar.
                    Ok((self.emit_const([0.0; 4], 1), Type::Void))
                }
                _ => Err(self.type_err(format!("`{}` must end with `return <expr>;`", f.name))),
            },
            Err(e) => Err(e),
        };
        self.scopes.pop();
        self.call_stack.pop();
        ret
    }

    /// Applies the (few) implicit conversions the language allows: scalar →
    /// vector splat. Anything else must match exactly.
    fn convert_to(&mut self, r: Reg, from: Type, to: Type) -> Result<(Reg, Type), CompileError> {
        if from == to || to == Type::Void {
            return Ok((r, from));
        }
        if from == Type::Float {
            if let Some(w) = to.components() {
                if w > 1 {
                    return Ok((self.emit(Op::Swizzle([0, 0, 0, 0]), w, vec![r]), to));
                }
            }
        }
        Err(self.type_err(format!(
            "expected {}, found {}",
            to.keyword(),
            from.keyword()
        )))
    }

    fn lower_builtin(&mut self, name: &str, args: &[Expr]) -> Result<(Reg, Type), CompileError> {
        let mut vals = Vec::new();
        for a in args {
            vals.push(self.lower_expr(a)?);
        }
        let arity_err = |me: &Self, n: usize| {
            me.type_err(format!("`{name}` takes {n} arguments, got {}", vals.len()))
        };

        let numeric = |me: &Self, i: usize| -> Result<(Reg, Type, u8), CompileError> {
            let (r, t) = vals[i];
            let w = t
                .components()
                .ok_or_else(|| me.type_err(format!("`{name}` argument must be numeric")))?;
            Ok((r, t, w))
        };

        match name {
            "floor" | "fract" | "abs" | "sqrt" | "sin" | "cos" | "exp2" | "log2"
            | "inversesqrt" | "sign" => {
                if vals.len() != 1 {
                    return Err(arity_err(self, 1));
                }
                let (r, t, w) = numeric(self, 0)?;
                let op = match name {
                    "floor" => Op::Floor,
                    "fract" => Op::Fract,
                    "abs" => Op::Abs,
                    "sin" => Op::Sin,
                    "cos" => Op::Cos,
                    "exp2" => Op::Exp2,
                    "log2" => Op::Log2,
                    "inversesqrt" => Op::InverseSqrt,
                    "sign" => Op::Sign,
                    _ => Op::Sqrt,
                };
                Ok((self.emit(op, w, vec![r]), t))
            }
            "min" | "max" | "mod" | "pow" | "step" => {
                if vals.len() != 2 {
                    return Err(arity_err(self, 2));
                }
                let (ar, _at, aw) = numeric(self, 0)?;
                let (br, _bt, bw) = numeric(self, 1)?;
                // `step(edge, x)` takes its width from x; the rest from arg0.
                let w = if name == "step" {
                    if aw != 1 && aw != bw {
                        return Err(self.type_err("step edge width mismatch"));
                    }
                    bw
                } else {
                    if bw != 1 && bw != aw {
                        return Err(self.type_err(format!("`{name}` width mismatch")));
                    }
                    aw
                };
                let op = match name {
                    "min" => Op::Min,
                    "max" => Op::Max,
                    "mod" => Op::ModOp,
                    "pow" => Op::Pow,
                    _ => Op::Step,
                };
                Ok((
                    self.emit(op, w, vec![ar, br]),
                    Type::vector(w).expect("1-4"),
                ))
            }
            "clamp" | "mix" => {
                if vals.len() != 3 {
                    return Err(arity_err(self, 3));
                }
                let (ar, at, aw) = numeric(self, 0)?;
                let (br, _bt, bw) = numeric(self, 1)?;
                let (cr, _ct, cw) = numeric(self, 2)?;
                let widths_ok = |w: u8| w == 1 || w == aw;
                if name == "clamp" {
                    if !widths_ok(bw) || !widths_ok(cw) {
                        return Err(self.type_err("clamp bounds width mismatch"));
                    }
                } else {
                    if bw != aw || !widths_ok(cw) {
                        return Err(self.type_err("mix width mismatch"));
                    }
                }
                let op = if name == "clamp" { Op::Clamp } else { Op::Mix };
                Ok((self.emit(op, aw, vec![ar, br, cr]), at))
            }
            "dot" => {
                if vals.len() != 2 {
                    return Err(arity_err(self, 2));
                }
                let (ar, _at, aw) = numeric(self, 0)?;
                let (br, _bt, bw) = numeric(self, 1)?;
                if aw != bw {
                    return Err(self.type_err("dot arguments must have the same width"));
                }
                Ok((self.emit(Op::Dot, 1, vec![ar, br]), Type::Float))
            }
            "mul24" => {
                if vals.len() != 2 {
                    return Err(arity_err(self, 2));
                }
                let (ar, at, _) = numeric(self, 0)?;
                let (br, bt, _) = numeric(self, 1)?;
                if at != Type::Float || bt != Type::Float {
                    return Err(self.type_err("mul24 takes two scalar floats"));
                }
                Ok((self.emit(Op::Mul24, 1, vec![ar, br]), Type::Float))
            }
            _ => Err(self.type_err(format!("unknown function `{name}`"))),
        }
    }
}

fn compound_op(op: AssignOp) -> BinOp {
    match op {
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
        AssignOp::Set => unreachable!("Set handled separately"),
    }
}

fn pattern_from(idxs: &[u8]) -> [u8; 4] {
    let mut p = [0u8; 4];
    for (i, &x) in idxs.iter().enumerate() {
        p[i] = x;
    }
    p
}
