//! Shader implementation limits.
//!
//! OpenGL ES 2 implementations advertise hard resource limits; exceeding
//! them makes `glCompileShader`/`glLinkProgram` fail. The paper's Fig. 4b
//! hits exactly this wall: block sizes above 16 exceed the instruction or
//! texture-fetch limits on both evaluation boards.

use crate::error::{CompileError, CompileErrorKind};
use crate::ir::Shader;

/// Resource limits enforced after optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum IR instructions.
    pub max_instructions: u32,
    /// Maximum texture fetches per fragment.
    pub max_texture_fetches: u32,
    /// Maximum uniform vec4 slots (samplers excluded).
    pub max_uniform_vectors: u32,
    /// Maximum varying vec4 slots.
    pub max_varying_vectors: u32,
}

impl Limits {
    /// No limits; useful for host-side testing.
    #[must_use]
    pub const fn unlimited() -> Self {
        Limits {
            max_instructions: u32::MAX,
            max_texture_fetches: u32::MAX,
            max_uniform_vectors: u32::MAX,
            max_varying_vectors: u32::MAX,
        }
    }
}

impl Default for Limits {
    fn default() -> Self {
        Limits::unlimited()
    }
}

/// Checks `shader` against `limits`.
///
/// # Errors
///
/// Returns a [`CompileError`] whose
/// [`is_limit_exceeded`](CompileError::is_limit_exceeded) is true, naming
/// the violated limit — mirroring a driver info log.
pub fn check_limits(shader: &Shader, limits: &Limits) -> Result<(), CompileError> {
    let limit_err = |msg: String| CompileError::new(CompileErrorKind::LimitExceeded, msg, None);

    let instructions = shader.instruction_count() as u32;
    if instructions > limits.max_instructions {
        return Err(limit_err(format!(
            "kernel needs {instructions} instructions, implementation limit is {}",
            limits.max_instructions
        )));
    }
    let fetches = shader.texture_fetch_count() as u32;
    if fetches > limits.max_texture_fetches {
        return Err(limit_err(format!(
            "kernel performs {fetches} texture fetches, implementation limit is {}",
            limits.max_texture_fetches
        )));
    }
    let uniforms = shader.uniform_slots().count() as u32;
    if uniforms > limits.max_uniform_vectors {
        return Err(limit_err(format!(
            "kernel declares {uniforms} uniform vectors, implementation limit is {}",
            limits.max_uniform_vectors
        )));
    }
    let varyings = shader.varying_slots().count() as u32;
    if varyings > limits.max_varying_vectors {
        return Err(limit_err(format!(
            "kernel declares {varyings} varying vectors, implementation limit is {}",
            limits.max_varying_vectors
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_with, CompileOptions};

    const LOOP_KERNEL: &str = "
        uniform sampler2D t;
        varying vec2 v;
        void main() {
            float acc = 0.0;
            for (float i = 0.0; i < 8.0; i += 1.0) {
                acc += texture2D(t, vec2(i / 8.0, v.y)).x;
            }
            gl_FragColor = vec4(acc);
        }
    ";

    #[test]
    fn unlimited_always_passes() {
        let opts = CompileOptions::default();
        assert!(compile_with(LOOP_KERNEL, &opts).is_ok());
    }

    #[test]
    fn instruction_limit_fails_like_a_driver() {
        let opts = CompileOptions {
            limits: Limits {
                max_instructions: 10,
                ..Limits::unlimited()
            },
            ..CompileOptions::default()
        };
        let err = compile_with(LOOP_KERNEL, &opts).unwrap_err();
        assert!(err.is_limit_exceeded());
        assert!(err.to_string().contains("instructions"));
    }

    #[test]
    fn texture_fetch_limit_fails() {
        let opts = CompileOptions {
            limits: Limits {
                max_texture_fetches: 4,
                ..Limits::unlimited()
            },
            ..CompileOptions::default()
        };
        let err = compile_with(LOOP_KERNEL, &opts).unwrap_err();
        assert!(err.is_limit_exceeded());
        assert!(err.to_string().contains("texture fetches"));
    }

    #[test]
    fn limits_are_checked_after_optimisation() {
        // The unused fetch is dead-code-eliminated, so a 0-fetch limit
        // passes with optimisation on.
        let src = "
            uniform sampler2D t;
            varying vec2 v;
            void main() {
                vec4 unused = texture2D(t, v);
                gl_FragColor = vec4(1.0);
            }
        ";
        let opts = CompileOptions {
            limits: Limits {
                max_texture_fetches: 0,
                ..Limits::unlimited()
            },
            ..CompileOptions::default()
        };
        assert!(compile_with(src, &opts).is_ok());
    }

    #[test]
    fn uniform_and_varying_limits() {
        let src = "
            uniform vec4 a;
            uniform vec4 b;
            varying vec2 v;
            void main() { gl_FragColor = a + b + vec4(v, 0.0, 1.0); }
        ";
        let tight_uniform = CompileOptions {
            limits: Limits {
                max_uniform_vectors: 1,
                ..Limits::unlimited()
            },
            ..CompileOptions::default()
        };
        assert!(compile_with(src, &tight_uniform)
            .unwrap_err()
            .is_limit_exceeded());

        let tight_varying = CompileOptions {
            limits: Limits {
                max_varying_vectors: 0,
                ..Limits::unlimited()
            },
            ..CompileOptions::default()
        };
        assert!(compile_with(src, &tight_varying)
            .unwrap_err()
            .is_limit_exceeded());
    }
}
