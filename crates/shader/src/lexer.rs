//! Hand-written lexer for the kernel shading language.

use crate::error::{CompileError, CompileErrorKind};
use crate::token::{Token, TokenKind};

/// Tokenises `source`, stripping `//` and `/* */` comments.
///
/// # Errors
///
/// Returns a [`CompileError`] on unexpected characters, malformed numbers or
/// unterminated block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr, $at:expr) => {
            tokens.push(Token {
                kind: $kind,
                offset: $at,
                line,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(
                            CompileErrorKind::Lex,
                            "unterminated block comment",
                            Some(start_line),
                        ));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' | b'.' if c != b'.' || bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent part.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &source[start..i];
                let value: f32 = text.parse().map_err(|_| {
                    CompileError::new(
                        CompileErrorKind::Lex,
                        format!("malformed number `{text}`"),
                        Some(line),
                    )
                })?;
                push!(TokenKind::Float(value), start);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push!(TokenKind::Ident(source[start..i].to_owned()), start);
            }
            _ => {
                let start = i;
                let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
                let (kind, len) = if two(b'+', b'=') {
                    (TokenKind::PlusAssign, 2)
                } else if two(b'-', b'=') {
                    (TokenKind::MinusAssign, 2)
                } else if two(b'*', b'=') {
                    (TokenKind::StarAssign, 2)
                } else if two(b'/', b'=') {
                    (TokenKind::SlashAssign, 2)
                } else if two(b'=', b'=') {
                    (TokenKind::Eq, 2)
                } else if two(b'!', b'=') {
                    (TokenKind::Ne, 2)
                } else if two(b'<', b'=') {
                    (TokenKind::Le, 2)
                } else if two(b'>', b'=') {
                    (TokenKind::Ge, 2)
                } else if two(b'&', b'&') {
                    (TokenKind::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (TokenKind::OrOr, 2)
                } else {
                    let single = match c {
                        b'(' => TokenKind::LParen,
                        b')' => TokenKind::RParen,
                        b'{' => TokenKind::LBrace,
                        b'}' => TokenKind::RBrace,
                        b',' => TokenKind::Comma,
                        b';' => TokenKind::Semicolon,
                        b'.' => TokenKind::Dot,
                        b'+' => TokenKind::Plus,
                        b'-' => TokenKind::Minus,
                        b'*' => TokenKind::Star,
                        b'/' => TokenKind::Slash,
                        b'=' => TokenKind::Assign,
                        b'<' => TokenKind::Lt,
                        b'>' => TokenKind::Gt,
                        b'!' => TokenKind::Bang,
                        b'?' => TokenKind::Question,
                        b':' => TokenKind::Colon,
                        other => {
                            return Err(CompileError::new(
                                CompileErrorKind::Lex,
                                format!("unexpected character `{}`", other as char),
                                Some(line),
                            ))
                        }
                    };
                    (single, 1)
                };
                push!(kind, start);
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: bytes.len(),
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1.0 .5 3 2e3 1.5e-2"),
            vec![
                TokenKind::Float(1.0),
                TokenKind::Float(0.5),
                TokenKind::Float(3.0),
                TokenKind::Float(2000.0),
                TokenKind::Float(0.015),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn member_access_is_dot_not_number() {
        assert_eq!(
            kinds("a.xy"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("xy".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("+= == <= && || != *="),
            vec![
                TokenKind::PlusAssign,
                TokenKind::Eq,
                TokenKind::Le,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Ne,
                TokenKind::StarAssign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strips_comments_and_tracks_lines() {
        let toks = lex("a // hi\n/* b\nc */ d").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::Ident("d".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
