//! The fragment interpreter: executes compiled IR for one fragment at a
//! time, exactly as the simulated GPU's fragment unit would.

use std::collections::HashMap;

use crate::error::ExecError;
use crate::ir::{CmpOp, InputKind, Op, Reg, Shader};

/// Precomputed u8 → `[0, 1]` float table: entry `i` holds exactly
/// `f32::from(i) / 255.0`, so lookups are bit-identical to the inline
/// division they replace.
const U8_TO_UNORM: [f32; 256] = {
    let mut t = [0.0f32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = i as f32 / 255.0;
        i += 1;
    }
    t
};

/// Converts an 8-bit channel value to its normalised `[0, 1]` float,
/// via the precomputed table (bit-identical to `f32::from(x) / 255.0`).
#[must_use]
#[inline]
pub fn u8_to_unorm(x: u8) -> f32 {
    U8_TO_UNORM[x as usize]
}

/// Provides texel data for one bound texture unit.
///
/// Coordinates are normalised (`[0, 1]`); implementations choose their own
/// filtering (GPGPU kernels use nearest with texel-centre coordinates).
///
/// `Sync` is a supertrait so the parallel fragment engine can share one
/// sampler across its worker threads; samplers are read-only views by
/// construction.
pub trait Sampler: Sync {
    /// Samples the texture at `(u, v)`, returning RGBA in `[0, 1]`.
    fn fetch(&self, u: f32, v: f32) -> [f32; 4];

    /// Samples a batch of coordinates: lane `l` fetches `(us[l], vs[l])`
    /// into `out[l]`. Each lane must produce exactly what [`Sampler::fetch`]
    /// would; the default implementation guarantees that by delegating.
    /// Implementations override this to pay virtual dispatch once per batch
    /// instead of once per fragment and to hoist per-texture factors.
    fn fetch_batch(&self, us: &[f32], vs: &[f32], out: &mut [[f32; 4]]) {
        for ((o, u), v) in out.iter_mut().zip(us).zip(vs) {
            *o = self.fetch(*u, *v);
        }
    }

    /// Samples a batch that shares one `v` coordinate: lane `l` fetches
    /// `(us[l], v)` into `out[l]` — the shape of a row-major fragment
    /// batch reading along a texture row. Each lane must produce exactly
    /// what [`Sampler::fetch`] would; the default guarantees that by
    /// delegating. Implementations override it to resolve the row once
    /// per batch.
    fn fetch_row_batch(&self, us: &[f32], v: f32, out: &mut [[f32; 4]]) {
        for (o, u) in out.iter_mut().zip(us) {
            *o = self.fetch(*u, v);
        }
    }

    /// Exposes the raw RGBA8 texel data as `(bytes, width, height)` when
    /// this sampler is a plain nearest/clamp image whose [`Sampler::fetch`]
    /// is exactly `u8_to_unorm` over `bytes[(y*width + x)*4..][..4]` with
    /// `x = clamp(floor(u*width))`, `y = clamp(floor(v*height))`. Fused
    /// execution tiers use this to gather texels without the AoS staging
    /// round trip; returning `None` (the default) keeps them on the
    /// virtual fetch path.
    fn raw_rgba8(&self) -> Option<(&[u8], u32, u32)> {
        None
    }
}

/// A sampler over an owned RGBA8 image, with nearest filtering and
/// clamp-to-edge addressing — the GLES2 GPGPU configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageSampler {
    width: u32,
    height: u32,
    /// RGBA8 texels, row-major.
    data: Vec<u8>,
}

impl ImageSampler {
    /// Wraps RGBA8 data of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height * 4`.
    #[must_use]
    pub fn new(width: u32, height: u32, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            width as usize * height as usize * 4,
            "RGBA8 data size mismatch"
        );
        ImageSampler {
            width,
            height,
            data,
        }
    }

    /// Image width in texels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in texels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }
}

impl ImageSampler {
    /// Nearest-lookup with the texel-scale factors passed in, so batch
    /// fetches convert the dimensions once instead of once per lane.
    /// `wf`/`hf` must equal `self.width as f32`/`self.height as f32`.
    #[inline]
    fn fetch_scaled(&self, u: f32, v: f32, wf: f32, hf: f32) -> [f32; 4] {
        let x = ((u * wf).floor() as i64).clamp(0, i64::from(self.width) - 1);
        let y = ((v * hf).floor() as i64).clamp(0, i64::from(self.height) - 1);
        let idx = (y as usize * self.width as usize + x as usize) * 4;
        let t = &self.data[idx..idx + 4];
        [
            u8_to_unorm(t[0]),
            u8_to_unorm(t[1]),
            u8_to_unorm(t[2]),
            u8_to_unorm(t[3]),
        ]
    }
}

impl Sampler for ImageSampler {
    #[inline]
    fn fetch(&self, u: f32, v: f32) -> [f32; 4] {
        self.fetch_scaled(u, v, self.width as f32, self.height as f32)
    }

    fn fetch_batch(&self, us: &[f32], vs: &[f32], out: &mut [[f32; 4]]) {
        let (wf, hf) = (self.width as f32, self.height as f32);
        for ((o, u), v) in out.iter_mut().zip(us).zip(vs) {
            *o = self.fetch_scaled(*u, *v, wf, hf);
        }
    }

    fn raw_rgba8(&self) -> Option<(&[u8], u32, u32)> {
        Some((&self.data, self.width, self.height))
    }

    fn fetch_row_batch(&self, us: &[f32], v: f32, out: &mut [[f32; 4]]) {
        // Same floor/clamp/index arithmetic as `fetch_scaled`, with the
        // row term resolved once: `(y*w + x)*4 == (row + x)*4` exactly.
        let (wf, hf) = (self.width as f32, self.height as f32);
        let y = ((v * hf).floor() as i64).clamp(0, i64::from(self.height) - 1);
        let row = y as usize * self.width as usize;
        let xmax = i64::from(self.width) - 1;
        for (o, u) in out.iter_mut().zip(us) {
            let x = ((*u * wf).floor() as i64).clamp(0, xmax);
            let idx = (row + x as usize) * 4;
            let t = &self.data[idx..idx + 4];
            *o = [
                u8_to_unorm(t[0]),
                u8_to_unorm(t[1]),
                u8_to_unorm(t[2]),
                u8_to_unorm(t[3]),
            ];
        }
    }
}

/// Truncates a float to ~24-bit total precision (15-bit mantissa), the
/// semantics of the `mul24` fast multiply.
#[must_use]
pub fn truncate_to_24bit(x: f32) -> f32 {
    f32::from_bits(x.to_bits() & !0xFF)
}

/// Evaluates a pure (non-texture) op. Sources are broadcast from width 1.
/// Returns `None` for ops that are not pure (texture fetches) or malformed.
// Index loops mirror the per-component ISA semantics more clearly than
// iterator chains here.
#[allow(clippy::needless_range_loop)]
pub(crate) fn eval_pure_op(
    op: &Op,
    srcs: &[[f32; 4]],
    src_widths: &[u8],
    width: u8,
) -> Option<[f32; 4]> {
    let read = |i: usize, c: usize| -> f32 {
        let v = srcs[i];
        if src_widths[i] == 1 {
            v[0]
        } else {
            v[c]
        }
    };
    let mut out = [0.0f32; 4];
    let w = width as usize;
    match op {
        Op::Const(v) => out = *v,
        Op::Mov => {
            for c in 0..w {
                out[c] = read(0, c);
            }
        }
        Op::Neg => {
            for c in 0..w {
                out[c] = -read(0, c);
            }
        }
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Min
        | Op::Max
        | Op::ModOp
        | Op::Pow
        | Op::Step => {
            for c in 0..w {
                let (a, b) = (read(0, c), read(1, c));
                out[c] = match op {
                    Op::Add => a + b,
                    Op::Sub => a - b,
                    Op::Mul => a * b,
                    Op::Div => a / b,
                    Op::Min => a.min(b),
                    Op::Max => a.max(b),
                    Op::ModOp => a - b * (a / b).floor(),
                    Op::Pow => a.powf(b),
                    Op::Step => {
                        if b < a {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    _ => unreachable!(),
                };
            }
        }
        Op::Mad => {
            for c in 0..w {
                out[c] = read(0, c) * read(1, c) + read(2, c);
            }
        }
        Op::Mul24 => {
            out[0] =
                truncate_to_24bit(truncate_to_24bit(read(0, 0)) * truncate_to_24bit(read(1, 0)));
        }
        Op::Dot => {
            let n = src_widths[0].max(src_widths[1]) as usize;
            let mut acc = 0.0;
            for c in 0..n {
                acc += read(0, c) * read(1, c);
            }
            out[0] = acc;
        }
        Op::Clamp => {
            for c in 0..w {
                out[c] = read(0, c).max(read(1, c)).min(read(2, c));
            }
        }
        Op::Floor => {
            for c in 0..w {
                out[c] = read(0, c).floor();
            }
        }
        Op::Fract => {
            for c in 0..w {
                let x = read(0, c);
                out[c] = x - x.floor();
            }
        }
        Op::Abs => {
            for c in 0..w {
                out[c] = read(0, c).abs();
            }
        }
        Op::Sqrt => {
            for c in 0..w {
                out[c] = read(0, c).sqrt();
            }
        }
        Op::Sin => {
            for c in 0..w {
                out[c] = read(0, c).sin();
            }
        }
        Op::Cos => {
            for c in 0..w {
                out[c] = read(0, c).cos();
            }
        }
        Op::Exp2 => {
            for c in 0..w {
                out[c] = read(0, c).exp2();
            }
        }
        Op::Log2 => {
            for c in 0..w {
                out[c] = read(0, c).log2();
            }
        }
        Op::InverseSqrt => {
            for c in 0..w {
                out[c] = 1.0 / read(0, c).sqrt();
            }
        }
        Op::Sign => {
            for c in 0..w {
                let x = read(0, c);
                out[c] = if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                };
            }
        }
        Op::Mix => {
            for c in 0..w {
                let (a, b, t) = (read(0, c), read(1, c), read(2, c));
                out[c] = a * (1.0 - t) + b * t;
            }
        }
        Op::Cmp(cmp) => {
            let (a, b) = (srcs[0][0], srcs[1][0]);
            let r = match cmp {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            };
            out[0] = if r { 1.0 } else { 0.0 };
        }
        Op::And => {
            out[0] = if srcs[0][0] != 0.0 && srcs[1][0] != 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Op::Or => {
            out[0] = if srcs[0][0] != 0.0 || srcs[1][0] != 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Op::Not => out[0] = if srcs[0][0] != 0.0 { 0.0 } else { 1.0 },
        Op::Select => {
            let take_then = srcs[0][0] != 0.0;
            for c in 0..w {
                out[c] = if take_then { read(1, c) } else { read(2, c) };
            }
        }
        Op::Swizzle(pattern) => {
            for c in 0..w {
                out[c] = srcs[0][pattern[c] as usize];
            }
        }
        Op::Merge { select } => {
            for c in 0..w {
                out[c] = if select[c] == 0xFF {
                    srcs[0][c]
                } else {
                    read(1, select[c] as usize)
                };
            }
        }
        Op::Construct => {
            let mut n = 0usize;
            for (i, &sw) in src_widths.iter().enumerate() {
                for c in 0..sw as usize {
                    if n < 4 {
                        out[n] = srcs[i][c];
                        n += 1;
                    }
                }
            }
        }
        Op::TexFetch { .. } => return None,
    }
    Some(out)
}

/// Computes the width (component count) of every register in a shader.
#[must_use]
pub(crate) fn register_widths(shader: &Shader) -> Vec<u8> {
    let mut widths = Vec::new();
    register_widths_into(shader, &mut widths);
    widths
}

/// [`register_widths`] into an existing buffer, reusing its allocation —
/// the rebind path of the reusable engine cores.
pub(crate) fn register_widths_into(shader: &Shader, widths: &mut Vec<u8>) {
    widths.clear();
    widths.resize(shader.reg_count as usize, 4u8);
    for slot in &shader.inputs {
        widths[slot.reg.0 as usize] = slot.width;
    }
    for i in &shader.instrs {
        widths[i.dst.0 as usize] = i.width;
    }
}

/// Uniform values bound by name before execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UniformValues {
    values: HashMap<String, [f32; 4]>,
}

impl UniformValues {
    /// An empty binding set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a uniform; extra components are ignored by narrower uniforms.
    pub fn set(&mut self, name: &str, value: [f32; 4]) -> &mut Self {
        self.values.insert(name.to_owned(), value);
        self
    }

    /// Sets a scalar uniform.
    pub fn set_scalar(&mut self, name: &str, value: f32) -> &mut Self {
        self.set(name, [value, 0.0, 0.0, 0.0])
    }

    /// Looks a uniform up.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<[f32; 4]> {
        self.values.get(name).copied()
    }

    /// Iterates the bound `(name, value)` pairs in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, [f32; 4])> {
        self.values.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

/// Executes a compiled shader fragment by fragment.
///
/// The executor resolves uniforms once; per-fragment varyings are passed to
/// [`Executor::run`] in the order of [`Shader::varying_slots`].
///
/// # Examples
///
/// ```
/// use mgpu_shader::{compile, Executor, UniformValues};
///
/// let shader = compile("
///     uniform float u_gain;
///     varying vec2 v_coord;
///     void main() { gl_FragColor = vec4(v_coord * u_gain, 0.0, 1.0); }
/// ").expect("compiles");
///
/// let mut uniforms = UniformValues::new();
/// uniforms.set_scalar("u_gain", 2.0);
/// let mut exec = Executor::new(&shader, &uniforms).expect("uniforms bound");
/// let rgba = exec.run(&[[0.25, 0.5, 0.0, 0.0]], &[]).expect("runs");
/// assert_eq!(&rgba[..2], &[0.5, 1.0]);
/// ```
#[derive(Debug)]
pub struct Executor<'s> {
    shader: &'s Shader,
    core: ExecCore,
}

impl<'s> Executor<'s> {
    /// Prepares an executor, resolving every uniform.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a uniform declared by the shader has no
    /// value in `uniforms`.
    pub fn new(shader: &'s Shader, uniforms: &UniformValues) -> Result<Self, ExecError> {
        Ok(Executor {
            shader,
            core: ExecCore::new(shader, uniforms)?,
        })
    }

    /// Runs the shader for one fragment.
    ///
    /// `varyings` supplies one value per varying slot (shader declaration
    /// order); `samplers` one implementation per texture unit.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the counts do not match the shader's
    /// declarations.
    pub fn run(
        &mut self,
        varyings: &[[f32; 4]],
        samplers: &[&dyn Sampler],
    ) -> Result<[f32; 4], ExecError> {
        self.core.run(self.shader, varyings, samplers)
    }
}

/// The shader-independent state of a scalar [`Executor`]: register file,
/// width table and varying bindings, with uniforms resolved in.
///
/// Unlike `Executor` it does not borrow the shader — the shader is passed
/// to every [`ExecCore::run`] call — so a core can be owned by long-lived
/// caches (the `mgpu-gles` draw-plan cache) alongside the shader it was
/// bound to, and re-bound to a new shader without reallocating via
/// [`ExecCore::rebind`]. A core must only ever run the shader (or a
/// structurally identical clone of the shader) it was last bound to;
/// `run` rejects a mismatched register count as a cheap guard.
#[derive(Debug)]
pub struct ExecCore {
    widths: Vec<u8>,
    regs: Vec<[f32; 4]>,
    varying_regs: Vec<Reg>,
}

impl ExecCore {
    /// Prepares a core for `shader`, resolving every uniform.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a uniform declared by the shader has no
    /// value in `uniforms`.
    pub fn new(shader: &Shader, uniforms: &UniformValues) -> Result<Self, ExecError> {
        let mut core = ExecCore {
            widths: Vec::new(),
            regs: Vec::new(),
            varying_regs: Vec::new(),
        };
        core.rebind(shader, uniforms)?;
        Ok(core)
    }

    /// Re-binds this core to a (possibly different) shader and uniform
    /// set, reusing the existing allocations where they fit. After a
    /// successful rebind the core behaves bit-identically to a freshly
    /// constructed [`ExecCore::new`] — every register is re-derived; no
    /// stale state can leak, because the IR is single-assignment and every
    /// instruction output is rewritten before it is read.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a uniform declared by the shader has no
    /// value in `uniforms`; the core is left safe to rebind again but must
    /// not be run.
    pub fn rebind(&mut self, shader: &Shader, uniforms: &UniformValues) -> Result<(), ExecError> {
        register_widths_into(shader, &mut self.widths);
        self.regs.clear();
        self.regs.resize(shader.reg_count as usize, [0.0f32; 4]);
        self.varying_regs.clear();
        for slot in &shader.inputs {
            match slot.kind {
                InputKind::Uniform => {
                    let v = uniforms.get(&slot.name).ok_or_else(|| {
                        ExecError::new(format!("uniform `{}` is not set", slot.name))
                    })?;
                    self.regs[slot.reg.0 as usize] = v;
                }
                InputKind::Varying => self.varying_regs.push(slot.reg),
            }
        }
        Ok(())
    }

    /// Runs `shader` for one fragment. `shader` must be the shader this
    /// core was last (re)bound to.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the varying count does not match the
    /// shader's declarations, a referenced texture unit has no sampler, or
    /// `shader` is not the bound shader (register-count mismatch).
    pub fn run(
        &mut self,
        shader: &Shader,
        varyings: &[[f32; 4]],
        samplers: &[&dyn Sampler],
    ) -> Result<[f32; 4], ExecError> {
        if shader.reg_count as usize != self.regs.len() {
            return Err(ExecError::new(
                "executor core run with a shader it was not bound to",
            ));
        }
        if varyings.len() != self.varying_regs.len() {
            return Err(ExecError::new(format!(
                "shader has {} varyings, {} provided",
                self.varying_regs.len(),
                varyings.len()
            )));
        }
        for (reg, value) in self.varying_regs.iter().zip(varyings) {
            self.regs[reg.0 as usize] = *value;
        }
        let mut srcs_buf = [[0.0f32; 4]; 4];
        let mut widths_buf = [0u8; 4];
        for instr in &shader.instrs {
            let n = instr.srcs.len().min(4);
            for (i, s) in instr.srcs.iter().take(4).enumerate() {
                srcs_buf[i] = self.regs[s.0 as usize];
                widths_buf[i] = self.widths[s.0 as usize];
            }
            let value = match instr.op {
                Op::TexFetch { sampler } => {
                    let s = samplers.get(sampler as usize).ok_or_else(|| {
                        ExecError::new(format!("texture unit {sampler} has no sampler bound"))
                    })?;
                    let coord = srcs_buf[0];
                    s.fetch(coord[0], coord[1])
                }
                ref op => eval_pure_op(op, &srcs_buf[..n], &widths_buf[..n], instr.width)
                    .ok_or_else(|| ExecError::new("malformed instruction"))?,
            };
            self.regs[instr.dst.0 as usize] = value;
        }
        Ok(self.regs[shader.output.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn runs_arithmetic_kernel() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x + v.y, v.x * v.y, v.x - v.y, 1.0); }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        let out = ex.run(&[[3.0, 4.0, 0.0, 0.0]], &[]).unwrap();
        assert_eq!(out, [7.0, 12.0, -1.0, 1.0]);
    }

    #[test]
    fn rebound_core_matches_fresh_core_bitwise() {
        let sh_a = compile(
            "uniform float g; varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x * g, v.y + g, sqrt(v.x), 1.0); }",
        )
        .unwrap();
        let sh_b = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(fract(v.y * 9.7), v.x, 0.0, 1.0); }",
        )
        .unwrap();
        let mut u = UniformValues::new();
        u.set_scalar("g", 3.25);
        let mut core = ExecCore::new(&sh_a, &u).unwrap();
        // Run A, rebind to B, then back to A: every output must equal a
        // fresh core's bit for bit.
        for (sh, uni) in [(&sh_a, &u), (&sh_b, &UniformValues::new()), (&sh_a, &u)] {
            core.rebind(sh, uni).unwrap();
            let mut fresh = ExecCore::new(sh, uni).unwrap();
            for xy in [[0.1f32, 0.9], [0.5, 0.5], [-1.0, 2.0]] {
                let varying = [[xy[0], xy[1], 0.0, 0.0]];
                let got = core.run(sh, &varying, &[]).unwrap();
                let want = fresh.run(sh, &varying, &[]).unwrap();
                assert_eq!(got.map(f32::to_bits), want.map(f32::to_bits));
            }
        }
    }

    #[test]
    fn core_rejects_unbound_shader() {
        let sh_a = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let sh_b = compile(
            "varying vec2 v;\n\
             void main() { vec4 a = vec4(v, 0.0, 1.0); gl_FragColor = a * a; }",
        )
        .unwrap();
        let mut core = ExecCore::new(&sh_a, &UniformValues::new()).unwrap();
        assert!(core
            .run(&sh_b, &[[0.0; 4]], &[])
            .unwrap_err()
            .to_string()
            .contains("not bound"));
    }

    #[test]
    fn missing_uniform_is_an_error() {
        let sh = compile("uniform float u; void main() { gl_FragColor = vec4(u); }").unwrap();
        assert!(Executor::new(&sh, &UniformValues::new()).is_err());
    }

    #[test]
    fn wrong_varying_count_is_an_error() {
        let sh =
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.0, 1.0); }").unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        assert!(ex.run(&[], &[]).is_err());
    }

    #[test]
    fn unorm_lut_matches_division() {
        for i in 0..=255u8 {
            assert_eq!(u8_to_unorm(i).to_bits(), (f32::from(i) / 255.0).to_bits());
        }
    }

    #[test]
    fn image_sampler_batch_matches_scalar_fetch() {
        let data: Vec<u8> = (0..3 * 2 * 4).map(|i| (i * 37 % 256) as u8).collect();
        let img = ImageSampler::new(3, 2, data);
        let us = [-0.5, 0.1, 0.5, 0.9, 1.5, f32::NAN];
        let vs = [0.2, 0.8, -1.0, 2.0, 0.5, 0.5];
        let mut out = [[0.0f32; 4]; 6];
        img.fetch_batch(&us, &vs, &mut out);
        for ((&u, &v), got) in us.iter().zip(&vs).zip(&out) {
            assert_eq!(got.map(f32::to_bits), img.fetch(u, v).map(f32::to_bits));
        }
    }

    #[test]
    fn image_sampler_nearest_lookup() {
        // 2x1 image: left texel red, right texel green.
        let img = ImageSampler::new(2, 1, vec![255, 0, 0, 255, 0, 255, 0, 255]);
        assert_eq!(img.fetch(0.25, 0.5), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(img.fetch(0.75, 0.5), [0.0, 1.0, 0.0, 1.0]);
        // Clamp-to-edge outside [0,1].
        assert_eq!(img.fetch(-1.0, 0.5), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(img.fetch(2.0, 0.5), [0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn texture_kernel_samples_bound_unit() {
        let sh = compile(
            "uniform sampler2D t;\n\
             varying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let img = ImageSampler::new(2, 1, vec![255, 0, 0, 255, 0, 255, 0, 255]);
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        let out = ex.run(&[[0.75, 0.5, 0.0, 0.0]], &[&img]).unwrap();
        assert_eq!(out, [0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn unbound_sampler_is_an_error() {
        let sh = compile(
            "uniform sampler2D t; varying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        assert!(ex.run(&[[0.0, 0.0, 0.0, 0.0]], &[]).is_err());
    }

    #[test]
    fn predicated_if_selects_correct_branch() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() {\n\
               float x = 0.0;\n\
               if (v.x < 0.5) { x = 1.0; } else { x = 2.0; }\n\
               gl_FragColor = vec4(x);\n\
             }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        assert_eq!(ex.run(&[[0.2, 0.0, 0.0, 0.0]], &[]).unwrap()[0], 1.0);
        assert_eq!(ex.run(&[[0.9, 0.0, 0.0, 0.0]], &[]).unwrap()[0], 2.0);
    }

    #[test]
    fn unrolled_loop_accumulates() {
        let sh = compile(
            "void main() {\n\
               float acc = 0.0;\n\
               for (float i = 1.0; i <= 4.0; i += 1.0) { acc += i; }\n\
               gl_FragColor = vec4(acc);\n\
             }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        assert_eq!(ex.run(&[], &[]).unwrap()[0], 10.0);
    }

    #[test]
    fn user_function_inlines_and_computes() {
        let sh = compile(
            "float square(float x) { return x * x; }\n\
             varying vec2 v;\n\
             void main() { gl_FragColor = vec4(square(v.x) + square(v.y)); }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        assert_eq!(ex.run(&[[3.0, 4.0, 0.0, 0.0]], &[]).unwrap()[0], 25.0);
    }

    #[test]
    fn swizzle_write_merges_components() {
        let sh = compile(
            "void main() {\n\
               vec4 c = vec4(1.0, 2.0, 3.0, 4.0);\n\
               c.yw = vec2(20.0, 40.0);\n\
               gl_FragColor = c;\n\
             }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        assert_eq!(ex.run(&[], &[]).unwrap(), [1.0, 20.0, 3.0, 40.0]);
    }

    #[test]
    fn builtins_compute_expected_values() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() {\n\
               float a = clamp(v.x, 0.0, 1.0);\n\
               float b = mix(0.0, 10.0, v.y);\n\
               float c = dot(vec2(v.x, v.y), vec2(1.0, 1.0));\n\
               gl_FragColor = vec4(a, b, c, mod(v.x, 2.0));\n\
             }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        let out = ex.run(&[[3.0, 0.5, 0.0, 0.0]], &[]).unwrap();
        assert_eq!(out, [1.0, 5.0, 3.5, 1.0]);
    }

    #[test]
    fn mul24_loses_low_mantissa_bits() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(mul24(v.x, v.y)); }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        let exact = 1.000_001f32 * 1.000_001f32;
        let got = ex.run(&[[1.000_001, 1.000_001, 0.0, 0.0]], &[]).unwrap()[0];
        assert_ne!(got, exact);
        assert!((got - exact).abs() < 1e-4);
    }

    #[test]
    fn truncate_preserves_magnitude() {
        for x in [0.0f32, 1.0, -3.75, 1234.5, 1e-10] {
            let t = truncate_to_24bit(x);
            assert!((t - x).abs() <= x.abs() * 1e-4 + f32::EPSILON);
        }
    }

    #[test]
    fn scalar_broadcast_in_vector_ops() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 1.0, 1.0) * v.x; }",
        )
        .unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        let out = ex.run(&[[2.0, 3.0, 0.0, 0.0]], &[]).unwrap();
        assert_eq!(out, [4.0, 6.0, 2.0, 2.0]);
    }
}
