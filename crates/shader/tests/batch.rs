//! Property tests: the lane-batched SoA engine is bit-identical to the
//! scalar reference interpreter, and bind-time specialisation preserves
//! kernel semantics exactly.
//!
//! Cases are generated with the deterministic `mgpu-prop` runner, so every
//! run explores the same inputs. Varyings deliberately include NaN and
//! ±infinity, and batch sizes sweep partially-filled final batches.
//!
//! Comparisons are bitwise except for NaN payloads: when two *different*
//! NaN bit patterns meet in one operation, IEEE 754 leaves the propagated
//! payload unspecified and codegen may commute the operands, so scalar and
//! batched evaluation can surface different (equally valid) NaN payloads.
//! NaN-*ness* itself is deterministic, every non-NaN value must match to
//! the bit, and the quantised pipeline output is byte-identical regardless
//! (all NaNs quantise to the same byte).

use mgpu_prop::{run_cases, Rng};
use mgpu_shader::ir::Shader;
use mgpu_shader::{
    compile, specialize, BatchExecutor, Executor, ImageSampler, Sampler, UniformValues, LANES,
};

/// A random expression over the varyings `v.x`/`v.y`, the uniforms
/// `k`/`q`, and literals, covering the arithmetic, comparison and
/// selection operators the batch engine lane-vectorises.
#[derive(Debug, Clone)]
enum Node {
    X,
    Y,
    K,
    Q(usize),
    Lit(f32),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
    Div(Box<Node>, Box<Node>),
    Min(Box<Node>, Box<Node>),
    Max(Box<Node>, Box<Node>),
    Mod(Box<Node>, Box<Node>),
    Step(Box<Node>, Box<Node>),
    Mix(Box<Node>, Box<Node>, Box<Node>),
    Clamp(Box<Node>),
    Floor(Box<Node>),
    Fract(Box<Node>),
    Abs(Box<Node>),
    Neg(Box<Node>),
    Select(Box<Node>, Box<Node>, Box<Node>, Box<Node>),
}

impl Node {
    fn render(&self) -> String {
        match self {
            Node::X => "v.x".into(),
            Node::Y => "v.y".into(),
            Node::K => "k".into(),
            Node::Q(c) => format!("q.{}", ["x", "y", "z", "w"][*c]),
            Node::Lit(v) => format!("{v:.4}"),
            Node::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Node::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Node::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            Node::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            Node::Min(a, b) => format!("min({}, {})", a.render(), b.render()),
            Node::Max(a, b) => format!("max({}, {})", a.render(), b.render()),
            Node::Mod(a, b) => format!("mod({}, {})", a.render(), b.render()),
            Node::Step(a, b) => format!("step({}, {})", a.render(), b.render()),
            Node::Mix(a, b, t) => {
                format!("mix({}, {}, {})", a.render(), b.render(), t.render())
            }
            Node::Clamp(a) => format!("clamp({}, 0.0, 1.0)", a.render()),
            Node::Floor(a) => format!("floor({})", a.render()),
            Node::Fract(a) => format!("fract({})", a.render()),
            Node::Abs(a) => format!("abs({})", a.render()),
            Node::Neg(a) => format!("(-{})", a.render()),
            Node::Select(c, t, a, b) => format!(
                "(({} < {}) ? {} : {})",
                c.render(),
                t.render(),
                a.render(),
                b.render()
            ),
        }
    }
}

/// Generates a random expression tree of at most `depth` levels.
fn gen_node(rng: &mut Rng, depth: u32) -> Node {
    let choice = if depth == 0 {
        rng.u32_in(0, 5)
    } else {
        rng.u32_in(0, 20)
    };
    let sub = |rng: &mut Rng| Box::new(gen_node(rng, depth - 1));
    match choice {
        0 => Node::X,
        1 => Node::Y,
        2 => Node::K,
        3 => Node::Q(rng.usize_in(0, 4)),
        4 => Node::Lit(rng.f32(-4.0, 4.0)),
        5 => Node::Add(sub(rng), sub(rng)),
        6 => Node::Sub(sub(rng), sub(rng)),
        7 => Node::Mul(sub(rng), sub(rng)),
        8 => Node::Div(sub(rng), sub(rng)),
        9 => Node::Min(sub(rng), sub(rng)),
        10 => Node::Max(sub(rng), sub(rng)),
        11 => Node::Mod(sub(rng), sub(rng)),
        12 => Node::Step(sub(rng), sub(rng)),
        13 => Node::Mix(sub(rng), sub(rng), sub(rng)),
        14 => Node::Clamp(sub(rng)),
        15 => Node::Floor(sub(rng)),
        16 => Node::Fract(sub(rng)),
        17 => Node::Abs(sub(rng)),
        18 => Node::Neg(sub(rng)),
        _ => Node::Select(sub(rng), sub(rng), sub(rng), sub(rng)),
    }
}

fn kernel_source(expr: &Node) -> String {
    format!(
        "uniform float k;\nuniform vec4 q;\nvarying vec2 v;\nvoid main() {{ gl_FragColor = vec4({}); }}",
        expr.render()
    )
}

/// A varying component: usually finite, occasionally NaN or ±infinity so
/// the engines are compared on the full f32 value space.
fn awkward_f32(rng: &mut Rng) -> f32 {
    match rng.u32_in(0, 16) {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => -0.0,
        _ => rng.f32(-8.0, 8.0),
    }
}

/// Bitwise equality, except any NaN equals any NaN (payloads are the one
/// part of the result IEEE 754 leaves codegen-dependent).
fn bits_match(a: [f32; 4], b: [f32; 4]) -> bool {
    a.iter()
        .zip(&b)
        .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

fn random_uniforms(rng: &mut Rng) -> UniformValues {
    let mut uniforms = UniformValues::new();
    uniforms.set_scalar("k", rng.f32(-4.0, 4.0));
    uniforms.set(
        "q",
        [
            rng.f32(-4.0, 4.0),
            rng.f32(-4.0, 4.0),
            rng.f32(-4.0, 4.0),
            rng.f32(-4.0, 4.0),
        ],
    );
    uniforms
}

/// Runs `shader` over `n` random fragments (one vec2 varying) on both the
/// scalar and batched engines and asserts bitwise-identical colours.
fn assert_engines_agree(
    shader: &Shader,
    uniforms: &UniformValues,
    rng: &mut Rng,
    n: usize,
    samplers: &[&dyn Sampler],
    src: &str,
) {
    let frag_varyings: Vec<[f32; 4]> = (0..n)
        .map(|_| [awkward_f32(rng), awkward_f32(rng), 0.0, 0.0])
        .collect();
    // Slot-major layout with stride LANES, as BatchExecutor::run expects
    // (these kernels use a single varying slot).
    let mut batch_varyings = vec![[0.0f32; 4]; LANES];
    batch_varyings[..n].copy_from_slice(&frag_varyings);

    let mut scalar = Executor::new(shader, uniforms).expect("scalar binds");
    let mut batched = BatchExecutor::new(shader, uniforms).expect("batched binds");

    let mut out = vec![[0.0f32; 4]; n];
    batched
        .run(&batch_varyings, n, samplers, &mut out)
        .expect("batched runs");

    for (l, v) in frag_varyings.iter().enumerate() {
        let want = scalar.run(&[*v], samplers).expect("scalar runs");
        assert!(
            bits_match(out[l], want),
            "lane {l} of {n} diverged for varying {v:?}: {:?} vs {:?}\nsource:\n{src}",
            out[l].map(f32::to_bits),
            want.map(f32::to_bits),
        );
    }
}

/// The batch engine computes bit-identical colours to the scalar reference
/// across random kernels, random (sometimes non-finite) varyings, and
/// partially-filled batches of every size from 1 to LANES.
#[test]
fn batched_engine_matches_scalar_reference() {
    run_cases(192, |rng| {
        let expr = gen_node(rng, 4);
        let src = kernel_source(&expr);
        let shader = compile(&src).expect("generated kernel compiles");
        let uniforms = random_uniforms(rng);
        // Mostly ragged sizes, with the boundary cases pinned.
        let n = match rng.u32_in(0, 8) {
            0 => 1,
            1 => LANES,
            2 => LANES - 1,
            _ => rng.usize_in(1, LANES + 1),
        };
        assert_engines_agree(&shader, &uniforms, rng, n, &[], &src);
    });
}

/// Same property through the texture path: batched `fetch_batch` sampling
/// (with its hoisted texel-scale factors) matches scalar `fetch` bitwise,
/// including NaN and out-of-range coordinates.
#[test]
fn batched_texture_sampling_matches_scalar() {
    run_cases(96, |rng| {
        let src = "
            uniform sampler2D tex;
            uniform float k;
            uniform vec4 q;
            varying vec2 v;
            void main() {
                vec4 t = texture2D(tex, v.xy * q.xy + q.zw);
                gl_FragColor = t * k + texture2D(tex, vec2(v.y, v.x));
            }
        ";
        let shader = compile(src).expect("texture kernel compiles");
        let w = rng.usize_in(1, 9) as u32;
        let h = rng.usize_in(1, 9) as u32;
        let data: Vec<u8> = (0..(w * h * 4) as usize).map(|_| rng.u8()).collect();
        let sampler = ImageSampler::new(w, h, data);
        let uniforms = random_uniforms(rng);
        let n = rng.usize_in(1, LANES + 1);
        assert_engines_agree(&shader, &uniforms, rng, n, &[&sampler], src);
    });
}

/// Bind-time specialisation folds uniforms without changing a single bit
/// of output: the specialised kernel agrees with the original on both
/// engines, for arbitrary expressions and non-finite varyings.
#[test]
fn specialisation_preserves_bits_on_random_kernels() {
    run_cases(192, |rng| {
        let expr = gen_node(rng, 4);
        let src = kernel_source(&expr);
        let shader = compile(&src).expect("generated kernel compiles");
        let uniforms = random_uniforms(rng);
        let special = specialize(&shader, &uniforms).expect("specialises");
        // Specialisation prepends one Const per uniform; those survive when
        // the uniform feeds a varying-dependent op, so the kernel may grow
        // by at most that much (and usually shrinks).
        assert!(
            special.instruction_count() <= shader.instruction_count() + 2,
            "specialisation grew the kernel by more than the uniform prelude\nsource:\n{src}"
        );

        let mut reference = Executor::new(&shader, &uniforms).expect("binds");
        let mut folded = Executor::new(&special, &uniforms).expect("specialised binds");
        for _ in 0..8 {
            let v = [awkward_f32(rng), awkward_f32(rng), 0.0, 0.0];
            let a = reference.run(&[v], &[]).expect("runs");
            let b = folded.run(&[v], &[]).expect("specialised runs");
            assert!(
                bits_match(a, b),
                "specialisation changed output for varying {v:?}: {:?} vs {:?}\nsource:\n{src}",
                a.map(f32::to_bits),
                b.map(f32::to_bits),
            );
        }
    });
}
