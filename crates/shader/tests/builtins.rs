//! Behavioural tests of the built-in function library, including the
//! transcendental extensions.

use mgpu_shader::{compile, Executor, UniformValues};

fn run1(expr: &str, x: f32) -> f32 {
    let src = format!("varying vec2 v;\nvoid main() {{ gl_FragColor = vec4({expr}); }}\n");
    let sh = compile(&src).expect("compiles");
    let mut e = Executor::new(&sh, &UniformValues::new()).expect("binds");
    e.run(&[[x, 0.0, 0.0, 0.0]], &[]).expect("runs")[0]
}

#[test]
fn trigonometry() {
    assert!((run1("sin(v.x)", 0.0)).abs() < 1e-6);
    assert!((run1("sin(v.x)", std::f32::consts::FRAC_PI_2) - 1.0).abs() < 1e-6);
    assert!((run1("cos(v.x)", 0.0) - 1.0).abs() < 1e-6);
    assert!((run1("sin(v.x) * sin(v.x) + cos(v.x) * cos(v.x)", 1.234) - 1.0).abs() < 1e-6);
}

#[test]
fn exponentials() {
    assert_eq!(run1("exp2(v.x)", 3.0), 8.0);
    assert_eq!(run1("log2(v.x)", 8.0), 3.0);
    assert!((run1("exp2(log2(v.x))", 5.5) - 5.5).abs() < 1e-5);
    assert_eq!(run1("inversesqrt(v.x)", 4.0), 0.5);
}

#[test]
fn sign_semantics() {
    assert_eq!(run1("sign(v.x)", 7.0), 1.0);
    assert_eq!(run1("sign(v.x)", -3.0), -1.0);
    assert_eq!(run1("sign(v.x)", 0.0), 0.0);
}

#[test]
fn vector_forms_apply_componentwise() {
    let src = "varying vec2 v;\nvoid main() { gl_FragColor = vec4(sign(vec2(v.x, -v.x)), exp2(vec2(1.0, 2.0))); }";
    let sh = compile(src).unwrap();
    let mut e = Executor::new(&sh, &UniformValues::new()).unwrap();
    let out = e.run(&[[5.0, 0.0, 0.0, 0.0]], &[]).unwrap();
    assert_eq!(out, [1.0, -1.0, 2.0, 4.0]);
}

#[test]
fn constant_arguments_fold_at_compile_time() {
    // sin(0.5) on constants folds away: no Sin op survives.
    let sh = compile("void main() { gl_FragColor = vec4(sin(0.5)); }").unwrap();
    assert!(!sh.instrs.iter().any(|i| i.op == mgpu_shader::ir::Op::Sin));
    let mut e = Executor::new(&sh, &UniformValues::new()).unwrap();
    let out = e.run(&[], &[]).unwrap()[0];
    assert!((out - 0.5f32.sin()).abs() < 1e-6);
}

#[test]
fn transcendentals_cost_more_than_adds() {
    use mgpu_shader::cost::op_cycles;
    use mgpu_shader::ir::Op;
    assert!(op_cycles(&Op::Sin) > op_cycles(&Op::Add));
    assert!(op_cycles(&Op::InverseSqrt) > op_cycles(&Op::Add));
    assert_eq!(op_cycles(&Op::Sin), op_cycles(&Op::Cos));
}

#[test]
fn gaussian_weights_computable_in_kernel() {
    // A realistic use: compute a normal-distribution weight in-shader.
    let got = run1("exp2(-(v.x * v.x) * 1.4426950408889634)", 1.0);
    assert!((got - (-1.0f32).exp()).abs() < 1e-5);
}
