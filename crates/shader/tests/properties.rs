//! Property tests: the optimiser never changes kernel semantics, and the
//! constant folder agrees with the interpreter.

use mgpu_shader::{
    compile_with, truncate_to_24bit, CompileOptions, Executor, OptOptions, UniformValues,
};
use proptest::prelude::*;

/// A random arithmetic expression over the varyings `v.x`/`v.y`, a uniform
/// `k`, and literals, rendered as kernel source.
#[derive(Debug, Clone)]
enum Node {
    X,
    Y,
    K,
    Lit(f32),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
    Min(Box<Node>, Box<Node>),
    Max(Box<Node>, Box<Node>),
    Clamp(Box<Node>),
    Neg(Box<Node>),
}

impl Node {
    fn render(&self) -> String {
        match self {
            Node::X => "v.x".into(),
            Node::Y => "v.y".into(),
            Node::K => "k".into(),
            Node::Lit(v) => format!("{v:.4}"),
            Node::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Node::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Node::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            Node::Min(a, b) => format!("min({}, {})", a.render(), b.render()),
            Node::Max(a, b) => format!("max({}, {})", a.render(), b.render()),
            Node::Clamp(a) => format!("clamp({}, 0.0, 1.0)", a.render()),
            Node::Neg(a) => format!("(-{})", a.render()),
        }
    }
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        Just(Node::X),
        Just(Node::Y),
        Just(Node::K),
        (-4.0f32..4.0).prop_map(Node::Lit),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Max(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Node::Clamp(Box::new(a))),
            inner.prop_map(|a| Node::Neg(Box::new(a))),
        ]
    })
}

fn kernel_source(expr: &Node) -> String {
    format!(
        "uniform float k;\nvarying vec2 v;\nvoid main() {{ gl_FragColor = vec4({}); }}",
        expr.render()
    )
}

fn run_kernel(src: &str, opts: &OptOptions, x: f32, y: f32, k: f32) -> [f32; 4] {
    let sh = compile_with(
        src,
        &CompileOptions {
            opt: *opts,
            ..CompileOptions::default()
        },
    )
    .expect("generated kernel compiles");
    let mut uniforms = UniformValues::new();
    uniforms.set_scalar("k", k);
    let mut ex = Executor::new(&sh, &uniforms).expect("binds");
    ex.run(&[[x, y, 0.0, 0.0]], &[]).expect("runs")
}

proptest! {
    /// Full optimisation computes bit-identical results to no optimisation:
    /// every rewrite (folding, copy propagation, MAD fusion, DCE) preserves
    /// f32 semantics exactly.
    #[test]
    fn optimiser_preserves_semantics(
        expr in node_strategy(),
        x in -8.0f32..8.0,
        y in -8.0f32..8.0,
        k in -8.0f32..8.0,
    ) {
        let src = kernel_source(&expr);
        let a = run_kernel(&src, &OptOptions::full(), x, y, k);
        let b = run_kernel(&src, &OptOptions::none(), x, y, k);
        prop_assert_eq!(a, b, "source:\n{}", src);
    }

    /// Optimisation never increases the instruction count.
    #[test]
    fn optimiser_never_grows_kernels(expr in node_strategy()) {
        let src = kernel_source(&expr);
        let opt = compile_with(&src, &CompileOptions::default()).unwrap();
        let raw = compile_with(
            &src,
            &CompileOptions { opt: OptOptions::none(), ..CompileOptions::default() },
        )
        .unwrap();
        prop_assert!(opt.instruction_count() <= raw.instruction_count());
    }

    /// Loop unrolling agrees with direct accumulation for arbitrary
    /// constant trip counts.
    #[test]
    fn loop_unrolling_matches_closed_form(n in 1u32..64) {
        let src = format!(
            "void main() {{\n\
               float acc = 0.0;\n\
               for (float i = 1.0; i <= {n}.0; i += 1.0) {{ acc += i; }}\n\
               gl_FragColor = vec4(acc);\n\
             }}"
        );
        let sh = compile_with(&src, &CompileOptions::default()).unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        let got = ex.run(&[], &[]).unwrap()[0];
        let want = (n * (n + 1) / 2) as f32;
        prop_assert_eq!(got, want);
    }

    /// 24-bit truncation is idempotent and bounded.
    #[test]
    fn truncation_idempotent_and_close(x in -1e6f32..1e6) {
        let t = truncate_to_24bit(x);
        prop_assert_eq!(truncate_to_24bit(t), t);
        prop_assert!((t - x).abs() <= x.abs() * 2e-4 + f32::MIN_POSITIVE);
    }

    /// Predicated `if` matches the reference branch semantics for scalar
    /// conditions.
    #[test]
    fn predication_matches_branching(x in -2.0f32..2.0, t in -2.0f32..2.0) {
        let src = "
            varying vec2 v;
            uniform float k;
            void main() {
                float out_v = 0.0;
                if (v.x < k) { out_v = v.x * 2.0; } else { out_v = v.x - 1.0; }
                gl_FragColor = vec4(out_v);
            }
        ";
        let got = run_kernel(src, &OptOptions::full(), x, 0.0, t)[0];
        let want = if x < t { x * 2.0 } else { x - 1.0 };
        prop_assert_eq!(got, want);
    }
}

/// A small statement-level program generator for the pretty-printer
/// round-trip property.
fn stmt_source_strategy() -> impl Strategy<Value = String> {
    // Programs assembled from a fixed set of statement templates over
    // x/y/acc; every combination must parse, print, and re-parse to the
    // same canonical form.
    let stmt = prop_oneof![
        Just("acc += v.x * 2.0;".to_owned()),
        Just("acc = clamp(acc, 0.0, 1.0);".to_owned()),
        Just("vec2 t = vec2(acc, v.y); acc = t.x + t.y;".to_owned()),
        Just("if (v.x < 0.5) { acc += 1.0; } else { acc -= 1.0; }".to_owned()),
        Just("for (float i = 0.0; i < 3.0; i += 1.0) { acc += i * v.y; }".to_owned()),
        Just("acc *= k;".to_owned()),
        Just("acc = v.x > v.y ? acc : (-acc);".to_owned()),
    ];
    prop::collection::vec(stmt, 0..6).prop_map(|stmts| {
        format!(
            "uniform float k;\nvarying vec2 v;\nvoid main() {{\nfloat acc = 0.0;\n{}\ngl_FragColor = vec4(acc);\n}}\n",
            stmts.join("\n")
        )
    })
}

proptest! {
    /// The pretty printer round-trips arbitrary generated programs, and
    /// the reprinted source compiles to semantically identical kernels.
    #[test]
    fn pretty_printer_round_trips_generated_programs(
        src in stmt_source_strategy(),
        x in -2.0f32..2.0,
        y in -2.0f32..2.0,
        k in -2.0f32..2.0,
    ) {
        use mgpu_shader::pretty::print_program;
        use mgpu_shader::parse;

        let ast = parse(&src).expect("generated program parses");
        let printed = print_program(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reprint failed: {e}\n{printed}"));
        prop_assert_eq!(print_program(&reparsed), printed.clone());

        // Semantics match between original and reprinted source.
        let a = run_kernel(&src, &OptOptions::full(), x, y, k);
        let b = run_kernel(&printed, &OptOptions::full(), x, y, k);
        prop_assert_eq!(a, b, "printed:\n{}", printed);
    }
}

proptest! {
    /// The compiler never panics on arbitrary input: garbage in, a
    /// structured `CompileError` out (robustness against malformed kernel
    /// sources reaching the driver).
    #[test]
    fn compiler_never_panics_on_garbage(src in "[ -~\\n]{0,200}") {
        // Any outcome is fine; panicking is not (proptest catches unwind).
        let _ = mgpu_shader::compile(&src);
    }

    /// Token-soup built from the language's own vocabulary also never
    /// panics — closer to real-world malformed kernels than raw bytes.
    #[test]
    fn compiler_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("void"), Just("main"), Just("("), Just(")"), Just("{"),
                Just("}"), Just(";"), Just("float"), Just("vec4"), Just("="),
                Just("+"), Just("*"), Just("for"), Just("if"), Just("else"),
                Just("return"), Just("gl_FragColor"), Just("texture2D"),
                Just("1.0"), Just("x"), Just(","), Just("."), Just("uniform"),
                Just("sampler2D"), Just("varying"), Just("<"), Just("+="),
            ],
            0..60,
        ),
    ) {
        let src = tokens.join(" ");
        let _ = mgpu_shader::compile(&src);
    }
}
