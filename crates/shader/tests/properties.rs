//! Property tests: the optimiser never changes kernel semantics, and the
//! constant folder agrees with the interpreter.
//!
//! Cases are generated with the deterministic `mgpu-prop` runner (the
//! hermetic replacement for proptest), so every run explores the same
//! inputs.

use mgpu_prop::{run_cases, Rng};
use mgpu_shader::{
    compile_with, truncate_to_24bit, CompileOptions, Executor, OptOptions, UniformValues,
};

/// A random arithmetic expression over the varyings `v.x`/`v.y`, a uniform
/// `k`, and literals, rendered as kernel source.
#[derive(Debug, Clone)]
enum Node {
    X,
    Y,
    K,
    Lit(f32),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
    Min(Box<Node>, Box<Node>),
    Max(Box<Node>, Box<Node>),
    Clamp(Box<Node>),
    Neg(Box<Node>),
}

impl Node {
    fn render(&self) -> String {
        match self {
            Node::X => "v.x".into(),
            Node::Y => "v.y".into(),
            Node::K => "k".into(),
            Node::Lit(v) => format!("{v:.4}"),
            Node::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Node::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Node::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            Node::Min(a, b) => format!("min({}, {})", a.render(), b.render()),
            Node::Max(a, b) => format!("max({}, {})", a.render(), b.render()),
            Node::Clamp(a) => format!("clamp({}, 0.0, 1.0)", a.render()),
            Node::Neg(a) => format!("(-{})", a.render()),
        }
    }
}

/// Generates a random expression tree of at most `depth` levels.
fn gen_node(rng: &mut Rng, depth: u32) -> Node {
    let leaf_only = depth == 0;
    let choice = if leaf_only {
        rng.u32_in(0, 4)
    } else {
        rng.u32_in(0, 11)
    };
    let sub = |rng: &mut Rng| Box::new(gen_node(rng, depth - 1));
    match choice {
        0 => Node::X,
        1 => Node::Y,
        2 => Node::K,
        3 => Node::Lit(rng.f32(-4.0, 4.0)),
        4 => Node::Add(sub(rng), sub(rng)),
        5 => Node::Sub(sub(rng), sub(rng)),
        6 => Node::Mul(sub(rng), sub(rng)),
        7 => Node::Min(sub(rng), sub(rng)),
        8 => Node::Max(sub(rng), sub(rng)),
        9 => Node::Clamp(sub(rng)),
        _ => Node::Neg(sub(rng)),
    }
}

fn kernel_source(expr: &Node) -> String {
    format!(
        "uniform float k;\nvarying vec2 v;\nvoid main() {{ gl_FragColor = vec4({}); }}",
        expr.render()
    )
}

fn run_kernel(src: &str, opts: &OptOptions, x: f32, y: f32, k: f32) -> [f32; 4] {
    let sh = compile_with(
        src,
        &CompileOptions {
            opt: *opts,
            ..CompileOptions::default()
        },
    )
    .expect("generated kernel compiles");
    let mut uniforms = UniformValues::new();
    uniforms.set_scalar("k", k);
    let mut ex = Executor::new(&sh, &uniforms).expect("binds");
    ex.run(&[[x, y, 0.0, 0.0]], &[]).expect("runs")
}

/// Full optimisation computes bit-identical results to no optimisation:
/// every rewrite (folding, copy propagation, MAD fusion, DCE) preserves
/// f32 semantics exactly.
#[test]
fn optimiser_preserves_semantics() {
    run_cases(256, |rng| {
        let expr = gen_node(rng, 4);
        let x = rng.f32(-8.0, 8.0);
        let y = rng.f32(-8.0, 8.0);
        let k = rng.f32(-8.0, 8.0);
        let src = kernel_source(&expr);
        let a = run_kernel(&src, &OptOptions::full(), x, y, k);
        let b = run_kernel(&src, &OptOptions::none(), x, y, k);
        assert_eq!(a, b, "source:\n{src}");
    });
}

/// Optimisation never increases the instruction count.
#[test]
fn optimiser_never_grows_kernels() {
    run_cases(256, |rng| {
        let expr = gen_node(rng, 4);
        let src = kernel_source(&expr);
        let opt = compile_with(&src, &CompileOptions::default()).unwrap();
        let raw = compile_with(
            &src,
            &CompileOptions {
                opt: OptOptions::none(),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(opt.instruction_count() <= raw.instruction_count());
    });
}

/// Loop unrolling agrees with direct accumulation for arbitrary constant
/// trip counts.
#[test]
fn loop_unrolling_matches_closed_form() {
    run_cases(64, |rng| {
        let n = rng.u32_in(1, 64);
        let src = format!(
            "void main() {{\n\
               float acc = 0.0;\n\
               for (float i = 1.0; i <= {n}.0; i += 1.0) {{ acc += i; }}\n\
               gl_FragColor = vec4(acc);\n\
             }}"
        );
        let sh = compile_with(&src, &CompileOptions::default()).unwrap();
        let mut ex = Executor::new(&sh, &UniformValues::new()).unwrap();
        let got = ex.run(&[], &[]).unwrap()[0];
        let want = (n * (n + 1) / 2) as f32;
        assert_eq!(got, want);
    });
}

/// 24-bit truncation is idempotent and bounded.
#[test]
fn truncation_idempotent_and_close() {
    run_cases(4096, |rng| {
        let x = rng.f32(-1e6, 1e6);
        let t = truncate_to_24bit(x);
        assert_eq!(truncate_to_24bit(t), t);
        assert!((t - x).abs() <= x.abs() * 2e-4 + f32::MIN_POSITIVE);
    });
}

/// Predicated `if` matches the reference branch semantics for scalar
/// conditions.
#[test]
fn predication_matches_branching() {
    run_cases(256, |rng| {
        let x = rng.f32(-2.0, 2.0);
        let t = rng.f32(-2.0, 2.0);
        let src = "
            varying vec2 v;
            uniform float k;
            void main() {
                float out_v = 0.0;
                if (v.x < k) { out_v = v.x * 2.0; } else { out_v = v.x - 1.0; }
                gl_FragColor = vec4(out_v);
            }
        ";
        let got = run_kernel(src, &OptOptions::full(), x, 0.0, t)[0];
        let want = if x < t { x * 2.0 } else { x - 1.0 };
        assert_eq!(got, want);
    });
}

/// A small statement-level program generator for the pretty-printer
/// round-trip property: programs assembled from a fixed set of statement
/// templates over x/y/acc; every combination must parse, print, and
/// re-parse to the same canonical form.
fn gen_stmt_source(rng: &mut Rng) -> String {
    const STMTS: [&str; 7] = [
        "acc += v.x * 2.0;",
        "acc = clamp(acc, 0.0, 1.0);",
        "vec2 t = vec2(acc, v.y); acc = t.x + t.y;",
        "if (v.x < 0.5) { acc += 1.0; } else { acc -= 1.0; }",
        "for (float i = 0.0; i < 3.0; i += 1.0) { acc += i * v.y; }",
        "acc *= k;",
        "acc = v.x > v.y ? acc : (-acc);",
    ];
    let n = rng.usize_in(0, 6);
    let stmts: Vec<&str> = (0..n).map(|_| *rng.pick(&STMTS)).collect();
    format!(
        "uniform float k;\nvarying vec2 v;\nvoid main() {{\nfloat acc = 0.0;\n{}\ngl_FragColor = vec4(acc);\n}}\n",
        stmts.join("\n")
    )
}

/// The pretty printer round-trips arbitrary generated programs, and the
/// reprinted source compiles to semantically identical kernels.
#[test]
fn pretty_printer_round_trips_generated_programs() {
    run_cases(256, |rng| {
        use mgpu_shader::parse;
        use mgpu_shader::pretty::print_program;

        let src = gen_stmt_source(rng);
        let x = rng.f32(-2.0, 2.0);
        let y = rng.f32(-2.0, 2.0);
        let k = rng.f32(-2.0, 2.0);

        let ast = parse(&src).expect("generated program parses");
        let printed = print_program(&ast);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reprint failed: {e}\n{printed}"));
        assert_eq!(print_program(&reparsed), printed);

        // Semantics match between original and reprinted source.
        let a = run_kernel(&src, &OptOptions::full(), x, y, k);
        let b = run_kernel(&printed, &OptOptions::full(), x, y, k);
        assert_eq!(a, b, "printed:\n{printed}");
    });
}

/// The full-surface shader generator (`mgpu_prop::shadergen`) only emits
/// compilable programs, and `parse(print(ast))` is the *identity* on their
/// ASTs (modulo source lines) — the invariant the conformance shrinker
/// rests on: a shrunk AST can be re-rendered to source and re-parsed
/// without drifting.
#[test]
fn generated_shaders_compile_and_round_trip_exactly() {
    run_cases(384, |rng| {
        use mgpu_shader::parse;
        use mgpu_shader::pretty::print_program;

        let spec = mgpu_prop::shadergen::gen_shader(rng);
        let src = &spec.source;
        compile_with(src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("generated shader failed to compile: {e}\n{src}"));

        let ast = parse(src).expect("generated shader parses");
        let printed = print_program(&ast);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reprint failed: {e}\n{printed}"));
        // Structural AST equality, not just canonical-form agreement.
        assert_eq!(
            ast.without_lines(),
            reparsed.without_lines(),
            "round trip changed the AST:\n{printed}"
        );
        // The reprinted source compiles to the same instruction stream.
        let direct = compile_with(src, &CompileOptions::default()).expect("compiles");
        let reprinted =
            compile_with(&printed, &CompileOptions::default()).expect("reprint compiles");
        assert_eq!(direct.instruction_count(), reprinted.instruction_count());
    });
}

/// The compiler never panics on arbitrary input: garbage in, a structured
/// `CompileError` out (robustness against malformed kernel sources
/// reaching the driver).
#[test]
fn compiler_never_panics_on_garbage() {
    run_cases(512, |rng| {
        let len = rng.usize_in(0, 200);
        let src: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline, as proptest's "[ -~\n]".
                let c = rng.u32_in(0, 96);
                if c == 95 {
                    '\n'
                } else {
                    char::from(b' ' + c as u8)
                }
            })
            .collect();
        let _ = mgpu_shader::compile(&src);
    });
}

/// Token-soup built from the language's own vocabulary also never panics —
/// closer to real-world malformed kernels than raw bytes.
#[test]
fn compiler_never_panics_on_token_soup() {
    const TOKENS: [&str; 26] = [
        "void",
        "main",
        "(",
        ")",
        "{",
        "}",
        ";",
        "float",
        "vec4",
        "=",
        "+",
        "*",
        "for",
        "if",
        "else",
        "return",
        "gl_FragColor",
        "texture2D",
        "1.0",
        "x",
        ",",
        ".",
        "uniform",
        "sampler2D",
        "varying",
        "<",
    ];
    run_cases(512, |rng| {
        let n = rng.usize_in(0, 60);
        let src = (0..n)
            .map(|_| *rng.pick(&TOKENS))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = mgpu_shader::compile(&src);
    });
}
