//! Fleet scheduler behaviour: admission backpressure, deadlines,
//! quarantine/probe, displacement, determinism and fault isolation.

use mgpu_gles::FaultPlan;
use mgpu_service::{
    check_service_isolation, BreakerConfig, FleetService, JobSpec, ServiceConfig, ServiceError,
};
use mgpu_tbdr::SimTime;

const SUM: JobSpec = JobSpec::Sum {
    n: 8,
    iterations: 2,
};

/// A plan whose compile stage fails densely at the start: every early
/// job exhausts its retries, then the fault budget runs out and the
/// device heals — the shape that exercises trip, probe-failure and
/// eventual recovery.
fn hostile_plan(seed: u64, failures: u64) -> FaultPlan {
    (0..failures).fold(FaultPlan::seeded(seed), |plan, i| plan.compile_fail_at(i))
}

/// Recoverable background noise: context losses and OOMs only (no
/// corruption — that class needs checksum verification to be
/// recoverable, which the default config leaves off).
fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed).p_ctx_loss(0.02).p_oom(0.02)
}

#[test]
fn admission_rejects_typed_when_queues_fill() {
    let mut service = FleetService::new(ServiceConfig {
        devices: 1,
        queue_depth: 2,
        device_queue_depth: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let tenant = service.add_tenant(1);

    let mut admitted = 0;
    let mut rejected = 0;
    for _ in 0..6 {
        match service.submit(tenant, SUM, SimTime::ZERO, None) {
            Ok(_) => admitted += 1,
            Err(ServiceError::Rejected { tenant: t, depth }) => {
                assert_eq!(t, tenant);
                assert_eq!(depth, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    // 1 routed to the device queue + 2 in the tenant queue.
    assert_eq!(admitted, 3);
    assert_eq!(rejected, 3);

    service.drain();
    let stats = service.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.rejected, 3);
    assert_eq!(stats.completed_ok, 3);
    // Rejections are part of the transcript.
    assert_eq!(service.records().len(), 6);

    // Backpressure recovers: after the drain the tenant can submit again.
    let arrival = stats.makespan + SimTime::from_millis(1);
    assert!(service.submit(tenant, SUM, arrival, None).is_ok());
    service.drain();
    assert_eq!(service.stats().completed_ok, 4);
}

#[test]
fn deadlines_fail_typed_and_never_hang() {
    let mut service = FleetService::new(ServiceConfig {
        devices: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let tenant = service.add_tenant(1);

    // A long job occupies the device...
    let long = JobSpec::Sum {
        n: 8,
        iterations: 40,
    };
    let first = service.submit(tenant, long, SimTime::ZERO, None).unwrap();
    // ...so a tight-deadline job behind it expires while queued.
    let doomed = service
        .submit(tenant, SUM, SimTime::ZERO, Some(SimTime::from_nanos(1)))
        .unwrap();
    service.drain();

    let records = service.records();
    assert_eq!(records.len(), 2);
    let doomed_rec = records.iter().find(|r| r.id == doomed).unwrap();
    match &doomed_rec.outcome {
        Err(ServiceError::DeadlineExceeded(e)) => {
            assert_eq!(e.job, doomed);
            assert_eq!(e.started, None, "expired while queued");
            assert!(e.deadline < doomed_rec.finished.unwrap());
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let first_rec = records.iter().find(|r| r.id == first).unwrap();
    assert!(first_rec.outcome.is_ok());
    assert_eq!(service.stats().deadline_missed, 1);
}

#[test]
fn late_finish_carries_fault_and_recovery_trail() {
    // A noisy single-device fleet and a deadline sized so the job runs
    // but finishes late: the typed error must carry the run's trail.
    let mut service = FleetService::new(ServiceConfig {
        devices: 1,
        fault_plans: vec![Some(FaultPlan::seeded(5).ctx_loss_at_draw(1))],
        ..ServiceConfig::default()
    })
    .unwrap();
    let tenant = service.add_tenant(1);
    // Measure the clean duration first on an identical but fault-free
    // service, then pick a deadline between queue-exit and finish.
    let clean_finish = {
        let mut clean = FleetService::new(ServiceConfig {
            devices: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let t = clean.add_tenant(1);
        clean.submit(t, SUM, SimTime::ZERO, None).unwrap();
        clean.drain();
        clean.records()[0].finished.unwrap()
    };

    service
        .submit(tenant, SUM, SimTime::ZERO, Some(clean_finish))
        .unwrap();
    service.drain();
    let record = &service.records()[0];
    match &record.outcome {
        Err(ServiceError::DeadlineExceeded(e)) => {
            assert!(e.started.is_some(), "the job ran");
            assert!(e.finished.is_some());
            assert!(
                !e.fault_trail.is_empty(),
                "the injected context loss must be in the trail"
            );
            assert!(!e.recovery.is_empty(), "recovery actions must be recorded");
        }
        Ok(_) => {
            // Recovery was cheap enough to make the deadline: accept, but
            // the job must then have recovered through the fault.
            assert!(record.recovery_events > 0);
        }
        other => panic!("expected DeadlineExceeded or recovery, got {other:?}"),
    }
}

#[test]
fn breaker_quarantines_drains_and_probes_back() {
    let mut service = FleetService::new(ServiceConfig {
        devices: 2,
        // Device 0 exhausts every early job; device 1 is clean.
        fault_plans: vec![Some(hostile_plan(3, 24)), None],
        breaker: BreakerConfig {
            threshold: 2,
            cooldown: SimTime::from_millis(1),
            max_cooldown_factor: 4,
        },
        ..ServiceConfig::default()
    })
    .unwrap();
    let tenant = service.add_tenant(1);
    // Wave 1 hits the hostile device and trips its breaker.
    for _ in 0..15 {
        service.submit(tenant, SUM, SimTime::ZERO, None).unwrap();
    }
    service.drain();
    // Wave 2 arrives long after every cooldown rung: the healed device
    // (its fault budget spent) gets a successful probe and rejoins.
    let wave2 = service.stats().makespan + SimTime::from_millis(20);
    for _ in 0..15 {
        service.submit(tenant, SUM, wave2, None).unwrap();
    }
    service.drain();

    let stats = service.stats();
    assert_eq!(stats.admitted, 30);
    assert!(stats.quarantines >= 1, "device 0 must trip: {stats:?}");
    assert!(stats.displaced >= 1, "its queue must drain to device 1");
    assert!(stats.probes >= 1, "cooldown must grant probe slots");
    assert!(stats.failed >= 2, "the trip took consecutive exhaustions");
    assert_eq!(
        stats.completed_ok + stats.failed + stats.deadline_missed,
        30,
        "every admitted job resolves, one way or another: {stats:?}"
    );
    // Every record carries a typed outcome and a finish instant.
    for record in service.records() {
        assert!(record.finished.is_some(), "{:?} never finished", record.id);
        if let Err(e) = &record.outcome {
            assert!(matches!(e, ServiceError::Exhausted(_)), "unexpected: {e}");
        }
    }
    // The device healed (its fault budget ran dry), so a probe
    // eventually succeeded and work flowed back to device 0.
    let per_device = service.device_jobs();
    let ok_on_zero = service
        .records()
        .iter()
        .any(|r| r.device == Some(0) && r.outcome.is_ok());
    assert!(
        ok_on_zero,
        "device 0 must rejoin after a successful probe: {per_device:?}"
    );
}

#[test]
fn same_seed_same_schedule_byte_for_byte() {
    let run = || {
        let mut service = FleetService::new(ServiceConfig {
            devices: 3,
            fault_plans: vec![Some(noisy_plan(11)), None, Some(noisy_plan(12))],
            seed: 42,
            ..ServiceConfig::default()
        })
        .unwrap();
        let a = service.add_tenant(1);
        let b = service.add_tenant(3);
        for i in 0..8u64 {
            let arrival = SimTime::from_micros(i * 40);
            service.submit(a, SUM, arrival, None).unwrap();
            let spec = JobSpec::Sgemm { n: 8, block: 4 };
            service.submit(b, spec, arrival, None).unwrap();
        }
        service.drain();
        service.records().to_vec()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "replay must be byte-identical");
    assert!(first.iter().any(|r| r.faults_seen > 0), "noise must fire");
}

#[test]
fn isolation_holds_on_a_noisy_fleet() {
    let mut service = FleetService::new(ServiceConfig {
        devices: 4,
        fault_plans: vec![
            Some(noisy_plan(21)),
            None,
            Some(noisy_plan(22)),
            Some(FaultPlan::seeded(23).ctx_loss_at_draw(2).oom_at_upload(1)),
        ],
        seed: 7,
        ..ServiceConfig::default()
    })
    .unwrap();
    let fast = service.add_tenant(4);
    let slow = service.add_tenant(1);
    for i in 0..10u64 {
        let arrival = SimTime::from_micros(i * 25);
        service.submit(fast, SUM, arrival, None).unwrap();
        let spec = JobSpec::Sgemm { n: 8, block: 2 };
        service.submit(slow, spec, arrival, None).unwrap();
    }
    service.drain();

    let stats = service.stats();
    assert!(stats.completed_ok > 0);
    let divergences = check_service_isolation(&service);
    assert!(
        divergences.is_empty(),
        "tenant transcripts must match solo fault-free runs: {divergences:?}"
    );
}

#[test]
fn unknown_tenant_and_bad_specs_are_typed() {
    let mut service = FleetService::new(ServiceConfig::default()).unwrap();
    let err = service
        .submit(mgpu_service::TenantId(5), SUM, SimTime::ZERO, None)
        .unwrap_err();
    assert!(matches!(err, ServiceError::UnknownTenant(_)));

    let tenant = service.add_tenant(1);
    let bad = JobSpec::Sgemm { n: 8, block: 3 };
    assert!(matches!(
        service.submit(tenant, bad, SimTime::ZERO, None),
        Err(ServiceError::Config(_))
    ));

    // Out-of-order arrivals are a config error, not silent reordering.
    service
        .submit(tenant, SUM, SimTime::from_millis(2), None)
        .unwrap();
    assert!(matches!(
        service.submit(tenant, SUM, SimTime::from_millis(1), None),
        Err(ServiceError::Config(_))
    ));
}
