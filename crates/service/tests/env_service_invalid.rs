//! An invalid `MGPU_SERVICE_*` value must surface as a typed
//! [`ServiceError::Env`] at `ServiceConfig::from_env` — never a silent
//! fallback to defaults. Own binary: the knob snapshot is
//! process-global.

use mgpu_service::{ServiceConfig, ServiceError, DEVICES_ENV};

#[test]
fn zero_devices_fails_from_env_typed() {
    std::env::set_var(DEVICES_ENV, "0");
    let err = match ServiceConfig::from_env() {
        Err(e) => e,
        Ok(_) => panic!("MGPU_SERVICE_DEVICES=0 must not resolve"),
    };
    std::env::remove_var(DEVICES_ENV);
    let ServiceError::Env(e) = &err else {
        panic!("expected ServiceError::Env, got {err}");
    };
    assert_eq!(e.var, DEVICES_ENV);
    assert_eq!(e.value, "0");
    assert!(err.to_string().contains("positive"), "{err}");
}
