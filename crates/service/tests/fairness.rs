//! Scheduler fairness and starvation-freedom.
//!
//! Deficit round robin's contract: while tenants stay backlogged, their
//! completed work converges to the ratio of their QoS weights; and every
//! admitted job eventually resolves, whatever the arrival pattern. Both
//! are checked here, the second as a seeded property over random
//! arrivals, weights and job mixes — with the schedule itself asserted
//! replay-identical for each seed.

use mgpu_gles::FaultPlan;
use mgpu_prop::{run_cases, Rng};
use mgpu_service::{FleetService, JobSpec, ServiceConfig, TenantId};
use mgpu_tbdr::SimTime;

/// While every tenant is backlogged, completed-work ratios must track
/// the weight ratios. Measured over the prefix of the completion
/// transcript where all tenants still have queued work (after that the
/// light tenants run dry and the ratios legitimately drift).
#[test]
fn work_ratios_converge_to_weights() {
    let weights: [u32; 3] = [1, 2, 4];
    let jobs_per_tenant = 48;
    let spec = JobSpec::Sum {
        n: 8,
        iterations: 2,
    };

    let mut service = FleetService::new(ServiceConfig {
        devices: 2,
        device_queue_depth: 1, // tight look-ahead keeps DRR in charge
        queue_depth: jobs_per_tenant,
        quantum: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let tenants: Vec<TenantId> = weights.iter().map(|&w| service.add_tenant(w)).collect();
    for _ in 0..jobs_per_tenant {
        for &t in &tenants {
            service.submit(t, spec, SimTime::ZERO, None).unwrap();
        }
    }
    service.drain();

    // Count work per tenant over the first half of executions: every
    // tenant still has backlog there (the heaviest tenant holds 4/7 of
    // the work; half the total is well inside its queue).
    let executions: Vec<_> = service
        .records()
        .iter()
        .filter(|r| r.started.is_some())
        .collect();
    let prefix = &executions[..executions.len() / 2];
    let mut work = [0u64; 3];
    for record in prefix {
        work[record.tenant.0 as usize] += record.spec.passes();
    }

    let total_weight: u32 = weights.iter().sum();
    let total_work: u64 = work.iter().sum();
    for (i, (&w, &done)) in weights.iter().zip(&work).enumerate() {
        let expected = total_work as f64 * f64::from(w) / f64::from(total_weight);
        let got = done as f64;
        let tolerance = 0.25 * expected;
        assert!(
            (got - expected).abs() <= tolerance,
            "tenant {i} (weight {w}): {got} passes vs expected {expected:.1} ± {tolerance:.1}; \
             work = {work:?}"
        );
    }
}

/// Every admitted tenant makes progress — no starvation — under random
/// arrivals, weights, fleet sizes and (recoverable) fault noise; and
/// the schedule is a pure function of the seed.
#[test]
fn random_fleets_starve_no_one_and_replay_exactly() {
    run_cases(6, |rng| {
        let scenario = random_scenario(rng);
        let first = run_scenario(&scenario);
        let second = run_scenario(&scenario);
        assert_eq!(first.records, second.records, "seed must replay exactly");

        // Starvation-freedom: every admitted job resolved.
        assert_eq!(
            first.records.len() as u64,
            first.submitted,
            "every submission (admitted or rejected) must be recorded"
        );
        for (tenant, admitted) in first.admitted_per_tenant.iter().enumerate() {
            let resolved = first
                .records
                .iter()
                .filter(|r| r.tenant == TenantId(tenant as u32) && r.started.is_some())
                .count() as u64;
            let expired = first
                .records
                .iter()
                .filter(|r| {
                    r.tenant == TenantId(tenant as u32)
                        && r.started.is_none()
                        && r.finished.is_some()
                        && r.device.is_some()
                })
                .count() as u64;
            assert_eq!(
                resolved + expired,
                *admitted,
                "tenant {tenant}: every admitted job must reach a device or expire typed"
            );
            if *admitted > 0 {
                assert!(
                    resolved + expired > 0,
                    "tenant {tenant} starved with {admitted} admitted jobs"
                );
            }
        }
    });
}

struct Scenario {
    cfg: ServiceConfig,
    weights: Vec<u32>,
    /// (tenant index, spec, arrival) — time-ordered.
    submissions: Vec<(usize, JobSpec, SimTime)>,
}

struct Outcome {
    records: Vec<mgpu_service::JobRecord>,
    submitted: u64,
    admitted_per_tenant: Vec<u64>,
}

fn random_scenario(rng: &mut Rng) -> Scenario {
    let devices = rng.usize_in(1, 3);
    let fault_plans = (0..devices)
        .map(|_| {
            rng.bool().then(|| {
                FaultPlan::seeded(rng.next_u64())
                    .p_ctx_loss(rng.f64(0.0, 0.03))
                    .p_oom(rng.f64(0.0, 0.03))
            })
        })
        .collect();
    let cfg = ServiceConfig {
        devices,
        fault_plans,
        queue_depth: rng.usize_in(4, 16),
        device_queue_depth: rng.usize_in(1, 3),
        quantum: rng.u64_in(1, 6),
        seed: rng.next_u64(),
        ..ServiceConfig::default()
    };
    let tenant_count = rng.usize_in(2, 4);
    let weights: Vec<u32> = (0..tenant_count).map(|_| rng.u32_in(1, 6)).collect();
    let mut submissions = Vec::new();
    let mut now = 0u64;
    for _ in 0..rng.usize_in(6, 18) {
        now += rng.u64_in(0, 200_000); // 0..200µs steps, in ns
        let tenant = rng.usize_in(0, tenant_count - 1);
        let spec = if rng.bool() {
            JobSpec::Sum {
                n: 8,
                iterations: rng.u32_in(1, 4),
            }
        } else {
            JobSpec::Sgemm {
                n: 8,
                block: *rng.pick(&[2u32, 4, 8]),
            }
        };
        submissions.push((tenant, spec, SimTime::from_nanos(now)));
    }
    Scenario {
        cfg,
        weights,
        submissions,
    }
}

fn run_scenario(scenario: &Scenario) -> Outcome {
    let mut service = FleetService::new(scenario.cfg.clone()).unwrap();
    let tenants: Vec<TenantId> = scenario
        .weights
        .iter()
        .map(|&w| service.add_tenant(w))
        .collect();
    let mut admitted = vec![0u64; tenants.len()];
    let mut submitted = 0u64;
    for &(tenant, spec, arrival) in &scenario.submissions {
        submitted += 1;
        if service.submit(tenants[tenant], spec, arrival, None).is_ok() {
            admitted[tenant] += 1;
        }
    }
    service.drain();
    Outcome {
        records: service.records().to_vec(),
        submitted,
        admitted_per_tenant: admitted,
    }
}
