//! `MGPU_SERVICE_*` knobs land in `ServiceConfig::from_env` through the
//! once-per-process snapshot. Own binary: the snapshot is process-global
//! and resolves at first use.

use mgpu_service::{ServiceConfig, BREAKER_ENV, DEVICES_ENV, QUEUE_DEPTH_ENV, SEED_ENV};

#[test]
fn env_overrides_apply_and_stick() {
    std::env::set_var(DEVICES_ENV, "6");
    std::env::set_var(QUEUE_DEPTH_ENV, "11");
    std::env::set_var(BREAKER_ENV, "5");
    std::env::set_var(SEED_ENV, "12345");
    let cfg = ServiceConfig::from_env().unwrap();
    std::env::remove_var(DEVICES_ENV);
    std::env::remove_var(QUEUE_DEPTH_ENV);
    std::env::remove_var(BREAKER_ENV);
    std::env::remove_var(SEED_ENV);

    assert_eq!(cfg.devices, 6);
    assert_eq!(cfg.queue_depth, 11);
    assert_eq!(cfg.breaker.threshold, 5);
    assert_eq!(cfg.seed, 12345);

    // The snapshot is sticky: clearing the variables afterwards does not
    // resurrect the defaults mid-process.
    let again = ServiceConfig::from_env().unwrap();
    assert_eq!(again.devices, 6);
    assert_eq!(again.seed, 12345);
}
