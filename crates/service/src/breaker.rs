//! Per-device circuit breaker.
//!
//! A device that keeps exhausting the resilient runner is a liability:
//! every job charged to it burns retries, backoff and recreation time
//! before failing. The breaker watches for K *consecutive*
//! [`Exhausted`](mgpu_gpgpu::GpgpuError::Exhausted) outcomes, then opens
//! — the scheduler drains the device's queue to healthy peers and stops
//! routing to it. After a cooldown the breaker half-opens and admits
//! exactly one probe job: success closes it again (full reset), failure
//! re-opens it with a doubled cooldown (capped), the classic
//! exponential-backoff probe ladder. All transitions happen in simulated
//! time, so a seeded run replays its quarantine history exactly.

use mgpu_tbdr::SimTime;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive `Exhausted` outcomes that open the breaker.
    pub threshold: u32,
    /// Initial quarantine cooldown.
    pub cooldown: SimTime,
    /// Cap on cooldown doubling, as a multiple of `cooldown`.
    pub max_cooldown_factor: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: SimTime::from_millis(2),
            max_cooldown_factor: 8,
        }
    }
}

/// Breaker state, in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: jobs flow normally.
    Closed,
    /// Quarantined until the embedded instant; no jobs are routed here.
    Open {
        /// When the cooldown elapses and the breaker half-opens.
        until: SimTime,
    },
    /// Cooldown elapsed: exactly one probe job may run.
    HalfOpen,
}

/// A per-device circuit breaker; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_exhausted: u32,
    /// Next quarantine duration (doubles per consecutive trip).
    next_cooldown: SimTime,
    trips: u64,
    probes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with `cfg` tuning (threshold is clamped to >= 1).
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Self {
        let cfg = BreakerConfig {
            threshold: cfg.threshold.max(1),
            max_cooldown_factor: cfg.max_cooldown_factor.max(1),
            ..cfg
        };
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_exhausted: 0,
            next_cooldown: cfg.cooldown,
            trips: 0,
            probes: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Probe jobs admitted after cooldowns.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Whether the device may be routed a job right now. A half-open
    /// breaker accepts (the single probe); an open one does not.
    #[must_use]
    pub fn accepts(&self) -> bool {
        !matches!(self.state, BreakerState::Open { .. })
    }

    /// When an open breaker half-opens, if open.
    #[must_use]
    pub fn open_until(&self) -> Option<SimTime> {
        match self.state {
            BreakerState::Open { until } => Some(until),
            _ => None,
        }
    }

    /// Records a successful job. Closes a half-open breaker and resets
    /// the failure streak and the cooldown ladder.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_exhausted = 0;
        self.next_cooldown = self.cfg.cooldown;
    }

    /// Records an `Exhausted` outcome at simulated instant `now`.
    /// Returns `true` when this outcome trips the breaker open (the
    /// caller should then drain the device's queue). A failed half-open
    /// probe re-trips immediately with a doubled cooldown.
    pub fn on_exhausted(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Open { .. } => false,
            BreakerState::HalfOpen => {
                self.trip(now);
                true
            }
            BreakerState::Closed => {
                self.consecutive_exhausted += 1;
                if self.consecutive_exhausted >= self.cfg.threshold {
                    self.trip(now);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Half-opens the breaker if its cooldown has elapsed at `now`.
    /// Returns `true` on the open→half-open transition (i.e. a probe
    /// slot just became available).
    pub fn release_due(&mut self, now: SimTime) -> bool {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
                self.probes += 1;
                return true;
            }
        }
        false
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open {
            until: now + self.next_cooldown,
        };
        self.trips += 1;
        self.consecutive_exhausted = 0;
        let cap = self.cfg.cooldown * u64::from(self.cfg.max_cooldown_factor);
        self.next_cooldown = (self.next_cooldown * 2).min(cap.max(self.cfg.cooldown));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: SimTime::from_millis(1),
            max_cooldown_factor: 4,
        }
    }

    #[test]
    fn trips_after_k_consecutive_exhaustions_only() {
        let mut b = CircuitBreaker::new(cfg());
        let t = SimTime::from_millis(10);
        assert!(!b.on_exhausted(t));
        assert!(!b.on_exhausted(t));
        b.on_success(); // breaks the streak
        assert!(!b.on_exhausted(t));
        assert!(!b.on_exhausted(t));
        assert!(b.on_exhausted(t), "third consecutive failure trips");
        assert_eq!(
            b.state(),
            BreakerState::Open {
                until: t + SimTime::from_millis(1)
            }
        );
        assert_eq!(b.trips(), 1);
        assert!(!b.accepts());
    }

    #[test]
    fn cooldown_release_probes_then_success_closes() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = SimTime::ZERO;
        for _ in 0..3 {
            b.on_exhausted(t0);
        }
        assert!(!b.release_due(SimTime::from_micros(999)));
        assert!(b.release_due(SimTime::from_millis(1)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.accepts());
        assert_eq!(b.probes(), 1);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        // The ladder reset: a fresh trip uses the base cooldown again.
        for _ in 0..3 {
            b.on_exhausted(SimTime::from_millis(2));
        }
        assert_eq!(b.open_until(), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn failed_probe_doubles_cooldown_up_to_cap() {
        let mut b = CircuitBreaker::new(cfg());
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            b.on_exhausted(now);
        }
        // Trip 1 used 1ms; successive failed probes use 2, 4, 4, 4 (cap).
        for expected_ms in [2u64, 4, 4, 4] {
            let until = match b.state() {
                BreakerState::Open { until } => until,
                s => panic!("expected open, got {s:?}"),
            };
            now = until;
            assert!(b.release_due(now));
            assert!(b.on_exhausted(now), "failed probe re-trips");
            assert_eq!(
                b.open_until(),
                Some(now + SimTime::from_millis(expected_ms)),
                "cooldown ladder mismatch"
            );
        }
        assert_eq!(b.trips(), 5);
    }
}
