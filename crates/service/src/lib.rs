//! Multi-tenant GPU service: a fleet scheduler for simulated mobile GPUs.
//!
//! The paper evaluates GPGPU kernels one job at a time on one device;
//! this crate models the production shape on top of the same stack — many
//! tenants sharing a fleet of flaky simulated devices, where watchdog
//! kills, context losses and allocation failures on one device must never
//! leak into another tenant's results.
//!
//! A [`FleetService`] owns N [`Gl`](mgpu_gles::Gl) contexts (mixed
//! VideoCore IV / SGX 545 platforms, each with its own seeded fault
//! plan), multiplexed over **one** shared host-thread
//! [`Executor`](mgpu_gles::Executor), and drains
//! [`RecoverableJob`](mgpu_gpgpu::RecoverableJob) submissions from
//! per-tenant queues. The robustness machinery, in dispatch order:
//!
//! 1. **Admission control** — per-tenant queues are bounded; a full queue
//!    answers [`ServiceError::Rejected`] instead of growing without
//!    bound.
//! 2. **Deficit-round-robin fairness** — tenants accumulate deficit in
//!    proportion to their QoS weight and spend it per job pass, so
//!    completed-work ratios converge to the configured weights and no
//!    admitted tenant starves.
//! 3. **Deadlines** — each job may carry a simulated-time deadline;
//!    exceeding it yields a typed [`ServiceError::DeadlineExceeded`]
//!    carrying the fault and recovery trail, never a hang.
//! 4. **Circuit breaker** — a device is quarantined after K consecutive
//!    [`Exhausted`](mgpu_gpgpu::GpgpuError::Exhausted) recoveries, its
//!    queue drains to healthy devices, and a half-open probe re-admits it
//!    after a cooldown (doubling on repeated failure).
//! 5. **Fault isolation** — every job runs under a
//!    [`ResilientRunner`](mgpu_gpgpu::ResilientRunner);
//!    [`check_isolation`] proves the invariance promise by re-running
//!    each completed job alone on a fault-free device and comparing
//!    result bytes.
//!
//! Everything happens in deterministic **simulated** time driven from a
//! seed: the same configuration and submissions replay the same schedule,
//! the same fault trails, and the same bytes, regardless of host core
//! count or wall-clock jitter.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

mod breaker;
mod error;
mod fleet;
mod isolation;
mod knobs;
mod queue;
mod spec;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use error::{DeadlineError, ServiceError};
pub use fleet::{FleetService, JobRecord, ServiceConfig, ServiceStats};
pub use isolation::{check_isolation, check_service_isolation, IsolationDivergence};
pub use knobs::{BREAKER_ENV, DEVICES_ENV, QUEUE_DEPTH_ENV, SEED_ENV};
pub use queue::{JobId, TenantId};
pub use spec::JobSpec;
