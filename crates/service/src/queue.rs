//! Per-tenant bounded queues and the deficit-round-robin ledger.
//!
//! Each tenant owns a FIFO of admitted jobs plus a *deficit* counter in
//! pass units. The scheduler refills deficits in proportion to QoS weight
//! and lets a tenant dispatch its queue head only while the head's cost
//! fits the deficit — the classic DRR guarantee: over any long window,
//! tenants that stay backlogged complete work in the ratio of their
//! weights, and every non-empty queue is visited every round, so no
//! admitted tenant starves.

use std::collections::VecDeque;
use std::fmt;

use mgpu_tbdr::SimTime;

use crate::spec::JobSpec;

/// Identifies a tenant within one [`crate::FleetService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies a submission (unique per service, in submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job #{}", self.0)
    }
}

/// An admitted job waiting in a tenant (or device) queue.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QueuedJob {
    pub id: JobId,
    pub tenant: TenantId,
    pub spec: JobSpec,
    /// Seed the job's inputs derive from (kept so the isolation oracle
    /// can rebuild the identical job later).
    pub input_seed: u64,
    pub submitted: SimTime,
    /// Absolute simulated-time deadline, if any.
    pub deadline: Option<SimTime>,
    /// Scheduling cost in passes (`spec.passes()`, cached).
    pub cost: u64,
}

/// One tenant's queue, weight and work ledger.
#[derive(Debug)]
pub(crate) struct Tenant {
    /// QoS weight (>= 1): deficit refills are proportional to it.
    pub weight: u32,
    /// Unspent dispatch credit, in passes.
    pub deficit: u64,
    pub queue: VecDeque<QueuedJob>,
    pub submitted: u64,
    pub rejected: u64,
    pub completed_ok: u64,
    /// Passes of successfully completed work (the fairness metric).
    pub work_done: u64,
}

impl Tenant {
    pub fn new(weight: u32) -> Self {
        Tenant {
            weight: weight.max(1),
            deficit: 0,
            queue: VecDeque::new(),
            submitted: 0,
            rejected: 0,
            completed_ok: 0,
            work_done: 0,
        }
    }
}
