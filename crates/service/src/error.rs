//! Typed service errors: every way the fleet can fail a submission is a
//! value carrying its evidence — queue depths, deadlines, fault trails —
//! never a hang and never a panic.

use std::fmt;

use mgpu_gles::{EnvKnobError, FaultEvent};
use mgpu_gpgpu::{ExhaustedError, RecoveryEvent};
use mgpu_tbdr::SimTime;

use crate::queue::{JobId, TenantId};

/// Evidence attached to a missed deadline: when the job was due, how far
/// it got, and every fault/recovery event observed while it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineError {
    /// Tenant that submitted the job.
    pub tenant: TenantId,
    /// The job.
    pub job: JobId,
    /// The job's label.
    pub label: String,
    /// Absolute simulated-time deadline.
    pub deadline: SimTime,
    /// When the job started executing, if it got that far (`None`: the
    /// deadline passed while it was still queued and it was failed fast
    /// without burning device time).
    pub started: Option<SimTime>,
    /// When the device finished it (the result is discarded: it was late).
    pub finished: Option<SimTime>,
    /// Faults injected into this job's run, in order.
    pub fault_trail: Vec<FaultEvent>,
    /// Recovery actions the resilient runner took, in order.
    pub recovery: Vec<RecoveryEvent>,
}

impl fmt::Display for DeadlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadline {:?} exceeded for `{}` ({} of tenant {})",
            self.deadline, self.label, self.job, self.tenant
        )?;
        match (self.started, self.finished) {
            (None, _) => write!(f, ": expired while queued")?,
            (Some(s), Some(e)) => write!(f, ": ran {s:?}..{e:?}")?,
            (Some(s), None) => write!(f, ": started {s:?}")?,
        }
        write!(
            f,
            " ({} faults, {} recovery actions)",
            self.fault_trail.len(),
            self.recovery.len()
        )
    }
}

impl std::error::Error for DeadlineError {}

/// Every typed failure the service can answer with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control refused the job: the tenant's queue is full.
    /// Backpressure is the contract — resubmit later, never queue
    /// unboundedly.
    Rejected {
        /// Tenant whose queue was full.
        tenant: TenantId,
        /// The configured queue bound that was hit.
        depth: usize,
    },
    /// The job's simulated-time deadline passed before (or while) it ran.
    DeadlineExceeded(Box<DeadlineError>),
    /// The resilient runner exhausted retries, recreations and
    /// degradations on the executing device. Carries the full fault trail
    /// and recovery history; also the event that feeds the device's
    /// circuit breaker.
    Exhausted(Box<ExhaustedError>),
    /// The job failed with a non-recoverable error (e.g. inconsistent
    /// configuration) — the device is not at fault.
    Job {
        /// Tenant that submitted the job.
        tenant: TenantId,
        /// The job.
        job: JobId,
        /// The underlying error, rendered.
        detail: String,
    },
    /// The tenant id was never registered with [`crate::FleetService`].
    UnknownTenant(TenantId),
    /// The service was configured inconsistently (zero devices, zero
    /// queue depth, out-of-order submission times, invalid job shape...).
    Config(String),
    /// An `MGPU_SERVICE_*` environment knob failed to parse.
    Env(EnvKnobError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Rejected { tenant, depth } => {
                write!(
                    f,
                    "admission rejected: queue of tenant {tenant} is full (depth {depth})"
                )
            }
            ServiceError::DeadlineExceeded(e) => e.fmt(f),
            ServiceError::Exhausted(e) => e.fmt(f),
            ServiceError::Job {
                tenant,
                job,
                detail,
            } => {
                write!(f, "{job} of tenant {tenant} failed: {detail}")
            }
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServiceError::Config(msg) => write!(f, "service misconfigured: {msg}"),
            ServiceError::Env(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EnvKnobError> for ServiceError {
    fn from(e: EnvKnobError) -> Self {
        ServiceError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejected_display_names_tenant_and_depth() {
        let e = ServiceError::Rejected {
            tenant: TenantId(3),
            depth: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("tenant 3"), "{msg}");
        assert!(msg.contains("depth 8"), "{msg}");
    }

    #[test]
    fn deadline_display_distinguishes_queued_from_ran() {
        let base = DeadlineError {
            tenant: TenantId(1),
            job: JobId(7),
            label: "sum".to_owned(),
            deadline: SimTime::from_micros(100),
            started: None,
            finished: None,
            fault_trail: Vec::new(),
            recovery: Vec::new(),
        };
        assert!(base.to_string().contains("expired while queued"));
        let ran = DeadlineError {
            started: Some(SimTime::from_micros(40)),
            finished: Some(SimTime::from_micros(140)),
            ..base
        };
        assert!(ran.to_string().contains("ran"));
    }
}
