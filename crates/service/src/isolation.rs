//! The fleet isolation check: the service's core invariance promise.
//!
//! A tenant must not be able to tell, from its result bytes, whether its
//! job ran alone on a pristine device or interleaved with a thousand
//! other tenants on a fleet riddled with injected faults. This module
//! proves that promise for a concrete run: every job that completed with
//! result bytes is re-run **alone**, on a fresh fault-free context of
//! the same platform as the device that executed it, and the bytes are
//! compared. Any difference is an [`IsolationDivergence`] — a typed
//! finding, never a silent pass.
//!
//! Platform matters (VideoCore IV and SGX 545 legitimately differ in
//! FP precision), which is why [`JobRecord`] carries its executing
//! device: the solo baseline reproduces the platform, and nothing else,
//! of the fleet run.

use mgpu_gles::Gl;
use mgpu_gpgpu::ResilientRunner;

use crate::error::ServiceError;
use crate::fleet::{FleetService, JobRecord, ServiceConfig};
use crate::queue::{JobId, TenantId};

/// One job whose fleet bytes differ from its solo fault-free bytes — an
/// isolation breach (or a baseline failure, which is reported the same
/// loud way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationDivergence {
    /// The tenant whose transcript diverged.
    pub tenant: TenantId,
    /// The diverging job.
    pub job: JobId,
    /// The job's label.
    pub label: String,
    /// What differed.
    pub detail: String,
}

impl std::fmt::Display for IsolationDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "isolation breach: `{}` ({} of tenant {}): {}",
            self.label, self.job, self.tenant, self.detail
        )
    }
}

/// Re-runs every completed job of `records` alone and fault-free and
/// compares bytes; see the [module docs](self). `cfg` must be the
/// configuration the fleet ran with (it supplies the platform cycle,
/// surface size and operator config the solo baseline reproduces).
///
/// Returns every divergence found (empty = the isolation promise held).
#[must_use]
pub fn check_isolation(cfg: &ServiceConfig, records: &[JobRecord]) -> Vec<IsolationDivergence> {
    let mut divergences = Vec::new();
    for record in records {
        let Ok(fleet_bytes) = &record.outcome else {
            continue;
        };
        let Some(device) = record.device else {
            continue;
        };
        match solo_bytes(cfg, record, device) {
            Ok(solo) => {
                if &solo != fleet_bytes {
                    divergences.push(IsolationDivergence {
                        tenant: record.tenant,
                        job: record.id,
                        label: record.label.clone(),
                        detail: format!(
                            "fleet bytes ({} B) != solo fault-free bytes ({} B)",
                            fleet_bytes.len(),
                            solo.len()
                        ),
                    });
                }
            }
            Err(e) => divergences.push(IsolationDivergence {
                tenant: record.tenant,
                job: record.id,
                label: record.label.clone(),
                detail: format!("solo baseline failed: {e}"),
            }),
        }
    }
    divergences
}

/// Convenience wrapper: checks a drained service against its own
/// configuration and records.
#[must_use]
pub fn check_service_isolation(service: &FleetService) -> Vec<IsolationDivergence> {
    check_isolation(service.config(), service.records())
}

/// Runs `record`'s job alone on a fresh, fault-free context of the
/// executing device's platform.
fn solo_bytes(
    cfg: &ServiceConfig,
    record: &JobRecord,
    device: usize,
) -> Result<Vec<u8>, ServiceError> {
    let mut gl = Gl::try_new(cfg.platform_for(device), cfg.surface, cfg.surface)
        .map_err(|e| ServiceError::Config(e.to_string()))?;
    let mut job = record.spec.build(&cfg.opt, record.input_seed);
    let mut runner = ResilientRunner::new(cfg.resilience);
    runner
        .run(&mut gl, job.as_mut())
        .map_err(|e| ServiceError::Config(format!("fault-free run errored: {e}")))
}
