//! Job specifications: the small, value-typed description a tenant
//! submits. The service turns a spec into a concrete
//! [`RecoverableJob`] at dispatch time, with inputs generated
//! deterministically from the job's seed — which is also what lets the
//! isolation oracle rebuild the *same* job later on a clean device.

use mgpu_gpgpu::{OptConfig, RecoverableJob, SgemmJob, SumJob};
use mgpu_prop::Rng;

use crate::error::ServiceError;

/// A tenant-submitted job shape. Costs (for fair scheduling) and inputs
/// (for execution and for the isolation re-run) both derive from the
/// spec plus a seed — a spec is pure data and can be replayed anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSpec {
    /// Element-wise sum of two `n`×`n` matrices, iterated.
    Sum {
        /// Matrix edge (the job uploads two `n`×`n` inputs).
        n: u32,
        /// Kernel iterations (= scheduling cost in passes).
        iterations: u32,
    },
    /// Blocked matrix multiplication of two `n`×`n` matrices.
    Sgemm {
        /// Matrix edge.
        n: u32,
        /// Accumulation block size; the multiply runs `n / block` passes.
        block: u32,
    },
}

impl JobSpec {
    /// The job's scheduling cost: its pass count. Deficit-round-robin
    /// spends tenant deficit in these units, so "work" means device
    /// passes, not job count — a tenant of many small jobs and a tenant
    /// of few large ones are weighed on the same scale.
    #[must_use]
    pub fn passes(&self) -> u64 {
        match *self {
            JobSpec::Sum { iterations, .. } => u64::from(iterations.max(1)),
            JobSpec::Sgemm { n, block } => {
                let b = block.max(1);
                u64::from(n / b.min(n).max(1)).max(1)
            }
        }
    }

    /// Human-readable label matching the built job's.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            JobSpec::Sum { n, iterations } => format!("sum {n}x{n} x{iterations}"),
            JobSpec::Sgemm { n, block } => format!("sgemm {n}x{n} b{block}"),
        }
    }

    /// Validates the shape at admission time, so a nonsensical spec is a
    /// typed [`ServiceError::Config`] at `submit` instead of a runtime
    /// failure charged to a device.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] for zero sizes or a block that does not
    /// divide `n`.
    pub fn validate(&self) -> Result<(), ServiceError> {
        match *self {
            JobSpec::Sum { n, iterations } => {
                if n == 0 || iterations == 0 {
                    return Err(ServiceError::Config(format!(
                        "sum spec needs n >= 1 and iterations >= 1, got n={n} x{iterations}"
                    )));
                }
            }
            JobSpec::Sgemm { n, block } => {
                if n == 0 || block == 0 || n % block != 0 {
                    return Err(ServiceError::Config(format!(
                        "sgemm spec needs block >= 1 dividing n, got n={n} b{block}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Materialises the spec into a runnable job, generating its inputs
    /// from `input_seed`. The same `(spec, input_seed, cfg)` triple always
    /// builds a byte-identical job — the foundation of the fleet
    /// isolation check.
    #[must_use]
    pub fn build(&self, cfg: &OptConfig, input_seed: u64) -> Box<dyn RecoverableJob> {
        let mut rng = Rng::new(input_seed);
        match *self {
            JobSpec::Sum { n, iterations } => {
                let len = n as usize * n as usize;
                let a = random_inputs(&mut rng, len);
                let b = random_inputs(&mut rng, len);
                Box::new(SumJob::new(cfg, n, &a, &b, iterations as usize))
            }
            JobSpec::Sgemm { n, block } => {
                let len = n as usize * n as usize;
                let a = random_inputs(&mut rng, len);
                let b = random_inputs(&mut rng, len);
                Box::new(SgemmJob::new(cfg, n, block, &a, &b))
            }
        }
    }
}

/// Inputs in `[0, 1)`: inside both operators' default input range, and
/// with sums/products that stay inside their default output ranges.
fn random_inputs(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.f32(0.0, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_match_job_shapes() {
        assert_eq!(
            JobSpec::Sum {
                n: 8,
                iterations: 3
            }
            .passes(),
            3
        );
        assert_eq!(JobSpec::Sgemm { n: 8, block: 2 }.passes(), 4);
        assert_eq!(JobSpec::Sgemm { n: 8, block: 8 }.passes(), 1);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(JobSpec::Sum {
            n: 0,
            iterations: 1
        }
        .validate()
        .is_err());
        assert!(JobSpec::Sum {
            n: 8,
            iterations: 0
        }
        .validate()
        .is_err());
        assert!(JobSpec::Sgemm { n: 8, block: 3 }.validate().is_err());
        assert!(JobSpec::Sgemm { n: 8, block: 0 }.validate().is_err());
        assert!(JobSpec::Sgemm { n: 8, block: 4 }.validate().is_ok());
    }

    #[test]
    fn build_is_deterministic_in_the_seed() {
        let cfg = OptConfig::baseline().without_swap();
        let spec = JobSpec::Sum {
            n: 4,
            iterations: 2,
        };
        let a = spec.build(&cfg, 99).label();
        let b = spec.build(&cfg, 99).label();
        assert_eq!(a, b);
        assert_eq!(spec.label(), a);
    }
}
