//! Job specifications: the small, value-typed description a tenant
//! submits. The service turns a spec into a concrete
//! [`RecoverableJob`] at dispatch time, with inputs generated
//! deterministically from the job's seed — which is also what lets the
//! isolation oracle rebuild the *same* job later on a clean device.

use mgpu_gpgpu::{OptConfig, RecoverableJob, SgemmJob, SumJob};
use mgpu_prop::Rng;
use mgpu_workloads::{DenseTraining, GaussianPyramid, JacobiInpaint, WorkloadJob};

use crate::error::ServiceError;

/// A tenant-submitted job shape. Costs (for fair scheduling) and inputs
/// (for execution and for the isolation re-run) both derive from the
/// spec plus a seed — a spec is pure data and can be replayed anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSpec {
    /// Element-wise sum of two `n`×`n` matrices, iterated.
    Sum {
        /// Matrix edge (the job uploads two `n`×`n` inputs).
        n: u32,
        /// Kernel iterations (= scheduling cost in passes).
        iterations: u32,
    },
    /// Blocked matrix multiplication of two `n`×`n` matrices.
    Sgemm {
        /// Matrix edge.
        n: u32,
        /// Accumulation block size; the multiply runs `n / block` passes.
        block: u32,
    },
    /// Separable-Gaussian image pyramid over a seeded `n`×`n` RGBA8
    /// image — two blur passes per level.
    Pyramid {
        /// Image edge.
        n: u32,
        /// Pyramid depth; the dilation of the deepest level
        /// (`2^(levels-1)`) must stay below `n`.
        levels: u32,
    },
    /// Fixed-count weighted-Jacobi stencil solve on an `n`×`n` grid.
    Jacobi {
        /// Grid edge.
        n: u32,
        /// Iteration count (one pass each).
        iterations: u32,
    },
    /// Dense-layer SGD training loop on `n`×`n` encoded matrices.
    Train {
        /// Layer dimension.
        n: u32,
        /// Matmul chunk size (must divide `n`).
        block: u32,
        /// SGD step count; each step is `2·(n/block) + 4` passes.
        steps: u32,
    },
}

impl JobSpec {
    /// The job's scheduling cost: its pass count. Deficit-round-robin
    /// spends tenant deficit in these units, so "work" means device
    /// passes, not job count — a tenant of many small jobs and a tenant
    /// of few large ones are weighed on the same scale.
    #[must_use]
    pub fn passes(&self) -> u64 {
        match *self {
            JobSpec::Sum { iterations, .. } => u64::from(iterations.max(1)),
            JobSpec::Sgemm { n, block } => {
                let b = block.max(1);
                u64::from(n / b.min(n).max(1)).max(1)
            }
            JobSpec::Pyramid { levels, .. } => u64::from(levels.max(1)) * 2,
            JobSpec::Jacobi { iterations, .. } => u64::from(iterations.max(1)),
            JobSpec::Train { n, block, steps } => {
                let chunks = u64::from(n / block.min(n).max(1)).max(1);
                (2 * chunks + 4) * u64::from(steps.max(1))
            }
        }
    }

    /// Human-readable label matching the built job's.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            JobSpec::Sum { n, iterations } => format!("sum {n}x{n} x{iterations}"),
            JobSpec::Sgemm { n, block } => format!("sgemm {n}x{n} b{block}"),
            // The workload labels match `Workload::name`, which is what
            // `WorkloadJob::label` reports.
            JobSpec::Pyramid { n, levels } => format!("pyramid n{n} l{levels}"),
            JobSpec::Jacobi { n, iterations } => format!("jacobi n{n} i{iterations}"),
            JobSpec::Train { n, block, steps } => format!("train n{n} b{block} s{steps}"),
        }
    }

    /// Validates the shape at admission time, so a nonsensical spec is a
    /// typed [`ServiceError::Config`] at `submit` instead of a runtime
    /// failure charged to a device.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] for zero sizes or a block that does not
    /// divide `n`.
    pub fn validate(&self) -> Result<(), ServiceError> {
        match *self {
            JobSpec::Sum { n, iterations } => {
                if n == 0 || iterations == 0 {
                    return Err(ServiceError::Config(format!(
                        "sum spec needs n >= 1 and iterations >= 1, got n={n} x{iterations}"
                    )));
                }
            }
            JobSpec::Sgemm { n, block } => {
                if n == 0 || block == 0 || n % block != 0 {
                    return Err(ServiceError::Config(format!(
                        "sgemm spec needs block >= 1 dividing n, got n={n} b{block}"
                    )));
                }
            }
            JobSpec::Pyramid { n, levels } => {
                if levels == 0 || levels > 31 || (1u32 << (levels - 1)) >= n {
                    return Err(ServiceError::Config(format!(
                        "pyramid spec needs levels >= 1 with 2^(levels-1) < n, \
                         got n={n} l{levels}"
                    )));
                }
            }
            JobSpec::Jacobi { n, iterations } => {
                if n == 0 || iterations == 0 {
                    return Err(ServiceError::Config(format!(
                        "jacobi spec needs n >= 1 and iterations >= 1, got n={n} i{iterations}"
                    )));
                }
            }
            JobSpec::Train { n, block, steps } => {
                if n == 0 || block == 0 || n % block != 0 || steps == 0 {
                    return Err(ServiceError::Config(format!(
                        "train spec needs steps >= 1 and block >= 1 dividing n, \
                         got n={n} b{block} s{steps}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Materialises the spec into a runnable job, generating its inputs
    /// from `input_seed`. The same `(spec, input_seed, cfg)` triple always
    /// builds a byte-identical job — the foundation of the fleet
    /// isolation check.
    #[must_use]
    pub fn build(&self, cfg: &OptConfig, input_seed: u64) -> Box<dyn RecoverableJob> {
        match *self {
            JobSpec::Sum { n, iterations } => {
                let mut rng = Rng::new(input_seed);
                let len = n as usize * n as usize;
                let a = random_inputs(&mut rng, len);
                let b = random_inputs(&mut rng, len);
                Box::new(SumJob::new(cfg, n, &a, &b, iterations as usize))
            }
            JobSpec::Sgemm { n, block } => {
                let mut rng = Rng::new(input_seed);
                let len = n as usize * n as usize;
                let a = random_inputs(&mut rng, len);
                let b = random_inputs(&mut rng, len);
                Box::new(SgemmJob::new(cfg, n, block, &a, &b))
            }
            // The workload families generate their own inputs from the
            // seed, so the spec hands it straight through.
            JobSpec::Pyramid { n, levels } => Box::new(WorkloadJob::new(
                cfg,
                &GaussianPyramid::new(n, levels, input_seed),
            )),
            JobSpec::Jacobi { n, iterations } => Box::new(WorkloadJob::new(
                cfg,
                &JacobiInpaint::new(n, iterations, input_seed),
            )),
            JobSpec::Train { n, block, steps } => Box::new(WorkloadJob::new(
                cfg,
                &DenseTraining::new(n, block, steps, input_seed),
            )),
        }
    }
}

/// Inputs in `[0, 1)`: inside both operators' default input range, and
/// with sums/products that stay inside their default output ranges.
fn random_inputs(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.f32(0.0, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_match_job_shapes() {
        assert_eq!(
            JobSpec::Sum {
                n: 8,
                iterations: 3
            }
            .passes(),
            3
        );
        assert_eq!(JobSpec::Sgemm { n: 8, block: 2 }.passes(), 4);
        assert_eq!(JobSpec::Sgemm { n: 8, block: 8 }.passes(), 1);
        // Two blur passes per level.
        assert_eq!(JobSpec::Pyramid { n: 8, levels: 3 }.passes(), 6);
        assert_eq!(
            JobSpec::Jacobi {
                n: 8,
                iterations: 7
            }
            .passes(),
            7
        );
        // (2·(n/block) + 4) passes per step.
        assert_eq!(
            JobSpec::Train {
                n: 8,
                block: 4,
                steps: 3
            }
            .passes(),
            24
        );
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(JobSpec::Sum {
            n: 0,
            iterations: 1
        }
        .validate()
        .is_err());
        assert!(JobSpec::Sum {
            n: 8,
            iterations: 0
        }
        .validate()
        .is_err());
        assert!(JobSpec::Sgemm { n: 8, block: 3 }.validate().is_err());
        assert!(JobSpec::Sgemm { n: 8, block: 0 }.validate().is_err());
        assert!(JobSpec::Sgemm { n: 8, block: 4 }.validate().is_ok());
        // Deepest level's dilation (2^(levels-1)) must stay inside the image.
        assert!(JobSpec::Pyramid { n: 8, levels: 0 }.validate().is_err());
        assert!(JobSpec::Pyramid { n: 8, levels: 4 }.validate().is_err());
        assert!(JobSpec::Pyramid { n: 8, levels: 3 }.validate().is_ok());
        assert!(JobSpec::Jacobi {
            n: 8,
            iterations: 0
        }
        .validate()
        .is_err());
        assert!(JobSpec::Jacobi {
            n: 8,
            iterations: 4
        }
        .validate()
        .is_ok());
        assert!(JobSpec::Train {
            n: 8,
            block: 3,
            steps: 1
        }
        .validate()
        .is_err());
        assert!(JobSpec::Train {
            n: 8,
            block: 2,
            steps: 0
        }
        .validate()
        .is_err());
        assert!(JobSpec::Train {
            n: 8,
            block: 2,
            steps: 2
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn workload_spec_labels_match_built_jobs() {
        let cfg = OptConfig::baseline().without_swap();
        for spec in [
            JobSpec::Pyramid { n: 8, levels: 2 },
            JobSpec::Jacobi {
                n: 8,
                iterations: 3,
            },
            JobSpec::Train {
                n: 8,
                block: 4,
                steps: 1,
            },
        ] {
            spec.validate().expect("valid spec");
            assert_eq!(spec.label(), spec.build(&cfg, 5).label());
        }
    }

    #[test]
    fn build_is_deterministic_in_the_seed() {
        let cfg = OptConfig::baseline().without_swap();
        let spec = JobSpec::Sum {
            n: 4,
            iterations: 2,
        };
        let a = spec.build(&cfg, 99).label();
        let b = spec.build(&cfg, 99).label();
        assert_eq!(a, b);
        assert_eq!(spec.label(), a);
    }
}
