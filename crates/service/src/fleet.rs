//! The fleet scheduler: N simulated devices, per-tenant queues, and a
//! deterministic discrete-event loop in simulated time.
//!
//! ## Determinism argument
//!
//! Every scheduling decision is a pure function of the configuration and
//! the (time-ordered) submission sequence: tenant visiting order is
//! deficit-round-robin over a `Vec`, device selection is a total order
//! (queue length, next-free instant, device index), breaker transitions
//! fire at computed simulated instants, fault plans are seeded per
//! device, and job inputs derive from the service seed and the job id.
//! No wall-clock time, no host thread count (the shared executor is a
//! wall-clock-only concern; the GL stack's outputs are byte-identical
//! across thread counts by the determinism invariant), no hash-map
//! iteration. Same seed, same submissions ⇒ same transcript, byte for
//! byte.

use std::collections::VecDeque;

use mgpu_gles::{ExecConfig, FaultPlan, Gl, GlError};
use mgpu_gpgpu::{GpgpuError, OptConfig, ResilienceConfig, ResilientRunner};
use mgpu_prop::Rng;
use mgpu_tbdr::{Platform, SimTime};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::error::{DeadlineError, ServiceError};
use crate::knobs::service_knobs;
use crate::queue::{JobId, QueuedJob, Tenant, TenantId};
use crate::spec::JobSpec;

/// Fleet-wide configuration. `Default` gives a small mixed fleet
/// (VideoCore IV / SGX 545 alternating) with no injected faults.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulated devices in the fleet (>= 1).
    pub devices: usize,
    /// Platform cycle: device `i` simulates `platforms[i % len]`.
    pub platforms: Vec<Platform>,
    /// Square surface edge of every device context.
    pub surface: u32,
    /// Per-tenant admission bound: a tenant with this many queued jobs
    /// has further submissions rejected.
    pub queue_depth: usize,
    /// Per-device dispatch look-ahead: how many jobs may wait at a
    /// device before the DRR refill stops feeding it.
    pub device_queue_depth: usize,
    /// DRR quantum, in passes credited per tenant visit (scaled by the
    /// tenant's weight).
    pub quantum: u64,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Resilient-runner tuning applied to every job.
    pub resilience: ResilienceConfig,
    /// GPGPU operator configuration applied to every job.
    pub opt: OptConfig,
    /// Service seed: per-job input seeds derive from it.
    pub seed: u64,
    /// Per-device fault plans (`plans[i % len]`; an empty vec = clean
    /// fleet, `None` entries = that device is clean).
    pub fault_plans: Vec<Option<FaultPlan>>,
    /// Multiplex every device over one shared host-thread executor
    /// (wall-clock only; results and simulated timing are unaffected).
    pub share_executor: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            devices: 4,
            platforms: Platform::paper_pair().to_vec(),
            surface: 32,
            queue_depth: 64,
            device_queue_depth: 4,
            quantum: 4,
            breaker: BreakerConfig::default(),
            resilience: ResilienceConfig::default(),
            opt: OptConfig::baseline().without_swap(),
            seed: 1,
            fault_plans: Vec::new(),
            share_executor: true,
        }
    }
}

impl ServiceConfig {
    /// The default configuration with any `MGPU_SERVICE_*` environment
    /// overrides applied (from the strict once-per-process snapshot).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Env`] when any `MGPU_SERVICE_*` value fails its
    /// grammar.
    pub fn from_env() -> Result<Self, ServiceError> {
        let knobs = match service_knobs() {
            Ok(k) => *k,
            Err(e) => return Err(ServiceError::Env(e.clone())),
        };
        let mut cfg = ServiceConfig::default();
        if let Some(n) = knobs.devices {
            cfg.devices = n;
        }
        if let Some(depth) = knobs.queue_depth {
            cfg.queue_depth = depth;
        }
        if let Some(threshold) = knobs.breaker {
            cfg.breaker.threshold = threshold;
        }
        if let Some(seed) = knobs.seed {
            cfg.seed = seed;
        }
        Ok(cfg)
    }

    /// The platform simulated by device `index`.
    ///
    /// # Panics
    ///
    /// Panics if `platforms` is empty (rejected by
    /// [`FleetService::new`]).
    #[must_use]
    pub fn platform_for(&self, index: usize) -> Platform {
        self.platforms[index % self.platforms.len()].clone()
    }

    /// The fault plan installed on device `index`, if any.
    #[must_use]
    pub fn fault_plan_for(&self, index: usize) -> Option<FaultPlan> {
        if self.fault_plans.is_empty() {
            return None;
        }
        self.fault_plans[index % self.fault_plans.len()].clone()
    }
}

/// The transcript entry of one submission: where and when it ran and
/// what came back. The per-tenant sequence of records (ids, outcomes,
/// bytes) is the tenant's *transcript* — the unit of the isolation
/// promise.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The submission.
    pub id: JobId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The job's label.
    pub label: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Seed its inputs derive from.
    pub input_seed: u64,
    /// Executing device, if it reached one.
    pub device: Option<usize>,
    /// Simulated submission instant.
    pub submitted: SimTime,
    /// When it started on the device, if it did.
    pub started: Option<SimTime>,
    /// When it finished (or was abandoned), if it got that far.
    pub finished: Option<SimTime>,
    /// Result bytes, or the typed failure.
    pub outcome: Result<Vec<u8>, ServiceError>,
    /// Recovery actions the runner took while it ran.
    pub recovery_events: usize,
    /// Faults injected while it ran.
    pub faults_seen: usize,
}

impl JobRecord {
    /// Submission-to-finish simulated latency, when the job finished.
    #[must_use]
    pub fn latency(&self) -> Option<SimTime> {
        self.finished.map(|f| f.saturating_sub(self.submitted))
    }
}

/// Aggregate counters of a service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Submissions offered (admitted + rejected).
    pub submitted: u64,
    /// Submissions past admission control.
    pub admitted: u64,
    /// Submissions bounced by admission control.
    pub rejected: u64,
    /// Jobs that completed with result bytes.
    pub completed_ok: u64,
    /// Jobs that failed after running (exhausted or non-recoverable).
    pub failed: u64,
    /// Jobs that missed their deadline (queued or ran).
    pub deadline_missed: u64,
    /// Breaker trips (device quarantines).
    pub quarantines: u64,
    /// Half-open probe slots granted after cooldowns.
    pub probes: u64,
    /// Jobs displaced from a quarantined device to healthy peers.
    pub displaced: u64,
    /// Simulated end of the last finished job.
    pub makespan: SimTime,
}

struct Device {
    gl: Gl,
    /// Instant the device finishes its current work.
    free_at: SimTime,
    queue: VecDeque<QueuedJob>,
    breaker: CircuitBreaker,
    /// Exec config restored after every job (the resilient runner's
    /// engine fallback mutates it persistently).
    base_exec: ExecConfig,
    jobs_run: u64,
}

/// The multi-tenant fleet scheduler; see the [crate docs](crate) for the
/// architecture and the [module docs](self) for the determinism
/// argument.
pub struct FleetService {
    cfg: ServiceConfig,
    devices: Vec<Device>,
    tenants: Vec<Tenant>,
    /// Jobs drained from quarantined devices, awaiting re-placement
    /// (FIFO, ahead of fresh DRR work — their deficit was already
    /// spent).
    displaced: VecDeque<QueuedJob>,
    records: Vec<JobRecord>,
    now: SimTime,
    next_job: u64,
    /// DRR position and whether the tenant at the cursor has an open
    /// (already credited) turn.
    drr_cursor: usize,
    drr_turn_open: bool,
    quarantines: u64,
    displaced_count: u64,
    last_arrival: SimTime,
    stats_rejected: u64,
    stats_deadline: u64,
    stats_failed: u64,
}

impl FleetService {
    /// Builds the fleet: one `Gl` context per device on its platform,
    /// with its fault plan installed, all multiplexed over a shared
    /// executor when configured.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] for zero devices/queue bounds or an
    /// empty platform cycle; [`ServiceError::Env`] when an `MGPU_*`
    /// execution knob fails validation at context creation.
    pub fn new(cfg: ServiceConfig) -> Result<Self, ServiceError> {
        if cfg.devices == 0 {
            return Err(ServiceError::Config(
                "fleet needs at least one device".to_owned(),
            ));
        }
        if cfg.platforms.is_empty() {
            return Err(ServiceError::Config("platform cycle is empty".to_owned()));
        }
        if cfg.queue_depth == 0 || cfg.device_queue_depth == 0 {
            return Err(ServiceError::Config("queue bounds must be >= 1".to_owned()));
        }
        if cfg.quantum == 0 {
            return Err(ServiceError::Config("DRR quantum must be >= 1".to_owned()));
        }
        let mut devices = Vec::with_capacity(cfg.devices);
        let mut shared_executor = None;
        for index in 0..cfg.devices {
            let mut gl = Gl::try_new(cfg.platform_for(index), cfg.surface, cfg.surface).map_err(
                |e| match e {
                    GlError::InvalidEnv(env) => ServiceError::Env(env),
                    other => ServiceError::Config(other.to_string()),
                },
            )?;
            if cfg.share_executor {
                match &shared_executor {
                    None => shared_executor = Some(gl.executor()),
                    Some(executor) => gl.install_executor(executor.clone()),
                }
            }
            if let Some(plan) = cfg.fault_plan_for(index) {
                gl.install_faults(plan);
            }
            let base_exec = gl.exec_config();
            devices.push(Device {
                gl,
                free_at: SimTime::ZERO,
                queue: VecDeque::new(),
                breaker: CircuitBreaker::new(cfg.breaker),
                base_exec,
                jobs_run: 0,
            });
        }
        Ok(FleetService {
            cfg,
            devices,
            tenants: Vec::new(),
            displaced: VecDeque::new(),
            records: Vec::new(),
            now: SimTime::ZERO,
            next_job: 0,
            drr_cursor: 0,
            drr_turn_open: false,
            quarantines: 0,
            displaced_count: 0,
            last_arrival: SimTime::ZERO,
            stats_rejected: 0,
            stats_deadline: 0,
            stats_failed: 0,
        })
    }

    /// The configuration the fleet was built with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Registers a tenant with QoS `weight` (clamped to >= 1) and
    /// returns its id.
    pub fn add_tenant(&mut self, weight: u32) -> TenantId {
        let id = TenantId(u32::try_from(self.tenants.len()).unwrap_or(u32::MAX));
        self.tenants.push(Tenant::new(weight));
        id
    }

    /// Submits a job arriving at simulated instant `arrival` with an
    /// optional *relative* deadline (measured from arrival). Arrivals
    /// must be non-decreasing: the scheduler advances simulated time to
    /// each arrival as it is offered.
    ///
    /// A full tenant queue answers [`ServiceError::Rejected`] — the
    /// rejection is also recorded in the transcript — and admission
    /// errors ([`ServiceError::UnknownTenant`], a spec that fails
    /// validation, out-of-order arrivals) are returned without a record.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`], [`ServiceError::UnknownTenant`] or
    /// [`ServiceError::Config`] as above.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        spec: JobSpec,
        arrival: SimTime,
        deadline: Option<SimTime>,
    ) -> Result<JobId, ServiceError> {
        let tenant_index = tenant.0 as usize;
        if tenant_index >= self.tenants.len() {
            return Err(ServiceError::UnknownTenant(tenant));
        }
        spec.validate()?;
        if arrival < self.last_arrival {
            return Err(ServiceError::Config(format!(
                "submissions must be time-ordered: arrival {arrival:?} precedes {:?}",
                self.last_arrival
            )));
        }
        self.last_arrival = arrival;
        self.advance_to(arrival);
        self.now = self.now.max(arrival);

        let id = JobId(self.next_job);
        self.next_job += 1;
        let input_seed =
            Rng::new(self.cfg.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        self.tenants[tenant_index].submitted += 1;

        if self.tenants[tenant_index].queue.len() >= self.cfg.queue_depth {
            self.tenants[tenant_index].rejected += 1;
            self.stats_rejected += 1;
            let err = ServiceError::Rejected {
                tenant,
                depth: self.cfg.queue_depth,
            };
            self.records.push(JobRecord {
                id,
                tenant,
                label: spec.label(),
                spec,
                input_seed,
                device: None,
                submitted: arrival,
                started: None,
                finished: Some(arrival),
                outcome: Err(err.clone()),
                recovery_events: 0,
                faults_seen: 0,
            });
            return Err(err);
        }

        let cost = spec.passes();
        self.tenants[tenant_index].queue.push_back(QueuedJob {
            id,
            tenant,
            spec,
            input_seed,
            submitted: arrival,
            deadline: deadline.map(|d| arrival + d),
            cost,
        });
        Ok(id)
    }

    /// Runs the fleet until every admitted job has completed (with
    /// result bytes or a typed error). Never hangs: breakers always
    /// release after their cooldown, failed probes consume a job, and
    /// the job population is finite.
    pub fn drain(&mut self) {
        self.advance_to(SimTime::MAX);
    }

    /// Every record so far, in completion order (rejections appear at
    /// their submission instant).
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// One tenant's transcript: its records in completion order.
    pub fn tenant_records(&self, tenant: TenantId) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(move |r| r.tenant == tenant)
    }

    /// Passes of successfully completed work per tenant (the fairness
    /// metric), indexed by tenant id.
    #[must_use]
    pub fn work_done(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.work_done).collect()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let completed_ok = self.tenants.iter().map(|t| t.completed_ok).sum();
        let admitted = self.tenants.iter().map(|t| t.submitted - t.rejected).sum();
        ServiceStats {
            submitted: self.tenants.iter().map(|t| t.submitted).sum(),
            admitted,
            rejected: self.stats_rejected,
            completed_ok,
            failed: self.stats_failed,
            deadline_missed: self.stats_deadline,
            quarantines: self.quarantines,
            probes: self.devices.iter().map(|d| d.breaker.probes()).sum(),
            displaced: self.displaced_count,
            makespan: self
                .records
                .iter()
                .filter_map(|r| r.finished)
                .max()
                .unwrap_or(SimTime::ZERO),
        }
    }

    /// Jobs executed per device (probe and failed runs included),
    /// indexed by device.
    #[must_use]
    pub fn device_jobs(&self) -> Vec<u64> {
        self.devices.iter().map(|d| d.jobs_run).collect()
    }

    /// Simulated latencies (submission → finish) of every job that
    /// completed with result bytes, in completion order.
    #[must_use]
    pub fn ok_latencies(&self) -> Vec<SimTime> {
        self.records
            .iter()
            .filter(|r| r.outcome.is_ok())
            .filter_map(JobRecord::latency)
            .collect()
    }

    // ---- the discrete-event loop ---------------------------------------

    /// Advances simulated time to `limit`, running every dispatch that
    /// starts strictly before it and every breaker release due on the
    /// way.
    fn advance_to(&mut self, limit: SimTime) {
        loop {
            self.release_due_breakers();
            self.place_displaced();
            self.refill();

            let dispatch = self.next_dispatch();
            let next_release = if self.has_pending_work() {
                self.devices
                    .iter()
                    .filter_map(|d| d.breaker.open_until())
                    .min()
            } else {
                None
            };

            let next_event = match (dispatch, next_release) {
                (Some((start, _)), Some(release)) => Some(start.min(release)),
                (Some((start, _)), None) => Some(start),
                (None, Some(release)) => Some(release),
                (None, None) => None,
            };
            match next_event {
                None => {
                    // Nothing schedulable: with no pending work this is
                    // quiescence; stranded work would be a scheduler bug
                    // (breakers always release, so it cannot happen).
                    debug_assert!(
                        !self.has_pending_work(),
                        "event loop stalled with pending work"
                    );
                    if limit != SimTime::MAX {
                        self.now = self.now.max(limit);
                    }
                    return;
                }
                Some(t) if t >= limit => {
                    if limit != SimTime::MAX {
                        self.now = self.now.max(limit);
                    }
                    return;
                }
                Some(t) => {
                    self.now = self.now.max(t);
                    match dispatch {
                        Some((start, device)) if start <= t => self.run_job(device),
                        // A breaker released first; loop to re-plan.
                        _ => {}
                    }
                }
            }
        }
    }

    fn has_pending_work(&self) -> bool {
        !self.displaced.is_empty()
            || self.tenants.iter().any(|t| !t.queue.is_empty())
            || self.devices.iter().any(|d| !d.queue.is_empty())
    }

    fn release_due_breakers(&mut self) {
        for device in &mut self.devices {
            device.breaker.release_due(self.now);
        }
    }

    /// Room left at device `index` for routed jobs: bounded look-ahead
    /// when closed, exactly one probe slot when half-open, none when
    /// open.
    fn device_room(&self, index: usize) -> usize {
        let device = &self.devices[index];
        let cap = match device.breaker.state() {
            BreakerState::Open { .. } => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Closed => self.cfg.device_queue_depth,
        };
        cap.saturating_sub(device.queue.len())
    }

    /// The device to route the next job to: least loaded, ties broken by
    /// earliest free instant then index — a total, deterministic order.
    fn pick_device(&self) -> Option<usize> {
        (0..self.devices.len())
            .filter(|&i| self.device_room(i) > 0)
            .min_by_key(|&i| (self.devices[i].queue.len(), self.devices[i].free_at, i))
    }

    fn route_to_device(&mut self, job: QueuedJob) -> bool {
        match self.pick_device() {
            Some(index) => {
                self.devices[index].queue.push_back(job);
                true
            }
            None => false,
        }
    }

    /// Re-places jobs displaced by a quarantine, oldest first.
    fn place_displaced(&mut self) {
        while let Some(job) = self.displaced.front() {
            let job = job.clone();
            if !self.route_to_device(job) {
                return;
            }
            self.displaced.pop_front();
        }
    }

    /// Deficit-round-robin refill: feeds device queues from tenant
    /// queues. See [`crate::queue`] for the fairness contract.
    fn refill(&mut self) {
        let tenant_count = self.tenants.len();
        if tenant_count == 0 {
            return;
        }
        loop {
            if self.pick_device().is_none() {
                return; // no room anywhere; turn (if open) stays open
            }
            // Find the next backlogged tenant, clearing the deficit of
            // empty queues as DRR requires.
            let mut steps = 0;
            while steps < tenant_count {
                let tenant = &mut self.tenants[self.drr_cursor];
                if !tenant.queue.is_empty() {
                    break;
                }
                tenant.deficit = 0;
                self.drr_cursor = (self.drr_cursor + 1) % tenant_count;
                self.drr_turn_open = false;
                steps += 1;
            }
            if self.tenants[self.drr_cursor].queue.is_empty() {
                return; // nothing backlogged anywhere
            }

            if !self.drr_turn_open {
                let tenant = &mut self.tenants[self.drr_cursor];
                tenant.deficit = tenant
                    .deficit
                    .saturating_add(self.cfg.quantum.saturating_mul(u64::from(tenant.weight)));
                self.drr_turn_open = true;
            }

            // Serve the head while the deficit covers it and a device
            // has room.
            loop {
                let tenant = &self.tenants[self.drr_cursor];
                let Some(head) = tenant.queue.front() else {
                    // Queue emptied: deficit resets, turn over.
                    self.tenants[self.drr_cursor].deficit = 0;
                    self.drr_cursor = (self.drr_cursor + 1) % tenant_count;
                    self.drr_turn_open = false;
                    break;
                };
                if head.cost > tenant.deficit {
                    // Deficit spent: turn over, credit again next visit.
                    self.drr_cursor = (self.drr_cursor + 1) % tenant_count;
                    self.drr_turn_open = false;
                    break;
                }
                if self.pick_device().is_none() {
                    return; // no room: pause mid-turn, keep the credit
                }
                let tenant = &mut self.tenants[self.drr_cursor];
                let job = match tenant.queue.pop_front() {
                    Some(job) => job,
                    None => break,
                };
                tenant.deficit -= job.cost;
                let routed = self.route_to_device(job);
                debug_assert!(routed, "pick_device succeeded just above");
            }
        }
    }

    /// The next job to run: among devices whose breaker accepts and
    /// whose queue is non-empty, the earliest start instant (ties by
    /// device index).
    fn next_dispatch(&self) -> Option<(SimTime, usize)> {
        (0..self.devices.len())
            .filter(|&i| self.devices[i].breaker.accepts() && !self.devices[i].queue.is_empty())
            .map(|i| (self.devices[i].free_at.max(self.now), i))
            .min()
    }

    /// Pops and executes the head job of device `index` at the current
    /// instant.
    fn run_job(&mut self, index: usize) {
        let Some(job) = self.devices[index].queue.pop_front() else {
            return;
        };
        let start = self.devices[index].free_at.max(self.now);

        // Deadline fast-fail: a job already past its deadline is failed
        // without burning device time (and without charging the breaker).
        if let Some(deadline) = job.deadline {
            if start >= deadline {
                self.stats_deadline += 1;
                let err = DeadlineError {
                    tenant: job.tenant,
                    job: job.id,
                    label: job.spec.label(),
                    deadline,
                    started: None,
                    finished: None,
                    fault_trail: Vec::new(),
                    recovery: Vec::new(),
                };
                self.records.push(JobRecord {
                    id: job.id,
                    tenant: job.tenant,
                    label: job.spec.label(),
                    spec: job.spec,
                    input_seed: job.input_seed,
                    device: Some(index),
                    submitted: job.submitted,
                    started: None,
                    finished: Some(start),
                    outcome: Err(ServiceError::DeadlineExceeded(Box::new(err))),
                    recovery_events: 0,
                    faults_seen: 0,
                });
                return;
            }
        }

        let device = &mut self.devices[index];
        let elapsed_before = device.gl.elapsed();
        let trail_before = device.gl.fault_trail().len();

        let mut runner = ResilientRunner::new(self.cfg.resilience);
        let mut recoverable = job.spec.build(&self.cfg.opt, job.input_seed);
        let result = runner.run(&mut device.gl, recoverable.as_mut());

        // The runner's engine fallback mutates the exec config
        // persistently; the next tenant's job must not inherit it.
        if device.gl.exec_config() != device.base_exec {
            device.gl.set_exec_config(device.base_exec);
        }
        // Likewise, a run abandoned with the context lost must not tax
        // the next job with the recovery.
        if device.gl.context_lost() {
            device.gl.recreate();
        }

        let elapsed_after = device.gl.elapsed();
        let finish = start + elapsed_after.saturating_sub(elapsed_before);
        device.free_at = finish;
        device.jobs_run += 1;
        let recovery = runner.events().to_vec();
        let fault_slice = device.gl.fault_trail()[trail_before..].to_vec();

        let tenant = &mut self.tenants[job.tenant.0 as usize];
        let outcome = match result {
            Ok(bytes) => match job.deadline {
                // The device functioned (breaker-wise) even when late.
                Some(deadline) if finish > deadline => {
                    self.stats_deadline += 1;
                    device.breaker.on_success();
                    Err(ServiceError::DeadlineExceeded(Box::new(DeadlineError {
                        tenant: job.tenant,
                        job: job.id,
                        label: job.spec.label(),
                        deadline,
                        started: Some(start),
                        finished: Some(finish),
                        fault_trail: fault_slice.clone(),
                        recovery: recovery.clone(),
                    })))
                }
                _ => {
                    device.breaker.on_success();
                    tenant.completed_ok += 1;
                    tenant.work_done += job.cost;
                    Ok(bytes)
                }
            },
            Err(GpgpuError::Exhausted(e)) => {
                self.stats_failed += 1;
                if device.breaker.on_exhausted(finish) {
                    self.quarantines += 1;
                    let drained: Vec<QueuedJob> = device.queue.drain(..).collect();
                    self.displaced_count += drained.len() as u64;
                    self.displaced.extend(drained);
                }
                Err(ServiceError::Exhausted(e))
            }
            Err(other) => {
                // Not the device's fault (config errors etc.): the
                // breaker streak is left untouched.
                self.stats_failed += 1;
                Err(ServiceError::Job {
                    tenant: job.tenant,
                    job: job.id,
                    detail: other.to_string(),
                })
            }
        };

        self.records.push(JobRecord {
            id: job.id,
            tenant: job.tenant,
            label: job.spec.label(),
            spec: job.spec,
            input_seed: job.input_seed,
            device: Some(index),
            submitted: job.submitted,
            started: Some(start),
            finished: Some(finish),
            outcome,
            recovery_events: recovery.len(),
            faults_seen: fault_slice.len(),
        });
    }
}
