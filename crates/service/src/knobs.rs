//! `MGPU_SERVICE_*` environment knobs, on the same strict contract as
//! the `MGPU_*` execution knobs in `mgpu-gles`: the whole family is read
//! and validated **once per process**, and an invalid value is a typed
//! [`EnvKnobError`] at [`crate::ServiceConfig::from_env`] — never a
//! silent fallback to defaults, and never a mid-process change of
//! behaviour through `set_var`.

use std::sync::OnceLock;

use mgpu_gles::EnvKnobError;

/// Environment variable overriding the fleet's device count.
pub const DEVICES_ENV: &str = "MGPU_SERVICE_DEVICES";
/// Environment variable overriding the per-tenant admission queue depth.
pub const QUEUE_DEPTH_ENV: &str = "MGPU_SERVICE_QUEUE_DEPTH";
/// Environment variable overriding the circuit-breaker trip threshold
/// (consecutive exhausted recoveries).
pub const BREAKER_ENV: &str = "MGPU_SERVICE_BREAKER";
/// Environment variable overriding the service seed (device fault plans
/// and per-job input seeds derive from it).
pub const SEED_ENV: &str = "MGPU_SERVICE_SEED";

const POSITIVE_GRAMMAR: &str = "expected a positive integer";
const SEED_GRAMMAR: &str = "expected an unsigned 64-bit integer";

/// Snapshot of every `MGPU_SERVICE_*` knob. `None` = not set (the
/// config's programmatic value stands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ServiceKnobs {
    pub devices: Option<usize>,
    pub queue_depth: Option<usize>,
    pub breaker: Option<u32>,
    pub seed: Option<u64>,
}

impl ServiceKnobs {
    /// Resolves the knob snapshot through `get` (the environment in
    /// production, a table in the grammar property tests).
    pub(crate) fn resolve(
        get: impl Fn(&'static str) -> Option<String>,
    ) -> Result<ServiceKnobs, EnvKnobError> {
        Ok(ServiceKnobs {
            devices: resolve_positive(&get, DEVICES_ENV)?,
            queue_depth: resolve_positive(&get, QUEUE_DEPTH_ENV)?,
            breaker: match resolve_positive(&get, BREAKER_ENV)? {
                Some(n) => Some(u32::try_from(n).map_err(|_| EnvKnobError {
                    var: BREAKER_ENV,
                    value: n.to_string(),
                    reason: POSITIVE_GRAMMAR.to_owned(),
                })?),
                None => None,
            },
            seed: match get(SEED_ENV) {
                Some(s) => Some(s.trim().parse::<u64>().map_err(|_| EnvKnobError {
                    var: SEED_ENV,
                    value: s.clone(),
                    reason: SEED_GRAMMAR.to_owned(),
                })?),
                None => None,
            },
        })
    }
}

/// A positive integer, trimmed. Zero is a grammar error: a fleet of zero
/// devices or a queue bound of zero is meaningless, and silently
/// clamping would mask the typo.
fn resolve_positive(
    get: &impl Fn(&'static str) -> Option<String>,
    var: &'static str,
) -> Result<Option<usize>, EnvKnobError> {
    match get(var) {
        Some(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .map(Some)
            .ok_or_else(|| EnvKnobError {
                var,
                value: s.clone(),
                reason: POSITIVE_GRAMMAR.to_owned(),
            }),
        None => Ok(None),
    }
}

/// The once-per-process `MGPU_SERVICE_*` snapshot (or the first
/// validation error).
pub(crate) fn service_knobs() -> &'static Result<ServiceKnobs, EnvKnobError> {
    static KNOBS: OnceLock<Result<ServiceKnobs, EnvKnobError>> = OnceLock::new();
    KNOBS.get_or_init(|| ServiceKnobs::resolve(|var| std::env::var(var).ok()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_prop::run_cases;

    fn resolve_one(var: &'static str, value: &str) -> Result<ServiceKnobs, EnvKnobError> {
        let value = value.to_owned();
        ServiceKnobs::resolve(move |v| (v == var).then(|| value.clone()))
    }

    #[test]
    fn unset_family_resolves_to_all_none() {
        let knobs = ServiceKnobs::resolve(|_| None).unwrap();
        assert_eq!(
            knobs,
            ServiceKnobs {
                devices: None,
                queue_depth: None,
                breaker: None,
                seed: None
            }
        );
    }

    #[test]
    fn valid_spellings_parse_with_whitespace() {
        for var in [DEVICES_ENV, QUEUE_DEPTH_ENV, BREAKER_ENV, SEED_ENV] {
            for value in ["1", " 4 ", "16", "\t9\n"] {
                let knobs = resolve_one(var, value)
                    .unwrap_or_else(|e| panic!("{var}={value:?} rejected: {e}"));
                let got = match var {
                    DEVICES_ENV => knobs.devices.map(|n| n as u64),
                    QUEUE_DEPTH_ENV => knobs.queue_depth.map(|n| n as u64),
                    BREAKER_ENV => knobs.breaker.map(u64::from),
                    _ => knobs.seed,
                };
                assert_eq!(got, value.trim().parse::<u64>().ok(), "{var}={value:?}");
            }
        }
        // The seed alone accepts zero.
        assert_eq!(resolve_one(SEED_ENV, "0").unwrap().seed, Some(0));
    }

    #[test]
    fn invalid_values_are_typed_errors_naming_the_var() {
        let rejects: &[(&'static str, &str)] = &[
            (DEVICES_ENV, "0"),
            (DEVICES_ENV, "four"),
            (DEVICES_ENV, "-2"),
            (DEVICES_ENV, "3.5"),
            (QUEUE_DEPTH_ENV, "0"),
            (QUEUE_DEPTH_ENV, ""),
            (BREAKER_ENV, "0"),
            (BREAKER_ENV, "1e3"),
            (SEED_ENV, "0x10"),
            (SEED_ENV, "seedy"),
        ];
        for &(var, value) in rejects {
            let err =
                resolve_one(var, value).expect_err(&format!("{var}={value:?} should be rejected"));
            assert_eq!(err.var, var);
            assert_eq!(err.value, value);
            assert!(!err.reason.is_empty());
        }
    }

    /// Grammar property: random strings either parse as an in-range
    /// integer (and then resolve to exactly that value) or reject with a
    /// typed error — never a silent default, never a panic.
    #[test]
    fn random_strings_parse_or_reject_typed() {
        run_cases(300, |rng| {
            let len = rng.usize_in(0, 6);
            let value: String = (0..len)
                .map(|_| *rng.pick(&['0', '1', '7', '9', ' ', '-', 'x', 'e']))
                .collect();
            let expect = value.trim().parse::<usize>().ok().filter(|&n| n >= 1);
            match (resolve_one(DEVICES_ENV, &value), expect) {
                (Ok(knobs), Some(n)) => assert_eq!(knobs.devices, Some(n)),
                (Err(e), None) => assert_eq!(e.var, DEVICES_ENV),
                (Ok(knobs), None) => panic!("{value:?} parsed as {:?}", knobs.devices),
                (Err(e), Some(n)) => panic!("{value:?} (= {n}) rejected: {e}"),
            }
        });
    }
}
