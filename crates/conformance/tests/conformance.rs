//! End-to-end conformance properties: lattice agreement, fault-recovery
//! transparency, divergence detection + shrinking, and golden-corpus
//! replay.

use mgpu_conformance::{
    ast_nodes, check_case, check_fault_recovery, format_case, parse_case, random_recovery_plan,
    run_case, shrink_case, CaseFile, ExecPoint,
};
use mgpu_gles::FaultPlan;
use mgpu_prop::run_cases;
use mgpu_prop::shadergen::{gen_case, ConfCase};
use mgpu_tbdr::Platform;

#[test]
fn lattice_agrees_on_generated_cases() {
    // Every generated case must produce identical transcripts and
    // identical simulated-timing reports at all 35 lattice points on both
    // paper platforms.
    run_cases(6, |rng| {
        let case = gen_case(rng);
        if let Some(divergence) = check_case(&case) {
            panic!("lattice divergence: {divergence}");
        }
    });
}

#[test]
fn fault_recovery_is_transparent() {
    // A run interrupted by recoverable faults (context loss, OOM, compile
    // scratch exhaustion) and replayed by the recovery layer must be
    // byte-identical to a run that never faulted.
    run_cases(4, |rng| {
        let case = gen_case(rng);
        let plan = random_recovery_plan(rng);
        if let Some(divergence) = check_fault_recovery(&case, &plan) {
            panic!("fault-recovery divergence under `{plan}`: {divergence}");
        }
    });
}

/// A corruption plan covering every draw index a small script can reach.
fn corruption_everywhere() -> FaultPlan {
    let mut plan = FaultPlan::seeded(11);
    for draw in 0..32 {
        plan = plan.corrupt_at_draw(draw);
    }
    plan
}

/// The divergence predicate for the corruption demo: silent render-target
/// corruption with recovery disabled must change some readback relative
/// to the fault-free run.
fn corrupted_diverges(case: &ConfCase, plan: &FaultPlan) -> bool {
    let platform = Platform::videocore_iv();
    let baseline = ExecPoint::baseline();
    let clean = run_case(case, &platform, baseline, None, false);
    let corrupted = run_case(case, &platform, baseline, Some(plan), false);
    clean.transcript != corrupted.transcript
}

#[test]
fn seeded_corruption_is_caught_and_shrunk_to_a_replayable_case() {
    let plan = corruption_everywhere();
    // Find a generated case that observes a corrupted draw (the first few
    // seeds suffice: the generator's epilogue always draws and reads).
    let (seed, case) = (0..50)
        .find_map(|seed| {
            let mut rng = mgpu_prop::case_rng(seed);
            let case = gen_case(&mut rng);
            corrupted_diverges(&case, &plan).then_some((seed, case))
        })
        .expect("no generated case observes the corruption");
    println!("corruption observed at generator seed {seed}");

    // Shrink while the divergence reproduces.
    let shrunk = shrink_case(&case, |candidate| corrupted_diverges(candidate, &plan), 600);
    assert!(
        corrupted_diverges(&shrunk, &plan),
        "shrinker lost the divergence"
    );
    assert!(
        shrunk.steps.len() <= case.steps.len(),
        "shrinker grew the script"
    );

    // The shrunk kernels must be tiny: at most 10 AST nodes in total.
    let total_nodes: usize = shrunk
        .shaders
        .iter()
        .map(|shader| mgpu_shader::parse(&shader.source).map_or(0, |program| ast_nodes(&program)))
        .sum();
    assert!(
        total_nodes <= 10,
        "shrunk case still has {total_nodes} AST nodes:\n{}",
        shrunk
            .shaders
            .iter()
            .map(|s| s.source.as_str())
            .collect::<Vec<_>>()
            .join("\n---\n")
    );

    // The failure must survive a `.case` round trip: the file alone
    // reproduces it.
    let file = CaseFile {
        case: shrunk,
        faults: Some(plan.clone()),
        recover: false,
        point: Some(ExecPoint::baseline()),
    };
    let text = format_case(&file);
    let replayed = parse_case(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    let replay_plan = replayed.faults.expect("plan survives the round trip");
    assert!(
        corrupted_diverges(&replayed.case, &replay_plan),
        "replayed case no longer diverges:\n{text}"
    );
}

#[test]
fn golden_corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|entry| entry.expect("readable corpus entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "case"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus is empty");
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable case file");
        let file = parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let verdict = match (&file.faults, file.recover) {
            (Some(plan), true) => check_fault_recovery(&file.case, plan),
            _ => check_case(&file.case),
        };
        if let Some(divergence) = verdict {
            panic!("{}: {divergence}", path.display());
        }
    }
}
