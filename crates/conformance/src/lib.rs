//! # mgpu-conformance — differential conformance oracle with shrinking
//!
//! The stack makes a strong promise: the functional output of a GL script
//! is a pure function of the script, never of *how* the driver executed
//! it. Engine tier (scalar vs lane-batched), bind-time specialisation,
//! dispatcher (serial, scope-spawn, persistent pool), draw-plan caching
//! and host thread count are all pure wall-clock knobs; simulated timing
//! is equally invariant, and a fault-injected run that recovers must be
//! indistinguishable — byte for byte — from a run that never faulted.
//!
//! This crate turns that promise into an executable oracle:
//!
//! * [`lattice`](lattice()) enumerates the execution-configuration points
//!   ([`ExecPoint`]) every case must agree across;
//! * [`run_case`] executes a generated [`ConfCase`](mgpu_prop::shadergen::ConfCase)
//!   script against one point, producing a transcript of step outcomes
//!   (pixels, successes, *and* typed errors — error paths are
//!   differentially tested exactly like pixel paths) plus the
//!   [`SimReport`](mgpu_tbdr::SimReport);
//! * [`check_case`] / [`check_fault_recovery`] are the oracles;
//! * [`check_fleet_isolation`] lifts the promise to the multi-tenant
//!   service layer: a seeded fleet scenario must replay exactly and every
//!   tenant's bytes must match a solo fault-free re-run;
//! * [`shrink_case`] greedily minimises a failing case — deleting script
//!   steps, deleting AST statements and globals, and collapsing
//!   expressions — while [`shrink_point`] bisects the configuration
//!   toward the serial/scalar baseline;
//! * [`format_case`] / [`parse_case`] give every failure a replayable
//!   `.case` file; the checked-in `corpus/` goldens replay in CI.
//!
//! The `mgpu-fuzz` binary (in `mgpu-bench`) drives the whole loop from a
//! seed and a budget.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod case;
pub mod fleet;
pub mod lattice;
pub mod oracle;
pub mod run;
pub mod shrink;
pub mod workloads;

pub use case::{format_case, parse_case, CaseFile};
pub use fleet::{
    check_fleet_isolation, check_workload_fleet_isolation, fleet_scenario, workload_fleet_scenario,
    FleetScenario,
};
pub use lattice::{lattice, ExecPoint};
pub use oracle::{check_case, check_fault_recovery, random_recovery_plan, Divergence};
pub use run::{normalize_error, run_case, spec_from_source, RunOutcome, StepOutcome};
pub use shrink::{ast_nodes, shrink_case, shrink_point};
pub use workloads::workload_cases;
