//! Executes a conformance case against one execution point.
//!
//! The runner interprets a [`ConfCase`] draw script on a fresh [`Gl`]
//! context and records a **transcript**: one [`StepOutcome`] per script
//! step. Readbacks record their bytes; state-changing steps record
//! success; steps that hit an invalid GL state record the *typed error
//! text* — so error paths are differentially tested exactly like pixel
//! paths (error classification must not depend on engine, dispatcher or
//! thread count either).
//!
//! With a [`FaultPlan`] installed and `recover` set, the runner plays the
//! resilience strategy the fault-injection tests established: transient
//! failures (OOM, watchdog, compiler scratch exhaustion) are retried a
//! bounded number of times; context loss triggers [`Gl::recreate`]
//! followed by a replay of every state-changing step already executed,
//! then the interrupted step is retried. The oracle holds the resulting
//! transcript byte-identical to a fault-free run.

use mgpu_gles::raster::VaryingCorners;
use mgpu_gles::{
    DrawQuad, FaultPlan, FramebufferId, Gl, GlError, ProgramId, TextureFormat, TextureId,
};
use mgpu_prop::shadergen::{texels, ConfCase, ShaderSpec, Step, TexFormat};
use mgpu_shader::ast::{Qualifier, Type};
use mgpu_tbdr::{Platform, SimReport};

use crate::lattice::ExecPoint;

/// Bounded retries for transient faults, and bounded context-recovery
/// attempts per step. Exhausting either records the error in the
/// transcript instead of looping forever.
const MAX_RETRIES: usize = 8;

/// What one script step produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step succeeded without producing data.
    Ok,
    /// A readback succeeded with these bytes.
    Bytes(Vec<u8>),
    /// The step failed; the driver's error text (deterministic for a given
    /// script, whatever the execution point), with object handle numbers
    /// masked — see [`normalize_error`].
    Failed(String),
}

/// Masks object handle numbers (`texture#7` → `texture#?`) in an error
/// text. Handle numbers are execution-*history* dependent: a recovered
/// run re-creates every object after a context loss, so its handles
/// differ from a fault-free run's even though the error is the same. The
/// rest of the text still differentially tests the error path.
#[must_use]
pub fn normalize_error(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            let mut masked = false;
            while chars.peek().is_some_and(char::is_ascii_digit) {
                chars.next();
                masked = true;
            }
            if masked {
                out.push('?');
            }
        }
    }
    out
}

/// The full result of running one case at one execution point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// One outcome per script step, in order.
    pub transcript: Vec<StepOutcome>,
    /// The simulated timing report — itself required to be invariant
    /// across engines, dispatchers and thread counts on fault-free runs.
    pub report: SimReport,
    /// Number of faults the injector fired during the run.
    pub faults_fired: usize,
}

/// Re-derives a [`ShaderSpec`]'s interface metadata by parsing its source,
/// so `.case` files (and shrunk kernels) only ever store the text.
///
/// Unparsable source yields empty interface lists — the runner then simply
/// records the compile error in the transcript.
#[must_use]
pub fn spec_from_source(source: &str) -> ShaderSpec {
    let mut spec = ShaderSpec {
        source: source.to_owned(),
        uniforms: Vec::new(),
        samplers: Vec::new(),
        varyings: Vec::new(),
    };
    if let Ok(program) = mgpu_shader::parse(source) {
        for global in &program.globals {
            match (global.qualifier, global.ty) {
                (Qualifier::Uniform, Type::Sampler2d) => {
                    spec.samplers.push(global.name.clone());
                }
                (Qualifier::Uniform, ty) => {
                    if let Some(n) = ty.components() {
                        spec.uniforms.push((global.name.clone(), n));
                    }
                }
                (Qualifier::Varying, ty) => {
                    if let Some(n) = ty.components() {
                        spec.varyings.push((global.name.clone(), n));
                    }
                }
                (Qualifier::Const, _) => {}
            }
        }
    }
    spec
}

fn gl_format(format: TexFormat) -> TextureFormat {
    match format {
        TexFormat::Rgba8 => TextureFormat::Rgba8,
        TexFormat::Rgb8 => TextureFormat::Rgb8,
    }
}

/// Mutable execution state: the context plus everything needed to rebuild
/// it after a context loss.
struct Exec<'c> {
    case: &'c ConfCase,
    gl: Gl,
    textures: Vec<TextureId>,
    fbo: FramebufferId,
    /// Lazily created program per shader (compile errors surface on the
    /// first step that needs the program).
    programs: Vec<Option<ProgramId>>,
    /// Shader index currently in use, if any.
    current: Option<u8>,
    /// Last successfully applied uniform values per shader, for relinks
    /// and context recovery.
    uniforms: Vec<Vec<(String, [f32; 4])>>,
    /// Last successfully applied sampler bindings per shader.
    samplers: Vec<Vec<(String, u8)>>,
}

impl<'c> Exec<'c> {
    fn new(case: &'c ConfCase, platform: &Platform, point: ExecPoint) -> Exec<'c> {
        let mut gl = Gl::new(platform.clone(), case.width, case.height);
        point.apply(&mut gl);
        let textures = (0..case.textures.len())
            .map(|_| gl.create_texture())
            .collect();
        let fbo = gl.create_framebuffer();
        Exec {
            case,
            gl,
            textures,
            fbo,
            programs: vec![None; case.shaders.len()],
            current: None,
            uniforms: vec![Vec::new(); case.shaders.len()],
            samplers: vec![Vec::new(); case.shaders.len()],
        }
    }

    /// Fresh context + handles after a context loss. Recorded bindings are
    /// cleared; replaying the executed prefix re-records them.
    fn rebuild(&mut self) {
        self.gl.recreate();
        self.textures = (0..self.case.textures.len())
            .map(|_| self.gl.create_texture())
            .collect();
        self.fbo = self.gl.create_framebuffer();
        self.programs = vec![None; self.case.shaders.len()];
        self.current = None;
        for list in &mut self.uniforms {
            list.clear();
        }
        for list in &mut self.samplers {
            list.clear();
        }
    }

    fn shader(&self, index: u8) -> Result<&ShaderSpec, GlError> {
        self.case
            .shaders
            .get(index as usize)
            .ok_or_else(|| GlError::InvalidValue(format!("script references shader {index}")))
    }

    fn texture(&self, slot: u8) -> Result<TextureId, GlError> {
        self.textures
            .get(slot as usize)
            .copied()
            .ok_or_else(|| GlError::InvalidValue(format!("script references texture slot {slot}")))
    }

    /// The program for shader `index`, compiling it on first use.
    fn program(&mut self, index: u8) -> Result<ProgramId, GlError> {
        let source = self.shader(index)?.source.clone();
        if let Some(prog) = self.programs[index as usize] {
            return Ok(prog);
        }
        let prog = self.gl.create_program(&source)?;
        self.programs[index as usize] = Some(prog);
        Ok(prog)
    }

    fn record_uniform(&mut self, shader: u8, name: &str, value: [f32; 4]) {
        let list = &mut self.uniforms[shader as usize];
        if let Some(entry) = list.iter_mut().find(|(n, _)| n == name) {
            entry.1 = value;
        } else {
            list.push((name.to_owned(), value));
        }
    }

    fn record_sampler(&mut self, shader: u8, name: &str, unit: u8) {
        let list = &mut self.samplers[shader as usize];
        if let Some(entry) = list.iter_mut().find(|(n, _)| n == name) {
            entry.1 = unit;
        } else {
            list.push((name.to_owned(), unit));
        }
    }

    /// Executes step `index` once. `Ok(Some(bytes))` for readbacks,
    /// `Ok(None)` for state changes.
    fn apply_step(&mut self, index: usize) -> Result<Option<Vec<u8>>, GlError> {
        match self.case.steps[index].clone() {
            Step::UseProgram { shader } => {
                let prog = self.program(shader)?;
                self.gl.use_program(Some(prog))?;
                self.current = Some(shader);
                Ok(None)
            }
            Step::Relink { shader } => {
                let source = self.shader(shader)?.source.clone();
                let prog = self.gl.create_program(&source)?;
                // Re-apply recorded bindings; failures here are
                // deterministic (interface mismatches) and swallowed.
                for (name, value) in self.uniforms[shader as usize].clone() {
                    let _ = self.gl.set_uniform_vec(prog, &name, value);
                }
                for (name, unit) in self.samplers[shader as usize].clone() {
                    let _ = self.gl.set_sampler(prog, &name, u32::from(unit));
                }
                self.programs[shader as usize] = Some(prog);
                if self.current == Some(shader) {
                    self.gl.use_program(Some(prog))?;
                }
                Ok(None)
            }
            Step::SetUniform {
                shader,
                name,
                value,
            } => {
                let prog = self.program(shader)?;
                self.gl.set_uniform_vec(prog, &name, value)?;
                self.record_uniform(shader, &name, value);
                Ok(None)
            }
            Step::SetSampler { shader, name, unit } => {
                let prog = self.program(shader)?;
                self.gl.set_sampler(prog, &name, u32::from(unit))?;
                self.record_sampler(shader, &name, unit);
                Ok(None)
            }
            Step::BindTexture { unit, slot } => {
                let tex = self.texture(slot)?;
                self.gl.bind_texture(u32::from(unit), Some(tex))?;
                Ok(None)
            }
            Step::Upload { slot, seed, sub } => {
                let tex = self.texture(slot)?;
                let format = self.case.textures[slot as usize].format;
                let len = self.case.width as usize * self.case.height as usize * format.channels();
                let data = texels(seed, len);
                if sub {
                    self.gl.tex_sub_image_2d(tex, &data)?;
                } else {
                    self.gl.tex_image_2d(
                        tex,
                        self.case.width,
                        self.case.height,
                        gl_format(format),
                        Some(&data),
                    )?;
                }
                Ok(None)
            }
            Step::Target { slot } => {
                match slot {
                    None => self.gl.bind_framebuffer(None)?,
                    Some(slot) => {
                        let tex = self.texture(slot)?;
                        self.gl.bind_framebuffer(Some(self.fbo))?;
                        self.gl.framebuffer_texture_2d(tex)?;
                    }
                }
                Ok(None)
            }
            Step::Clear { rgba } => {
                self.gl.clear(rgba)?;
                Ok(None)
            }
            Step::Draw { band } => {
                let mut quad = DrawQuad::fullscreen();
                if let Some(shader) = self.current {
                    let declared: Vec<(String, VaryingCorners)> = self
                        .case
                        .overrides
                        .iter()
                        .filter(|(name, _)| {
                            self.case.shaders[shader as usize]
                                .varyings
                                .iter()
                                .any(|(n, _)| n == name)
                        })
                        .cloned()
                        .collect();
                    for (name, corners) in declared {
                        quad = quad.with_varying(&name, corners);
                    }
                }
                if let Some((y0, y1)) = band {
                    quad = quad.with_row_band(y0, y1);
                }
                self.gl.draw_quad(&quad)?;
                Ok(None)
            }
            Step::CopyOut { slot, sub } => {
                let tex = self.texture(slot)?;
                if sub {
                    self.gl.copy_tex_sub_image_2d(tex)?;
                } else {
                    let format = self.case.textures[slot as usize].format;
                    self.gl.copy_tex_image_2d(tex, gl_format(format))?;
                }
                Ok(None)
            }
            Step::ReadPixels => Ok(Some(self.gl.read_pixels()?)),
            Step::ReadTexture { slot } => {
                let tex = self.texture(slot)?;
                Ok(Some(self.gl.read_texture(tex)?))
            }
        }
    }

    /// Recovers from a context loss that interrupted step `upto`: rebuilds
    /// the context and replays every state-changing step before it.
    /// Readbacks are skipped (they mutate nothing); transient errors
    /// during replay are retried; a nested context loss restarts the
    /// replay. Deterministic errors are left alone — the original pass
    /// already recorded them.
    fn recover_context(&mut self, upto: usize) {
        'attempt: for _ in 0..MAX_RETRIES {
            self.rebuild();
            for step in 0..upto {
                if matches!(
                    self.case.steps[step],
                    Step::ReadPixels | Step::ReadTexture { .. }
                ) {
                    continue;
                }
                let mut retries = 0;
                loop {
                    match self.apply_step(step) {
                        Ok(_) => break,
                        Err(e) if e.is_context_loss() => continue 'attempt,
                        Err(e) if e.is_transient() && retries < MAX_RETRIES => retries += 1,
                        Err(_) => break,
                    }
                }
            }
            return;
        }
    }
}

/// Runs `case` on `platform` at `point`, optionally with `faults`
/// installed; with `recover` set the runner retries transients and
/// replays across context losses, otherwise every fault surfaces in the
/// transcript.
#[must_use]
pub fn run_case(
    case: &ConfCase,
    platform: &Platform,
    point: ExecPoint,
    faults: Option<&FaultPlan>,
    recover: bool,
) -> RunOutcome {
    let mut exec = Exec::new(case, platform, point);
    if let Some(plan) = faults {
        exec.gl.install_faults(plan.clone());
    }
    let mut transcript = Vec::with_capacity(case.steps.len());
    for index in 0..case.steps.len() {
        let mut retries = 0;
        let outcome = loop {
            match exec.apply_step(index) {
                Ok(None) => break StepOutcome::Ok,
                Ok(Some(bytes)) => break StepOutcome::Bytes(bytes),
                Err(e) if recover && e.is_context_loss() && retries < MAX_RETRIES => {
                    retries += 1;
                    exec.recover_context(index);
                }
                Err(e) if recover && e.is_transient() && retries < MAX_RETRIES => {
                    retries += 1;
                }
                Err(e) => break StepOutcome::Failed(normalize_error(&e.to_string())),
            }
        };
        transcript.push(outcome);
    }
    RunOutcome {
        transcript,
        report: exec.gl.report(),
        faults_fired: exec.gl.fault_trail().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_prop::shadergen::gen_shader;
    use mgpu_prop::{case_rng, run_cases};

    #[test]
    fn spec_round_trips_generated_interfaces() {
        // The generator's interface metadata and the parser-derived
        // metadata must agree — `.case` files only store source text.
        run_cases(64, |rng| {
            let spec = gen_shader(rng);
            assert_eq!(spec_from_source(&spec.source), spec);
        });
    }

    #[test]
    fn normalize_masks_handle_numbers_only() {
        assert_eq!(
            normalize_error("texture#12 is bound both as render target and for sampling"),
            "texture#? is bound both as render target and for sampling"
        );
        assert_eq!(
            normalize_error("program#3 / texture#4"),
            "program#? / texture#?"
        );
        assert_eq!(normalize_error("no handles here 42"), "no handles here 42");
        assert_eq!(normalize_error("dangling #"), "dangling #");
    }

    #[test]
    fn spec_from_unparsable_source_is_empty() {
        let spec = spec_from_source("not a shader");
        assert!(spec.uniforms.is_empty() && spec.samplers.is_empty() && spec.varyings.is_empty());
    }

    #[test]
    fn runner_produces_one_outcome_per_step() {
        let mut rng = case_rng(7);
        let case = mgpu_prop::shadergen::gen_case(&mut rng);
        let outcome = run_case(
            &case,
            &Platform::videocore_iv(),
            ExecPoint::baseline(),
            None,
            false,
        );
        assert_eq!(outcome.transcript.len(), case.steps.len());
        assert_eq!(outcome.faults_fired, 0);
        // The generator's epilogue guarantees a final readback.
        assert!(matches!(
            outcome.transcript.last(),
            Some(StepOutcome::Bytes(_))
        ));
    }
}
