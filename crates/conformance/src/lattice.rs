//! The execution-configuration lattice the oracle sweeps.
//!
//! One [`ExecPoint`] pins everything about *how* the driver executes a
//! script that is supposed to be functionally invisible: fragment engine,
//! bind-time specialisation, dispatcher (serial / scope-spawn / persistent
//! pool), draw-plan caching and host thread count. [`lattice`] enumerates
//! the points every case is held against; index 0 is the serial scalar
//! [`baseline`](ExecPoint::baseline) the others are compared to.

use std::fmt;

use mgpu_gles::{Engine, ExecConfig, Gl};

/// One point of the execution-configuration lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPoint {
    /// Fragment engine tier.
    pub engine: Engine,
    /// Bind-time uniform specialisation (batched and compiled tiers;
    /// the scalar tier ignores it).
    pub spec: bool,
    /// Persistent-pool dispatcher (`false` = legacy scope-spawn path when
    /// threaded, plain serial path when `threads == 1`).
    pub pool: bool,
    /// Per-context draw-plan cache (only reachable through the pool).
    pub plan_cache: bool,
    /// Tile-signature redundancy elimination (`MGPU_TILE_SKIP`). Changes
    /// *simulated time* by design, so the oracle only holds reports equal
    /// within a skip group — transcripts must still match the baseline.
    pub tile_skip: bool,
    /// Host worker threads.
    pub threads: usize,
}

impl ExecPoint {
    /// The reference point every other configuration must match: serial,
    /// scalar, no pool, no plan cache, no specialisation.
    #[must_use]
    pub fn baseline() -> ExecPoint {
        ExecPoint {
            engine: Engine::Scalar,
            spec: false,
            pool: false,
            plan_cache: false,
            tile_skip: false,
            threads: 1,
        }
    }

    /// Applies this point to a context: composes the [`ExecConfig`] and
    /// pins the plan cache.
    pub fn apply(&self, gl: &mut Gl) {
        let exec = ExecConfig::serial()
            .with_thread_count(self.threads)
            .with_engine(self.engine)
            .with_pool(self.pool)
            .with_specialization(self.spec)
            .with_tile_skip(self.tile_skip);
        gl.set_exec_config(exec);
        gl.set_plan_cache_enabled(self.plan_cache);
    }

    /// Parses the [`Display`](fmt::Display) form back into a point.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse(text: &str) -> Result<ExecPoint, String> {
        let mut point = ExecPoint::baseline();
        for tok in text.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad exec-point field `{tok}` (expected key=value)"))?;
            match key {
                "engine" => {
                    point.engine = match value {
                        "scalar" => Engine::Scalar,
                        "batched" => Engine::Batched,
                        "compiled" => Engine::Compiled,
                        other => return Err(format!("unknown engine `{other}`")),
                    };
                }
                "spec" => point.spec = parse_switch(value)?,
                "pool" => point.pool = parse_switch(value)?,
                "cache" => point.plan_cache = parse_switch(value)?,
                "skip" => point.tile_skip = parse_switch(value)?,
                "threads" => {
                    point.threads = value
                        .parse::<usize>()
                        .map_err(|_| format!("bad thread count `{value}`"))?
                        .max(1);
                }
                other => return Err(format!("unknown exec-point key `{other}`")),
            }
        }
        Ok(point)
    }
}

fn parse_switch(value: &str) -> Result<bool, String> {
    match value {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("bad switch `{other}` (expected on/off)")),
    }
}

impl fmt::Display for ExecPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let onoff = |b: bool| if b { "on" } else { "off" };
        write!(
            f,
            "engine={} spec={} pool={} cache={} skip={} threads={}",
            match self.engine {
                Engine::Scalar => "scalar",
                Engine::Batched => "batched",
                Engine::Compiled => "compiled",
            },
            onoff(self.spec),
            onoff(self.pool),
            onoff(self.plan_cache),
            onoff(self.tile_skip),
            self.threads
        )
    }
}

/// The full lattice: {scalar, batched±spec, compiled±spec} × {serial;
/// scope-spawn and pool (with the plan cache both on and off) at 2 and 8
/// threads}, plus per engine tier three tile-skip points (serial, and
/// pool+cache at 2 and 8 threads). 50 points; index 0 is
/// [`ExecPoint::baseline`].
#[must_use]
pub fn lattice() -> Vec<ExecPoint> {
    let mut points = Vec::new();
    for &(engine, spec) in &[
        (Engine::Scalar, false),
        (Engine::Batched, true),
        (Engine::Batched, false),
        (Engine::Compiled, true),
        (Engine::Compiled, false),
    ] {
        let base = ExecPoint {
            engine,
            spec,
            pool: false,
            plan_cache: false,
            tile_skip: false,
            threads: 1,
        };
        points.push(base);
        for threads in [2usize, 8] {
            points.push(ExecPoint { threads, ..base });
            points.push(ExecPoint {
                pool: true,
                plan_cache: true,
                threads,
                ..base
            });
            points.push(ExecPoint {
                pool: true,
                plan_cache: false,
                threads,
                ..base
            });
        }
        // Tile-skip axis: the serial path and both pooled thread counts.
        // Every skip-on point must replay byte-identical transcripts; the
        // oracle additionally holds their reports equal to each other.
        points.push(ExecPoint {
            tile_skip: true,
            ..base
        });
        for threads in [2usize, 8] {
            points.push(ExecPoint {
                pool: true,
                plan_cache: true,
                tile_skip: true,
                threads,
                ..base
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_50_points_and_starts_at_baseline() {
        let points = lattice();
        assert_eq!(points.len(), 50);
        assert_eq!(points[0], ExecPoint::baseline());
        // All distinct.
        for (i, a) in points.iter().enumerate() {
            for b in &points[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Three skip-on points per engine tier: serial plus pooled at 2
        // and 8 threads, all with the plan cache following the pool.
        let skips: Vec<&ExecPoint> = points.iter().filter(|p| p.tile_skip).collect();
        assert_eq!(skips.len(), 15);
        for p in &skips {
            assert_eq!(p.pool, p.plan_cache);
            assert!(p.pool || p.threads == 1);
        }
    }

    #[test]
    fn display_parse_round_trips_every_point() {
        for point in lattice() {
            let text = point.to_string();
            assert_eq!(ExecPoint::parse(&text), Ok(point), "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_fields() {
        assert!(ExecPoint::parse("engine=vliw").is_err());
        assert!(ExecPoint::parse("spec=maybe").is_err());
        assert!(ExecPoint::parse("skip=maybe").is_err());
        assert!(ExecPoint::parse("threads=zero").is_err());
        assert!(ExecPoint::parse("bogus=1").is_err());
        assert!(ExecPoint::parse("nokey").is_err());
    }
}
