//! The differential oracles.
//!
//! [`check_case`] sweeps a case across the whole execution lattice on both
//! paper platforms and demands, against the serial scalar baseline:
//!
//! * **byte identity** — every transcript entry (pixels, success marks
//!   and error texts alike) equal at every point;
//! * **report invariance** — the full [`SimReport`](mgpu_tbdr::SimReport)
//!   (per-frame timing, traffic, unit busyness) equal at every point,
//!   because simulated time must not depend on host execution strategy.
//!   Tile skipping (`skip=on`) changes simulated time *by design* —
//!   skipped tiles trade fragment shading for signature traffic — so
//!   reports are held equal only *within* a skip group: all skip-on
//!   points must report identical timing to each other (the skip decision
//!   is deterministic, whatever the dispatcher), and all skip-off points
//!   must match the baseline exactly as before.
//!
//! [`check_fault_recovery`] installs a recoverable [`FaultPlan`] and
//! demands the recovered transcript be byte-identical to the fault-free
//! one — faults that the resilience layer absorbs must be functionally
//! invisible.

use std::fmt;

use mgpu_gles::{Engine, FaultPlan};
use mgpu_prop::shadergen::ConfCase;
use mgpu_prop::Rng;
use mgpu_tbdr::Platform;

use crate::lattice::{lattice, ExecPoint};
use crate::run::{run_case, RunOutcome, StepOutcome};

/// A confirmed disagreement between two runs of the same case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Platform the case diverged on.
    pub platform: String,
    /// The execution point that disagreed with the baseline (or, for
    /// fault-recovery checks, the point the faulted run executed at).
    pub point: String,
    /// Script step index where the transcripts first differ, if they do
    /// (`None` means the transcripts matched but the reports did not).
    pub step: Option<usize>,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ {}] ", self.platform, self.point)?;
        match self.step {
            Some(step) => write!(f, "step {step}: {}", self.detail),
            None => write!(f, "{}", self.detail),
        }
    }
}

fn describe(outcome: &StepOutcome) -> String {
    match outcome {
        StepOutcome::Ok => "ok".to_owned(),
        StepOutcome::Bytes(bytes) => format!("{} bytes", bytes.len()),
        StepOutcome::Failed(text) => format!("error `{text}`"),
    }
}

/// First transcript disagreement between `want` and `got`, as
/// `(step, description)`.
#[must_use]
pub fn diff_transcripts(want: &[StepOutcome], got: &[StepOutcome]) -> Option<(usize, String)> {
    for (step, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        if a == b {
            continue;
        }
        let detail = match (a, b) {
            (StepOutcome::Bytes(x), StepOutcome::Bytes(y)) => {
                let offset = x
                    .iter()
                    .zip(y.iter())
                    .position(|(p, q)| p != q)
                    .map_or_else(
                        || format!("lengths {} vs {}", x.len(), y.len()),
                        |o| format!("first differing byte at offset {o}"),
                    );
                format!("readback bytes differ ({offset})")
            }
            (a, b) => format!("{} vs {}", describe(a), describe(b)),
        };
        return Some((step, detail));
    }
    if want.len() != got.len() {
        return Some((
            want.len().min(got.len()),
            format!("transcript lengths {} vs {}", want.len(), got.len()),
        ));
    }
    None
}

fn compare(
    platform: &Platform,
    point: ExecPoint,
    base: &RunOutcome,
    got: &RunOutcome,
    check_report: bool,
) -> Option<Divergence> {
    if let Some((step, detail)) = diff_transcripts(&base.transcript, &got.transcript) {
        return Some(Divergence {
            platform: platform.name.clone(),
            point: point.to_string(),
            step: Some(step),
            detail,
        });
    }
    if check_report && base.report != got.report {
        return Some(Divergence {
            platform: platform.name.clone(),
            point: point.to_string(),
            step: None,
            detail: "SimReport differs from its skip group's reference \
                     (timing must be execution-invariant)"
                .to_owned(),
        });
    }
    None
}

/// Sweeps `case` across the full lattice on both paper platforms; `None`
/// means every point agreed with the baseline transcript byte-for-byte
/// and with its skip group's reference report (skip-off points against
/// the baseline, skip-on points against the first skip-on point).
#[must_use]
pub fn check_case(case: &ConfCase) -> Option<Divergence> {
    for platform in Platform::paper_pair() {
        let points = lattice();
        let base = run_case(case, &platform, points[0], None, false);
        // Report reference for skip-on points, established by the first
        // one encountered (its transcript is still held to the baseline).
        let mut skip_base: Option<RunOutcome> = None;
        for &point in &points[1..] {
            let got = run_case(case, &platform, point, None, false);
            let report_ref = if point.tile_skip {
                skip_base.as_ref().unwrap_or(&got)
            } else {
                &base
            };
            if let Some(div) = compare(&platform, point, &base, &got, false) {
                return Some(div);
            }
            if let Some(div) = compare(&platform, point, report_ref, &got, true) {
                return Some(div);
            }
            if point.tile_skip && skip_base.is_none() {
                skip_base = Some(got);
            }
        }
    }
    None
}

/// The execution points fault recovery is exercised at: the serial scalar
/// baseline plus pooled, plan-cached batched and compiled points — both
/// ends of the dispatcher spectrum, on every non-reference engine tier —
/// and a tile-skip point, because a context loss must flush the signature
/// cache (stale replays after recovery would silently corrupt pixels).
fn recovery_points() -> [ExecPoint; 4] {
    [
        ExecPoint::baseline(),
        ExecPoint {
            engine: Engine::Batched,
            spec: true,
            pool: true,
            plan_cache: true,
            tile_skip: false,
            threads: 2,
        },
        ExecPoint {
            engine: Engine::Compiled,
            spec: true,
            pool: true,
            plan_cache: true,
            tile_skip: false,
            threads: 2,
        },
        ExecPoint {
            engine: Engine::Compiled,
            spec: true,
            pool: true,
            plan_cache: true,
            tile_skip: true,
            threads: 2,
        },
    ]
}

/// Runs `case` fault-free and under `plan` with recovery enabled, on both
/// paper platforms at both ends of the dispatcher spectrum, demanding
/// byte-identical transcripts. (Reports are *not* compared: a recovered
/// run legitimately does more simulated work.)
#[must_use]
pub fn check_fault_recovery(case: &ConfCase, plan: &FaultPlan) -> Option<Divergence> {
    for platform in Platform::paper_pair() {
        for point in recovery_points() {
            let clean = run_case(case, &platform, point, None, false);
            let faulted = run_case(case, &platform, point, Some(plan), true);
            if let Some(mut div) = compare(&platform, point, &clean, &faulted, false) {
                div.detail = format!("faulted-then-recovered run diverged: {}", div.detail);
                return Some(div);
            }
        }
    }
    None
}

/// A random *recoverable* fault plan: one-shot context losses, upload
/// OOMs and compile failures only — no corruption (silent, by design
/// unrecoverable) and no watchdog (a budget would reject the same draw
/// forever). At least one directive is always present.
#[must_use]
pub fn random_recovery_plan(rng: &mut Rng) -> FaultPlan {
    let mut plan = FaultPlan::seeded(rng.next_u64());
    let mut any = false;
    for _ in 0..rng.usize_in(0, 2) {
        plan = plan.ctx_loss_at_draw(rng.u64_in(0, 6));
        any = true;
    }
    for _ in 0..rng.usize_in(0, 2) {
        plan = plan.oom_at_upload(rng.u64_in(0, 8));
        any = true;
    }
    for _ in 0..rng.usize_in(0, 2) {
        plan = plan.compile_fail_at(rng.u64_in(0, 4));
        any = true;
    }
    if !any {
        plan = plan.ctx_loss_at_draw(rng.u64_in(0, 3));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_reports_first_differing_step() {
        let a = vec![StepOutcome::Ok, StepOutcome::Bytes(vec![1, 2, 3])];
        let b = vec![StepOutcome::Ok, StepOutcome::Bytes(vec![1, 9, 3])];
        let (step, detail) = diff_transcripts(&a, &b).unwrap();
        assert_eq!(step, 1);
        assert!(detail.contains("offset 1"), "{detail}");
        assert!(diff_transcripts(&a, &a).is_none());
    }

    #[test]
    fn diff_reports_length_mismatch() {
        let a = vec![StepOutcome::Ok];
        let b = vec![StepOutcome::Ok, StepOutcome::Ok];
        let (step, detail) = diff_transcripts(&a, &b).unwrap();
        assert_eq!(step, 1);
        assert!(detail.contains("lengths"), "{detail}");
    }

    #[test]
    fn random_recovery_plans_are_never_empty_and_round_trip() {
        mgpu_prop::run_cases(64, |rng| {
            let plan = random_recovery_plan(rng);
            assert!(!plan.is_empty());
            let spec = plan.to_string();
            assert_eq!(FaultPlan::parse(&spec), Ok(plan));
        });
    }
}
