//! Fleet-isolation conformance oracle.
//!
//! The service layer (`mgpu-service`) promises that multi-tenancy is
//! functionally invisible: a tenant's result bytes under a loaded,
//! fault-injected fleet are byte-identical to the same job run alone on
//! a pristine device, and the whole fleet schedule is a pure function of
//! the scenario seed. This module turns that promise into a conformance
//! check shaped like the rest of the crate: [`check_fleet_isolation`]
//! expands a seed into a deterministic scenario (fleet size, fault
//! plans, tenants, submission schedule), runs it **twice**, and reports
//! any disagreement — replay drift or an isolation breach — as a
//! [`Divergence`].

use mgpu_gles::FaultPlan;
use mgpu_prop::Rng;
use mgpu_service::{check_service_isolation, FleetService, JobSpec, ServiceConfig};
use mgpu_tbdr::SimTime;

use crate::oracle::Divergence;

/// A seed-expanded fleet scenario: the configuration plus a time-ordered
/// submission schedule `(tenant index, spec, arrival)`.
pub struct FleetScenario {
    /// The seed the scenario expands from.
    pub seed: u64,
    /// Fleet configuration (devices, fault plans, queue bounds, quantum).
    pub cfg: ServiceConfig,
    /// Per-tenant QoS weights; tenant indices below refer to this list.
    pub weights: Vec<u32>,
    /// Time-ordered submissions as `(tenant index, spec, arrival)`.
    pub submissions: Vec<(usize, JobSpec, SimTime)>,
}

/// Expands `seed` into a scenario: 2–4 devices (some carrying seeded
/// recoverable fault plans — context losses and upload OOMs, the classes
/// the resilience ladder absorbs without checksums), 2–3 weighted
/// tenants, and 8–14 staggered submissions mixing reduction and SGEMM
/// jobs.
#[must_use]
pub fn fleet_scenario(seed: u64) -> FleetScenario {
    let mut rng = Rng::new(seed ^ 0xF1EE_7CA5_E5CE_AA10);
    let devices = rng.usize_in(2, 4);
    let fault_plans = (0..devices)
        .map(|_| {
            rng.bool().then(|| {
                FaultPlan::seeded(rng.next_u64())
                    .p_ctx_loss(rng.f64(0.0, 0.04))
                    .p_oom(rng.f64(0.0, 0.04))
            })
        })
        .collect();
    let cfg = ServiceConfig {
        devices,
        fault_plans,
        queue_depth: rng.usize_in(8, 16),
        device_queue_depth: rng.usize_in(1, 3),
        quantum: rng.u64_in(1, 6),
        seed: rng.next_u64(),
        ..ServiceConfig::default()
    };
    let tenant_count = rng.usize_in(2, 3);
    let weights = (0..tenant_count).map(|_| rng.u32_in(1, 5)).collect();
    let mut submissions = Vec::new();
    let mut now = 0u64;
    for _ in 0..rng.usize_in(8, 14) {
        now += rng.u64_in(0, 150_000); // stagger 0..150µs, in ns
        let tenant = rng.usize_in(0, tenant_count - 1);
        let spec = if rng.bool() {
            JobSpec::Sum {
                n: 8,
                iterations: rng.u32_in(1, 3),
            }
        } else {
            JobSpec::Sgemm {
                n: 8,
                block: *rng.pick(&[2u32, 4, 8]),
            }
        };
        submissions.push((tenant, spec, SimTime::from_nanos(now)));
    }
    FleetScenario {
        seed,
        cfg,
        weights,
        submissions,
    }
}

/// Expands `seed` into a scenario whose submissions mix the three GPU
/// workload families (pyramid, Jacobi, training) with sum/SGEMM
/// tenants — the isolation promise must hold for multi-pass pipeline
/// jobs with retained state exactly as it does for the flat operators.
#[must_use]
pub fn workload_fleet_scenario(seed: u64) -> FleetScenario {
    let mut scenario = fleet_scenario(seed ^ 0x3B0A_D10A_D5CA_1E00);
    let mut rng = Rng::new(seed ^ 0xD00D_FA11_0F1E_E75C);
    // Replace a deterministic half of the submissions with workload jobs
    // (the surface the devices allocate already fits n = 8).
    for (i, (_, spec, _)) in scenario.submissions.iter_mut().enumerate() {
        if i % 2 == 0 {
            *spec = match rng.u32_in(0, 3) {
                0 => JobSpec::Pyramid {
                    n: 8,
                    levels: rng.u32_in(1, 4),
                },
                1 => JobSpec::Jacobi {
                    n: 8,
                    iterations: rng.u32_in(1, 6),
                },
                _ => JobSpec::Train {
                    n: 8,
                    block: *rng.pick(&[2u32, 4, 8]),
                    steps: rng.u32_in(1, 3),
                },
            };
        }
    }
    scenario
}

fn run_scenario(scenario: &FleetScenario) -> FleetService {
    #[allow(clippy::expect_used)] // a seeded scenario is valid by construction
    let mut service =
        FleetService::new(scenario.cfg.clone()).expect("seeded scenario config must be valid");
    let tenants: Vec<_> = scenario
        .weights
        .iter()
        .map(|&w| service.add_tenant(w))
        .collect();
    for &(tenant, spec, arrival) in &scenario.submissions {
        // Rejections are a legitimate outcome (bounded queues); they are
        // recorded in the transcript and replay like everything else.
        let _ = service.submit(tenants[tenant], spec, arrival, None);
    }
    service.drain();
    service
}

/// Expands `seed`, runs the fleet twice and checks both service
/// promises:
///
/// * **replay determinism** — the two transcripts must be identical,
///   record for record;
/// * **fault isolation** — every completed job's bytes must equal a solo
///   fault-free re-run on the same platform
///   ([`check_service_isolation`]).
///
/// Empty result = the seed's scenario conforms.
#[must_use]
pub fn check_fleet_isolation(seed: u64) -> Vec<Divergence> {
    check_scenario(&fleet_scenario(seed))
}

/// [`check_fleet_isolation`] over a [`workload_fleet_scenario`]: the
/// seeded workload-mixing fleet must replay exactly and every tenant's
/// bytes must match a solo fault-free re-run.
#[must_use]
pub fn check_workload_fleet_isolation(seed: u64) -> Vec<Divergence> {
    check_scenario(&workload_fleet_scenario(seed))
}

fn check_scenario(scenario: &FleetScenario) -> Vec<Divergence> {
    let seed = scenario.seed;
    let first = run_scenario(scenario);
    let second = run_scenario(scenario);
    let point = format!(
        "fleet seed={seed} ({} devices, {} tenants, {} submissions)",
        scenario.cfg.devices,
        scenario.weights.len(),
        scenario.submissions.len()
    );

    let mut divergences = Vec::new();
    if first.records() != second.records() {
        let step = first
            .records()
            .iter()
            .zip(second.records())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| first.records().len().min(second.records().len()));
        divergences.push(Divergence {
            platform: "fleet".to_owned(),
            point: point.clone(),
            step: Some(step),
            detail: "replay drift: same scenario, different transcript".to_owned(),
        });
    }
    for breach in check_service_isolation(&first) {
        let platform = first
            .records()
            .iter()
            .find(|r| r.id == breach.job)
            .and_then(|r| r.device)
            .map_or_else(
                || "fleet".to_owned(),
                |d| scenario.cfg.platform_for(d).name.clone(),
            );
        divergences.push(Divergence {
            platform,
            point: point.clone(),
            step: None,
            detail: breach.to_string(),
        });
    }
    divergences
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_pure_functions_of_the_seed() {
        let a = fleet_scenario(9);
        let b = fleet_scenario(9);
        assert_eq!(a.cfg.devices, b.cfg.devices);
        assert_eq!(a.cfg.seed, b.cfg.seed);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.submissions, b.submissions);
        // Different seeds give different schedules (not a strict
        // guarantee seed-by-seed, but these two must not collide).
        let c = fleet_scenario(10);
        assert_ne!(a.submissions, c.submissions);
    }

    #[test]
    fn workload_scenarios_mix_families_deterministically() {
        let a = workload_fleet_scenario(3);
        let b = workload_fleet_scenario(3);
        assert_eq!(a.submissions, b.submissions);
        let workload_jobs = a
            .submissions
            .iter()
            .filter(|(_, spec, _)| {
                matches!(
                    spec,
                    JobSpec::Pyramid { .. } | JobSpec::Jacobi { .. } | JobSpec::Train { .. }
                )
            })
            .count();
        assert!(workload_jobs > 0, "scenario has no workload jobs");
        assert!(
            workload_jobs < a.submissions.len(),
            "scenario lost its sum/sgemm tenants"
        );
    }

    #[test]
    fn seeded_workload_fleet_scenarios_conform() {
        for seed in 0..3 {
            let divergences = check_workload_fleet_isolation(seed);
            assert!(
                divergences.is_empty(),
                "workload fleet seed {seed} diverged:\n{}",
                divergences
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn seeded_fleet_scenarios_conform() {
        for seed in 0..4 {
            let divergences = check_fleet_isolation(seed);
            assert!(
                divergences.is_empty(),
                "fleet seed {seed} diverged:\n{}",
                divergences
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}
