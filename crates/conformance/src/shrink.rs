//! Greedy case minimisation.
//!
//! [`shrink_case`] takes a failing case and a predicate (`true` = "still
//! fails") and repeatedly tries smaller candidates, keeping each one the
//! predicate accepts:
//!
//! 1. delete script steps (last first, so epilogue noise goes early);
//! 2. drop varying overrides and trailing unreferenced shaders/textures;
//! 3. mutate shader ASTs — delete statements (innermost included),
//!    globals and non-`main` functions, truncate vector-constructor
//!    argument lists, hoist subexpressions over their parents and replace
//!    subexpressions with `0.0` — revalidating every mutant through the
//!    real compiler before it is offered to the predicate;
//! 4. iterate to a fixpoint or until the evaluation budget runs out.
//!
//! [`shrink_point`] independently bisects an execution point toward the
//! serial scalar baseline, flipping one knob at a time while the failure
//! reproduces. [`ast_nodes`] is the size metric reported for shrunk
//! kernels.

use mgpu_gles::Engine;
use mgpu_prop::shadergen::{ConfCase, Step};
use mgpu_shader::ast::{Expr, Program, Stmt};
use mgpu_shader::pretty::print_program;

use crate::lattice::ExecPoint;
use crate::run::spec_from_source;

// ---------------------------------------------------------------------------
// AST size metric
// ---------------------------------------------------------------------------

/// Number of AST nodes in a program: globals, functions, statements and
/// expressions all count one each.
#[must_use]
pub fn ast_nodes(program: &Program) -> usize {
    let globals: usize = program
        .globals
        .iter()
        .map(|g| 1 + g.init.as_ref().map_or(0, expr_nodes))
        .sum();
    let functions: usize = program
        .functions
        .iter()
        .map(|f| 1 + f.body.iter().map(stmt_nodes).sum::<usize>())
        .sum();
    globals + functions
}

fn expr_nodes(expr: &Expr) -> usize {
    1 + match expr {
        Expr::Literal(_) | Expr::BoolLiteral(_) | Expr::Var(_) => 0,
        Expr::Unary { expr, .. } => expr_nodes(expr),
        Expr::Binary { lhs, rhs, .. } => expr_nodes(lhs) + expr_nodes(rhs),
        Expr::Call { args, .. } => args.iter().map(expr_nodes).sum(),
        Expr::Swizzle { base, .. } => expr_nodes(base),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => expr_nodes(cond) + expr_nodes(then_expr) + expr_nodes(else_expr),
    }
}

fn stmt_nodes(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::Decl { names, .. } => names
            .iter()
            .map(|(_, init)| init.as_ref().map_or(0, expr_nodes))
            .sum(),
        Stmt::Assign { value, .. } => expr_nodes(value),
        Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            expr_nodes(init)
                + expr_nodes(cond)
                + expr_nodes(update)
                + body.iter().map(stmt_nodes).sum::<usize>()
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            expr_nodes(cond)
                + then_branch.iter().map(stmt_nodes).sum::<usize>()
                + else_branch.iter().map(stmt_nodes).sum::<usize>()
        }
        Stmt::Return { value, .. } => value.as_ref().map_or(0, expr_nodes),
        Stmt::ExprStmt { expr, .. } => expr_nodes(expr),
    }
}

// ---------------------------------------------------------------------------
// AST mutations
// ---------------------------------------------------------------------------

/// One expression-level mutation, applied to the `n`-th expression in
/// program DFS order.
#[derive(Clone, Copy)]
enum ExprMutation {
    /// Replace with the literal `0.0`.
    Zero,
    /// Replace with `vec4(0.0)` — the terminal move for the mandatory
    /// `gl_FragColor` write's right-hand side.
    Vec4Zero,
    /// Replace with its `k`-th child.
    Hoist(usize),
    /// Truncate a multi-argument call to its first argument (vector
    /// constructors splat scalars, so this often stays well-typed).
    TruncateArgs,
}

fn nth_child(expr: &Expr, k: usize) -> Option<&Expr> {
    match expr {
        Expr::Literal(_) | Expr::BoolLiteral(_) | Expr::Var(_) => None,
        Expr::Unary { expr, .. } => (k == 0).then_some(expr.as_ref()),
        Expr::Binary { lhs, rhs, .. } => match k {
            0 => Some(lhs),
            1 => Some(rhs),
            _ => None,
        },
        Expr::Call { args, .. } => args.get(k),
        Expr::Swizzle { base, .. } => (k == 0).then_some(base.as_ref()),
        Expr::Ternary {
            then_expr,
            else_expr,
            ..
        } => match k {
            0 => Some(then_expr),
            1 => Some(else_expr),
            _ => None,
        },
    }
}

fn apply_mutation(expr: &mut Expr, mutation: ExprMutation) -> bool {
    match mutation {
        ExprMutation::Zero => {
            if matches!(expr, Expr::Literal(_)) {
                return false;
            }
            *expr = Expr::Literal(0.0);
            true
        }
        ExprMutation::Vec4Zero => {
            let zero = Expr::Call {
                name: "vec4".to_owned(),
                args: vec![Expr::Literal(0.0)],
                line: 0,
            };
            if *expr == zero {
                return false;
            }
            *expr = zero;
            true
        }
        ExprMutation::Hoist(k) => match nth_child(expr, k).cloned() {
            Some(child) => {
                *expr = child;
                true
            }
            None => false,
        },
        ExprMutation::TruncateArgs => {
            if let Expr::Call { args, .. } = expr {
                if args.len() > 1 {
                    args.truncate(1);
                    return true;
                }
            }
            false
        }
    }
}

/// Visits expression `*n` (DFS pre-order) and applies `mutation`;
/// decrements `*n` past every expression visited.
fn mutate_expr(expr: &mut Expr, n: &mut usize, mutation: ExprMutation) -> bool {
    if *n == usize::MAX {
        // A previous visit already consumed the position (as a no-op);
        // don't let sibling traversals decrement past the sentinel.
        return false;
    }
    if *n == 0 {
        // Position found: report whether the mutation changed anything.
        // Either way the search stops here, so bump the counter past any
        // further positions by making it impossible to hit zero again.
        let applied = apply_mutation(expr, mutation);
        *n = usize::MAX;
        return applied;
    }
    *n -= 1;
    match expr {
        Expr::Literal(_) | Expr::BoolLiteral(_) | Expr::Var(_) => false,
        Expr::Unary { expr, .. } | Expr::Swizzle { base: expr, .. } => {
            mutate_expr(expr, n, mutation)
        }
        Expr::Binary { lhs, rhs, .. } => {
            mutate_expr(lhs, n, mutation) || mutate_expr(rhs, n, mutation)
        }
        Expr::Call { args, .. } => args.iter_mut().any(|a| mutate_expr(a, n, mutation)),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            mutate_expr(cond, n, mutation)
                || mutate_expr(then_expr, n, mutation)
                || mutate_expr(else_expr, n, mutation)
        }
    }
}

fn stmt_exprs_mut(stmt: &mut Stmt) -> Vec<&mut Expr> {
    match stmt {
        Stmt::Decl { names, .. } => names
            .iter_mut()
            .filter_map(|(_, init)| init.as_mut())
            .collect(),
        Stmt::Assign { value, .. } => vec![value],
        Stmt::For {
            init, cond, update, ..
        } => vec![init, cond, update],
        Stmt::If { cond, .. } => vec![cond],
        Stmt::Return { value, .. } => value.as_mut().into_iter().collect(),
        Stmt::ExprStmt { expr, .. } => vec![expr],
    }
}

fn stmt_bodies_mut(stmt: &mut Stmt) -> Vec<&mut Vec<Stmt>> {
    match stmt {
        Stmt::For { body, .. } => vec![body],
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => vec![then_branch, else_branch],
        _ => Vec::new(),
    }
}

fn mutate_expr_in_body(body: &mut Vec<Stmt>, n: &mut usize, mutation: ExprMutation) -> bool {
    for stmt in body {
        for expr in stmt_exprs_mut(stmt) {
            if mutate_expr(expr, n, mutation) {
                return true;
            }
            if *n == usize::MAX {
                return false;
            }
        }
        for nested in stmt_bodies_mut(stmt) {
            if mutate_expr_in_body(nested, n, mutation) {
                return true;
            }
            if *n == usize::MAX {
                return false;
            }
        }
    }
    false
}

/// Applies `mutation` to the `n`-th expression of the program (DFS over
/// global initialisers then function bodies). `false` when `n` is out of
/// range or the mutation was a no-op.
fn mutate_program_expr(program: &mut Program, mut n: usize, mutation: ExprMutation) -> bool {
    for global in &mut program.globals {
        if let Some(init) = &mut global.init {
            if mutate_expr(init, &mut n, mutation) {
                return true;
            }
            if n == usize::MAX {
                return false;
            }
        }
    }
    for function in &mut program.functions {
        if mutate_expr_in_body(&mut function.body, &mut n, mutation) {
            return true;
        }
        if n == usize::MAX {
            return false;
        }
    }
    false
}

fn program_expr_count(program: &Program) -> usize {
    let globals: usize = program
        .globals
        .iter()
        .map(|g| g.init.as_ref().map_or(0, expr_nodes))
        .sum();
    let functions: usize = program
        .functions
        .iter()
        .map(|f| f.body.iter().map(stmt_exprs_total).sum::<usize>())
        .sum();
    globals + functions
}

fn stmt_exprs_total(stmt: &Stmt) -> usize {
    stmt_nodes(stmt) - stmt_count(std::slice::from_ref(stmt))
}

fn stmt_count(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| {
            1 + match s {
                Stmt::For { body, .. } => stmt_count(body),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => stmt_count(then_branch) + stmt_count(else_branch),
                _ => 0,
            }
        })
        .sum()
}

fn program_stmt_count(program: &Program) -> usize {
    program.functions.iter().map(|f| stmt_count(&f.body)).sum()
}

/// Deletes the `n`-th statement (DFS pre-order over all function bodies,
/// nested bodies included).
fn delete_program_stmt(program: &mut Program, mut n: usize) -> bool {
    for function in &mut program.functions {
        if delete_stmt_in(&mut function.body, &mut n) {
            return true;
        }
    }
    false
}

fn delete_stmt_in(body: &mut Vec<Stmt>, n: &mut usize) -> bool {
    let mut index = 0;
    while index < body.len() {
        if *n == 0 {
            body.remove(index);
            return true;
        }
        *n -= 1;
        let mut deleted = false;
        for nested in stmt_bodies_mut(&mut body[index]) {
            if delete_stmt_in(nested, n) {
                deleted = true;
                break;
            }
        }
        if deleted {
            return true;
        }
        index += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Shrink drivers
// ---------------------------------------------------------------------------

/// A shader mutant that still compiles, or `None` when the mutation was a
/// no-op or produced an invalid program.
fn viable_mutant(program: &Program, mutate: impl FnOnce(&mut Program) -> bool) -> Option<String> {
    let mut mutant = program.clone();
    if !mutate(&mut mutant) {
        return None;
    }
    let source = print_program(&mutant);
    mgpu_shader::compile(&source).ok()?;
    Some(source)
}

/// Texture slots a script still references.
fn referenced_slots(steps: &[Step]) -> Vec<u8> {
    let mut slots = Vec::new();
    for step in steps {
        let slot = match step {
            Step::BindTexture { slot, .. }
            | Step::Upload { slot, .. }
            | Step::Target { slot: Some(slot) }
            | Step::CopyOut { slot, .. }
            | Step::ReadTexture { slot } => Some(*slot),
            _ => None,
        };
        if let Some(slot) = slot {
            if !slots.contains(&slot) {
                slots.push(slot);
            }
        }
    }
    slots
}

fn referenced_shaders(steps: &[Step]) -> Vec<u8> {
    let mut shaders = Vec::new();
    for step in steps {
        let shader = match step {
            Step::UseProgram { shader }
            | Step::Relink { shader }
            | Step::SetUniform { shader, .. }
            | Step::SetSampler { shader, .. } => Some(*shader),
            _ => None,
        };
        if let Some(shader) = shader {
            if !shaders.contains(&shader) {
                shaders.push(shader);
            }
        }
    }
    shaders
}

/// Greedily minimises `case` while `fails` keeps returning `true`,
/// spending at most `max_evals` predicate evaluations. The returned case
/// always still satisfies `fails` (in the worst case it is the input
/// itself).
pub fn shrink_case(
    case: &ConfCase,
    mut fails: impl FnMut(&ConfCase) -> bool,
    max_evals: usize,
) -> ConfCase {
    let mut best = case.clone();
    let mut evals = 0usize;
    loop {
        let mut progress = false;

        // Pass 1: drop script steps, last first.
        let mut index = best.steps.len();
        while index > 0 {
            index -= 1;
            if evals >= max_evals {
                return best;
            }
            let mut candidate = best.clone();
            candidate.steps.remove(index);
            evals += 1;
            if fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }

        // Pass 2: drop varying overrides.
        let mut index = best.overrides.len();
        while index > 0 {
            index -= 1;
            if evals >= max_evals {
                return best;
            }
            let mut candidate = best.clone();
            candidate.overrides.remove(index);
            evals += 1;
            if fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }

        // Pass 3: drop trailing unreferenced shaders and textures (no
        // renumbering needed for a suffix).
        let max_shader = referenced_shaders(&best.steps)
            .iter()
            .max()
            .map_or(0, |&s| s as usize + 1);
        let max_slot = referenced_slots(&best.steps)
            .iter()
            .max()
            .map_or(0, |&s| s as usize + 1);
        if (max_shader < best.shaders.len() || max_slot < best.textures.len()) && evals < max_evals
        {
            let mut candidate = best.clone();
            candidate.shaders.truncate(max_shader.max(1));
            candidate.textures.truncate(max_slot);
            evals += 1;
            if fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }

        // Pass 4: shrink each referenced shader's AST.
        for shader_index in 0..best.shaders.len() {
            let Ok(program) = mgpu_shader::parse(&best.shaders[shader_index].source) else {
                continue;
            };
            let mut candidates: Vec<String> = Vec::new();
            for n in (0..program_stmt_count(&program)).rev() {
                candidates.extend(viable_mutant(&program, |p| delete_program_stmt(p, n)));
            }
            for n in (0..program.globals.len()).rev() {
                candidates.extend(viable_mutant(&program, |p| {
                    p.globals.remove(n);
                    true
                }));
            }
            for n in (0..program.functions.len()).rev() {
                if program.functions[n].name == "main" {
                    continue;
                }
                candidates.extend(viable_mutant(&program, |p| {
                    p.functions.remove(n);
                    true
                }));
            }
            let exprs = program_expr_count(&program);
            for n in 0..exprs {
                for mutation in [
                    ExprMutation::TruncateArgs,
                    ExprMutation::Hoist(0),
                    ExprMutation::Hoist(1),
                    ExprMutation::Zero,
                    ExprMutation::Vec4Zero,
                ] {
                    candidates.extend(viable_mutant(&program, |p| {
                        mutate_program_expr(p, n, mutation)
                    }));
                }
            }
            for source in candidates {
                if evals >= max_evals {
                    return best;
                }
                if source == best.shaders[shader_index].source {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.shaders[shader_index] = spec_from_source(&source);
                evals += 1;
                if fails(&candidate) {
                    best = candidate;
                    progress = true;
                    // The AST changed; re-enumerate against the new best.
                    break;
                }
            }
        }

        if !progress || evals >= max_evals {
            return best;
        }
    }
}

/// Bisects `point` toward [`ExecPoint::baseline`], flipping one knob at a
/// time while `fails` keeps reproducing; returns the simplest point that
/// still fails.
pub fn shrink_point(point: ExecPoint, mut fails: impl FnMut(&ExecPoint) -> bool) -> ExecPoint {
    let baseline = ExecPoint::baseline();
    let mut best = point;
    loop {
        let candidates = [
            ExecPoint {
                engine: baseline.engine,
                spec: false,
                ..best
            },
            // One engine tier down: a failure that also reproduces on the
            // batched interpreter should not be blamed on the compiled
            // tier's closure lowering.
            ExecPoint {
                engine: match best.engine {
                    Engine::Compiled => Engine::Batched,
                    other => other,
                },
                ..best
            },
            ExecPoint {
                spec: false,
                ..best
            },
            ExecPoint {
                pool: false,
                plan_cache: false,
                ..best
            },
            ExecPoint {
                plan_cache: false,
                ..best
            },
            ExecPoint {
                tile_skip: false,
                ..best
            },
            ExecPoint { threads: 1, ..best },
        ];
        let mut progress = false;
        for candidate in candidates {
            if candidate != best && fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
        if !progress {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_gles::Engine;

    const KERNEL: &str = "uniform float u0;\n\
                          varying vec2 v0;\n\
                          void main() {\n\
                              float a = u0 * 2.0;\n\
                              float b = a + v0.x;\n\
                              gl_FragColor = vec4(b, a, 0.0, 1.0);\n\
                          }\n";

    #[test]
    fn ast_nodes_counts_the_minimal_kernel_as_four() {
        let program = mgpu_shader::parse("void main() { gl_FragColor = vec4(0.0); }").unwrap();
        // function + assignment + call + literal
        assert_eq!(ast_nodes(&program), 4);
    }

    #[test]
    fn statement_deletion_hits_every_position() {
        let program = mgpu_shader::parse(KERNEL).unwrap();
        let total = program_stmt_count(&program);
        assert_eq!(total, 3);
        for n in 0..total {
            let mut mutant = program.clone();
            assert!(delete_program_stmt(&mut mutant, n));
            assert_eq!(program_stmt_count(&mutant), total - 1);
        }
        let mut mutant = program.clone();
        assert!(!delete_program_stmt(&mut mutant, total));
    }

    #[test]
    fn zero_mutation_shrinks_expressions() {
        let program = mgpu_shader::parse(KERNEL).unwrap();
        let before = ast_nodes(&program);
        let mut shrunk_any = false;
        for n in 0..program_expr_count(&program) {
            let mut mutant = program.clone();
            if mutate_program_expr(&mut mutant, n, ExprMutation::Zero) {
                assert!(ast_nodes(&mutant) <= before);
                shrunk_any = true;
            }
        }
        assert!(shrunk_any);
    }

    #[test]
    fn shrink_case_reaches_a_tiny_kernel_for_an_always_failing_predicate() {
        // With a predicate that accepts everything that still compiles and
        // draws, the shrinker must grind the case down to near-nothing.
        let case = {
            let mut rng = mgpu_prop::case_rng(3);
            mgpu_prop::shadergen::gen_case(&mut rng)
        };
        let shrunk = shrink_case(&case, |_| true, 4000);
        assert!(shrunk.steps.is_empty());
        assert_eq!(shrunk.shaders.len(), 1);
        let program = mgpu_shader::parse(&shrunk.shaders[0].source).unwrap();
        assert!(
            ast_nodes(&program) <= 10,
            "stuck at {} nodes:\n{}",
            ast_nodes(&program),
            shrunk.shaders[0].source
        );
    }

    #[test]
    fn shrink_point_walks_to_the_baseline_when_everything_fails() {
        let worst = ExecPoint {
            engine: Engine::Compiled,
            spec: true,
            pool: true,
            plan_cache: true,
            tile_skip: true,
            threads: 8,
        };
        assert_eq!(shrink_point(worst, |_| true), ExecPoint::baseline());
        // And stays put when nothing simpler reproduces.
        assert_eq!(shrink_point(worst, |p| *p == worst), worst);
    }

    #[test]
    fn shrink_point_steps_compiled_down_to_batched_when_both_fail() {
        let worst = ExecPoint {
            engine: Engine::Compiled,
            spec: false,
            pool: false,
            plan_cache: false,
            tile_skip: false,
            threads: 1,
        };
        // The failure reproduces on the batched interpreter too, but not
        // on the scalar reference: the shrinker must settle on batched.
        let shrunk = shrink_point(worst, |p| p.engine != Engine::Scalar);
        assert_eq!(shrunk.engine, Engine::Batched);
    }
}
