//! Representative conformance cases for the GPU workload families.
//!
//! One [`ConfCase`] per family — image pyramid, Jacobi stencil, dense
//! training — built from the *real* generated kernel sources the
//! pipelines run, scripted into a short multi-pass draw sequence. Each
//! case goes through the full execution-configuration lattice like any
//! fuzzer-found case, and its serialisation is checked into `corpus/` as
//! a golden, so a change to a workload kernel generator that alters
//! bytes (or breaks engine invariance) fails CI loudly.

use mgpu_gpgpu::{kernels, Encoding, Range};
use mgpu_prop::shadergen::{ConfCase, Step, TexFormat, TextureSpec};
use mgpu_workloads::pipelines::{blur3_kernel, forward_chunk_kernel, softsign_kernel};

use crate::case::CaseFile;
use crate::run::spec_from_source;

/// Edge of every workload conformance case (surface and textures).
const N: u32 = 8;

fn case_file(case: ConfCase) -> CaseFile {
    CaseFile {
        case,
        faults: None,
        recover: false,
        point: None,
    }
}

/// Level-0 of the Gaussian pyramid: the horizontal blur into a scratch
/// texture, then the vertical blur over it to the surface — the two-pass
/// separable structure every pyramid level runs.
fn pyramid_case() -> CaseFile {
    let horizontal = blur3_kernel(N, 1, true);
    let vertical = blur3_kernel(N, 1, false);
    case_file(ConfCase {
        width: N,
        height: N,
        shaders: vec![spec_from_source(&horizontal), spec_from_source(&vertical)],
        textures: vec![
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x9A11_0001,
            },
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x9A11_0002,
            },
        ],
        overrides: Vec::new(),
        steps: vec![
            Step::Upload {
                slot: 0,
                seed: 0x9A11_0001,
                sub: false,
            },
            Step::SetSampler {
                shader: 0,
                name: "u_img".to_owned(),
                unit: 0,
            },
            Step::SetSampler {
                shader: 1,
                name: "u_img".to_owned(),
                unit: 1,
            },
            Step::BindTexture { unit: 0, slot: 0 },
            Step::BindTexture { unit: 1, slot: 1 },
            Step::UseProgram { shader: 0 },
            Step::Target { slot: Some(1) },
            Step::Draw { band: None },
            Step::UseProgram { shader: 1 },
            Step::Target { slot: None },
            Step::Draw { band: None },
            Step::ReadPixels,
            Step::ReadTexture { slot: 1 },
        ],
    })
}

/// Two weighted-Jacobi relaxation sweeps of the inpainting solver: the
/// stencil kernel ping-pongs from the seeded `u` texture through a
/// scratch target and back to the surface.
fn jacobi_case() -> CaseFile {
    let kernel = kernels::jacobi_kernel(
        Encoding::Fp32,
        &Range::new(-1.0, 1.0),
        &Range::new(-0.05, 0.05),
        0.8,
    );
    case_file(ConfCase {
        width: N,
        height: N,
        shaders: vec![spec_from_source(&kernel)],
        textures: vec![
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x1AC0_0001,
            },
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x1AC0_0002,
            },
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x1AC0_0003,
            },
        ],
        overrides: Vec::new(),
        steps: vec![
            Step::Upload {
                slot: 0,
                seed: 0x1AC0_0001,
                sub: false,
            },
            Step::Upload {
                slot: 1,
                seed: 0x1AC0_0002,
                sub: false,
            },
            Step::SetSampler {
                shader: 0,
                name: "u_u".to_owned(),
                unit: 0,
            },
            Step::SetSampler {
                shader: 0,
                name: "u_f".to_owned(),
                unit: 1,
            },
            Step::SetUniform {
                shader: 0,
                name: "u_texel".to_owned(),
                value: [1.0 / N as f32, 0.0, 0.0, 0.0],
            },
            Step::BindTexture { unit: 0, slot: 0 },
            Step::BindTexture { unit: 1, slot: 1 },
            Step::UseProgram { shader: 0 },
            Step::Target { slot: Some(2) },
            Step::Draw { band: None },
            // Second sweep: the scratch result becomes `u`.
            Step::BindTexture { unit: 0, slot: 2 },
            Step::Target { slot: None },
            Step::Draw { band: None },
            Step::ReadPixels,
            Step::ReadTexture { slot: 2 },
        ],
    })
}

/// The front of the training step: one forward-matmul chunk (weights ×
/// batch plus bias intermediate) into a scratch texture, then the
/// softsign activation over it to the surface.
fn training_case() -> CaseFile {
    let range_w = Range::new(-2.0, 2.0);
    let range_x = Range::new(0.0, 1.0);
    let range_b = Range::new(-0.5, 0.5);
    let range_z = Range::new(-17.0, 17.0);
    let range_h = Range::new(-1.0, 1.0);
    let forward = forward_chunk_kernel(
        Encoding::Fp32,
        N,
        4,
        0,
        &range_w,
        &range_x,
        &range_b,
        &range_z,
    );
    let softsign = softsign_kernel(Encoding::Fp32, &range_z, &range_h);
    case_file(ConfCase {
        width: N,
        height: N,
        shaders: vec![spec_from_source(&forward), spec_from_source(&softsign)],
        textures: vec![
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x7EA1_0001,
            },
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x7EA1_0002,
            },
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x7EA1_0003,
            },
            TextureSpec {
                format: TexFormat::Rgba8,
                seed: 0x7EA1_0004,
            },
        ],
        overrides: Vec::new(),
        steps: vec![
            Step::Upload {
                slot: 0,
                seed: 0x7EA1_0001,
                sub: false,
            },
            Step::Upload {
                slot: 1,
                seed: 0x7EA1_0002,
                sub: false,
            },
            Step::Upload {
                slot: 2,
                seed: 0x7EA1_0003,
                sub: false,
            },
            Step::SetSampler {
                shader: 0,
                name: "u_w".to_owned(),
                unit: 0,
            },
            Step::SetSampler {
                shader: 0,
                name: "u_x".to_owned(),
                unit: 1,
            },
            Step::SetSampler {
                shader: 0,
                name: "u_interm".to_owned(),
                unit: 2,
            },
            Step::SetSampler {
                shader: 1,
                name: "u_z".to_owned(),
                unit: 3,
            },
            Step::BindTexture { unit: 0, slot: 0 },
            Step::BindTexture { unit: 1, slot: 1 },
            Step::BindTexture { unit: 2, slot: 2 },
            Step::BindTexture { unit: 3, slot: 3 },
            Step::UseProgram { shader: 0 },
            Step::Target { slot: Some(3) },
            Step::Draw { band: None },
            Step::UseProgram { shader: 1 },
            Step::Target { slot: None },
            Step::Draw { band: None },
            Step::ReadPixels,
            Step::ReadTexture { slot: 3 },
        ],
    })
}

/// The three family cases, named; order matches their corpus numbering
/// (`corpus-013` pyramid, `corpus-014` jacobi, `corpus-015` training).
#[must_use]
pub fn workload_cases() -> Vec<(&'static str, CaseFile)> {
    vec![
        ("corpus-013", pyramid_case()),
        ("corpus-014", jacobi_case()),
        ("corpus-015", training_case()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::format_case;
    use crate::oracle::check_case;

    /// The family cases conform across the whole lattice, and their
    /// serialisations match the checked-in corpus goldens byte for byte.
    /// Run with `MGPU_REGEN_CORPUS=1` to rewrite the goldens after a
    /// deliberate kernel change.
    #[test]
    fn workload_cases_conform_and_match_their_goldens() {
        for (name, file) in workload_cases() {
            if let Some(divergence) = check_case(&file.case) {
                panic!("{name}: lattice divergence: {divergence}");
            }
            let text = format_case(&file);
            let path = format!("{}/corpus/{name}.case", env!("CARGO_MANIFEST_DIR"));
            if std::env::var_os("MGPU_REGEN_CORPUS").is_some() {
                std::fs::write(&path, &text).expect("corpus dir is writable");
                continue;
            }
            let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("{name}: missing golden {path} ({e}); run with MGPU_REGEN_CORPUS=1")
            });
            assert_eq!(
                golden, text,
                "{name}: golden drifted from the generated case; \
                 rerun with MGPU_REGEN_CORPUS=1 if the change is deliberate"
            );
        }
    }
}
