//! The replayable `.case` file format.
//!
//! A `.case` file is a line-oriented, diff-friendly serialisation of a
//! [`ConfCase`] plus the context needed to replay a failure: an optional
//! [`FaultPlan`] (in its canonical `MGPU_FAULTS` spelling) with the
//! recovery switch, and an optional [`ExecPoint`] when the divergence is
//! configuration-specific. Shader text is embedded verbatim between
//! `shader <<<` and `>>>` lines; interface metadata is *not* stored — it
//! is re-derived by parsing ([`spec_from_source`]).
//!
//! Every float is written as the 8-hex-digit bit pattern of its `f32`
//! (`3f800000` is `1.0`), because generated cases deliberately contain
//! NaNs and infinities and a decimal round-trip would corrupt payloads.

use mgpu_gles::FaultPlan;
use mgpu_prop::shadergen::{ConfCase, Step, TexFormat, TextureSpec};

use crate::lattice::ExecPoint;
use crate::run::spec_from_source;

/// A case plus its replay context.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseFile {
    /// The case itself.
    pub case: ConfCase,
    /// Fault plan to install, if the failure involved faults.
    pub faults: Option<FaultPlan>,
    /// Whether the runner's recovery layer was active.
    pub recover: bool,
    /// Pinned execution point, when the divergence was found at (or
    /// shrunk to) a specific configuration.
    pub point: Option<ExecPoint>,
}

fn hex_f32(x: f32) -> String {
    format!("{:08x}", x.to_bits())
}

fn hex_vec4(v: [f32; 4]) -> String {
    v.iter().map(|&x| hex_f32(x)).collect::<Vec<_>>().join(" ")
}

/// Serialises a [`CaseFile`] into the `.case` text format.
#[must_use]
pub fn format_case(file: &CaseFile) -> String {
    let mut out = String::new();
    out.push_str("mgpu-case v1\n");
    out.push_str(&format!("size {} {}\n", file.case.width, file.case.height));
    if let Some(point) = &file.point {
        out.push_str(&format!("point {point}\n"));
    }
    if let Some(plan) = &file.faults {
        out.push_str(&format!("faults {plan}\n"));
        out.push_str(&format!(
            "recover {}\n",
            if file.recover { "on" } else { "off" }
        ));
    }
    for shader in &file.case.shaders {
        out.push_str("shader <<<\n");
        out.push_str(&shader.source);
        if !shader.source.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(">>>\n");
    }
    for tex in &file.case.textures {
        let fmt = match tex.format {
            TexFormat::Rgba8 => "rgba8",
            TexFormat::Rgb8 => "rgb8",
        };
        out.push_str(&format!("texture {fmt} {}\n", tex.seed));
    }
    for (name, corners) in &file.case.overrides {
        let words: Vec<String> = corners
            .iter()
            .flat_map(|corner| corner.iter().map(|&x| hex_f32(x)))
            .collect();
        out.push_str(&format!("override {name} {}\n", words.join(" ")));
    }
    for step in &file.case.steps {
        out.push_str(&format_step(step));
        out.push('\n');
    }
    out
}

fn format_step(step: &Step) -> String {
    match step {
        Step::UseProgram { shader } => format!("step use {shader}"),
        Step::Relink { shader } => format!("step relink {shader}"),
        Step::SetUniform {
            shader,
            name,
            value,
        } => format!("step uniform {shader} {name} {}", hex_vec4(*value)),
        Step::SetSampler { shader, name, unit } => {
            format!("step sampler {shader} {name} {unit}")
        }
        Step::BindTexture { unit, slot } => format!("step bind {unit} {slot}"),
        Step::Upload { slot, seed, sub } => {
            format!("step upload {slot} {seed} {}", u8::from(*sub))
        }
        Step::Target { slot: None } => "step target surface".to_owned(),
        Step::Target { slot: Some(slot) } => format!("step target {slot}"),
        Step::Clear { rgba } => format!("step clear {}", hex_vec4(*rgba)),
        Step::Draw { band: None } => "step draw".to_owned(),
        Step::Draw {
            band: Some((y0, y1)),
        } => format!("step draw {y0} {y1}"),
        Step::CopyOut { slot, sub } => format!("step copy {slot} {}", u8::from(*sub)),
        Step::ReadPixels => "step readpixels".to_owned(),
        Step::ReadTexture { slot } => format!("step readtexture {slot}"),
    }
}

struct Parser<'a> {
    words: std::str::SplitWhitespace<'a>,
    line_no: usize,
}

impl<'a> Parser<'a> {
    fn word(&mut self, what: &str) -> Result<&'a str, String> {
        self.words
            .next()
            .ok_or_else(|| format!("line {}: missing {what}", self.line_no))
    }

    fn num<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, String> {
        let word = self.word(what)?;
        word.parse()
            .map_err(|_| format!("line {}: bad {what} `{word}`", self.line_no))
    }

    fn f32(&mut self, what: &str) -> Result<f32, String> {
        let word = self.word(what)?;
        let bits = u32::from_str_radix(word, 16)
            .map_err(|_| format!("line {}: bad {what} bits `{word}`", self.line_no))?;
        if word.len() != 8 {
            return Err(format!(
                "line {}: {what} must be 8 hex digits, got `{word}`",
                self.line_no
            ));
        }
        Ok(f32::from_bits(bits))
    }

    fn vec4(&mut self, what: &str) -> Result<[f32; 4], String> {
        Ok([
            self.f32(what)?,
            self.f32(what)?,
            self.f32(what)?,
            self.f32(what)?,
        ])
    }

    fn done(mut self) -> Result<(), String> {
        match self.words.next() {
            Some(extra) => Err(format!(
                "line {}: unexpected trailing `{extra}`",
                self.line_no
            )),
            None => Ok(()),
        }
    }
}

/// Parses the `.case` text format back into a [`CaseFile`], re-deriving
/// shader interface metadata from the embedded source.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_case(text: &str) -> Result<CaseFile, String> {
    let mut lines = text.lines().enumerate();
    let mut file = CaseFile {
        case: ConfCase {
            width: 0,
            height: 0,
            shaders: Vec::new(),
            textures: Vec::new(),
            overrides: Vec::new(),
            steps: Vec::new(),
        },
        faults: None,
        recover: false,
        point: None,
    };
    let mut saw_header = false;
    let mut saw_size = false;
    while let Some((index, line)) = lines.next() {
        let line_no = index + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !saw_header {
            if trimmed != "mgpu-case v1" {
                return Err(format!("line {line_no}: expected `mgpu-case v1` header"));
            }
            saw_header = true;
            continue;
        }
        let (keyword, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (trimmed, ""),
        };
        let mut p = Parser {
            words: rest.split_whitespace(),
            line_no,
        };
        match keyword {
            "size" => {
                file.case.width = p.num("width")?;
                file.case.height = p.num("height")?;
                p.done()?;
                saw_size = true;
            }
            "point" => {
                file.point =
                    Some(ExecPoint::parse(rest).map_err(|e| format!("line {line_no}: {e}"))?);
            }
            "faults" => {
                file.faults =
                    Some(FaultPlan::parse(rest).map_err(|e| format!("line {line_no}: {e}"))?);
            }
            "recover" => {
                file.recover = match rest {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("line {line_no}: bad recover switch `{other}`")),
                };
            }
            "shader" => {
                if rest != "<<<" {
                    return Err(format!("line {line_no}: expected `shader <<<`"));
                }
                let mut source = String::new();
                let mut closed = false;
                for (_, body) in lines.by_ref() {
                    if body == ">>>" {
                        closed = true;
                        break;
                    }
                    source.push_str(body);
                    source.push('\n');
                }
                if !closed {
                    return Err(format!("line {line_no}: unterminated shader block"));
                }
                file.case.shaders.push(spec_from_source(&source));
            }
            "texture" => {
                let format = match p.word("texture format")? {
                    "rgba8" => TexFormat::Rgba8,
                    "rgb8" => TexFormat::Rgb8,
                    other => {
                        return Err(format!("line {line_no}: unknown texture format `{other}`"))
                    }
                };
                let seed = p.num("texture seed")?;
                p.done()?;
                file.case.textures.push(TextureSpec { format, seed });
            }
            "override" => {
                let name = p.word("varying name")?.to_owned();
                let mut corners = [[0.0f32; 4]; 4];
                for corner in &mut corners {
                    *corner = p.vec4("override component")?;
                }
                p.done()?;
                file.case.overrides.push((name, corners));
            }
            "step" => {
                let step = parse_step(&mut p)?;
                p.done()?;
                file.case.steps.push(step);
            }
            other => return Err(format!("line {line_no}: unknown keyword `{other}`")),
        }
    }
    if !saw_header {
        return Err("empty case file".to_owned());
    }
    if !saw_size {
        return Err("case file has no `size` line".to_owned());
    }
    Ok(file)
}

fn parse_step(p: &mut Parser<'_>) -> Result<Step, String> {
    let verb = p.word("step verb")?;
    Ok(match verb {
        "use" => Step::UseProgram {
            shader: p.num("shader index")?,
        },
        "relink" => Step::Relink {
            shader: p.num("shader index")?,
        },
        "uniform" => Step::SetUniform {
            shader: p.num("shader index")?,
            name: p.word("uniform name")?.to_owned(),
            value: p.vec4("uniform component")?,
        },
        "sampler" => Step::SetSampler {
            shader: p.num("shader index")?,
            name: p.word("sampler name")?.to_owned(),
            unit: p.num("texture unit")?,
        },
        "bind" => Step::BindTexture {
            unit: p.num("texture unit")?,
            slot: p.num("texture slot")?,
        },
        "upload" => Step::Upload {
            slot: p.num("texture slot")?,
            seed: p.num("texel seed")?,
            sub: p.num::<u8>("sub flag")? != 0,
        },
        "target" => {
            let word = p.word("target")?;
            if word == "surface" {
                Step::Target { slot: None }
            } else {
                Step::Target {
                    slot: Some(
                        word.parse()
                            .map_err(|_| format!("line {}: bad target slot `{word}`", p.line_no))?,
                    ),
                }
            }
        }
        "clear" => Step::Clear {
            rgba: p.vec4("clear component")?,
        },
        "draw" => match p.words.next() {
            None => Step::Draw { band: None },
            Some(word) => {
                let y0 = word
                    .parse()
                    .map_err(|_| format!("line {}: bad band row `{word}`", p.line_no))?;
                let y1 = p.num("band end row")?;
                Step::Draw {
                    band: Some((y0, y1)),
                }
            }
        },
        "copy" => Step::CopyOut {
            slot: p.num("texture slot")?,
            sub: p.num::<u8>("sub flag")? != 0,
        },
        "readpixels" => Step::ReadPixels,
        "readtexture" => Step::ReadTexture {
            slot: p.num("texture slot")?,
        },
        other => return Err(format!("line {}: unknown step `{other}`", p.line_no)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_prop::run_cases;
    use mgpu_prop::shadergen::gen_case;

    #[test]
    fn hex_floats_round_trip_nan_payloads() {
        for x in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::NEG_INFINITY] {
            let mut p = Parser {
                words: hex_f32(x).leak().split_whitespace(),
                line_no: 1,
            };
            assert_eq!(p.f32("x").unwrap().to_bits(), x.to_bits());
        }
        let nan = f32::from_bits(0x7fc0_1234);
        let mut p = Parser {
            words: hex_f32(nan).leak().split_whitespace(),
            line_no: 1,
        };
        assert_eq!(p.f32("x").unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn generated_cases_round_trip() {
        run_cases(48, |rng| {
            let file = CaseFile {
                case: gen_case(rng),
                faults: if rng.bool() {
                    Some(crate::oracle::random_recovery_plan(rng))
                } else {
                    None
                },
                recover: rng.bool(),
                point: if rng.bool() {
                    Some(*rng.pick(&crate::lattice::lattice()))
                } else {
                    None
                },
            };
            // Compare via the canonical text: generated uniform values
            // deliberately include NaNs, which defeat derived `PartialEq`
            // even though the bits round-trip exactly.
            let text = format_case(&file);
            let parsed = parse_case(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(format_case(&parsed), text);
            assert_eq!(parsed.case.shaders, file.case.shaders);
            assert_eq!(parsed.faults, file.faults);
            assert_eq!(parsed.point, file.point);
        });
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_case("").is_err());
        assert!(parse_case("mgpu-case v1\n").is_err()); // no size
        assert!(parse_case("mgpu-case v2\nsize 4 4\n").is_err());
        assert!(parse_case("mgpu-case v1\nsize 4\n").is_err());
        assert!(parse_case("mgpu-case v1\nsize 4 4\nstep warp 1\n").is_err());
        assert!(parse_case("mgpu-case v1\nsize 4 4\nstep clear 0 0 0 0\n").is_err());
        assert!(parse_case("mgpu-case v1\nsize 4 4\nshader <<<\nvoid main() {}\n").is_err());
        assert!(parse_case("mgpu-case v1\nsize 4 4\ntexture rgba16 1\n").is_err());
        assert!(parse_case("mgpu-case v1\nsize 4 4 9\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "mgpu-case v1\n\n# a comment\nsize 4 4\nstep readpixels\n";
        let file = parse_case(text).unwrap();
        assert_eq!(file.case.steps, vec![Step::ReadPixels]);
    }
}
