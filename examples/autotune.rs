//! Autotune the optimisation configuration for both benchmarks on both
//! simulated boards — automating the paper's manual incremental
//! exploration.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use mgpu::gpgpu::tune::{tune_sgemm, tune_sum};
use mgpu::workloads::random_matrix;
use mgpu::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024u32;
    let a = random_matrix(n as usize, 2017, 0.0, 1.0);
    let b = random_matrix(n as usize, 2016, 0.0, 1.0);

    for platform in Platform::paper_pair() {
        println!("=== {} ===", platform.name);

        let sum = tune_sum(&platform, n, a.data(), b.data(), 5, 20)?;
        println!("sum ({} configurations):", sum.ranked.len());
        for p in sum.ranked.iter().take(4) {
            println!("  {:26} {:>12}", p.name, p.period.to_string());
        }
        println!(
            "  -> best `{}`, {:.1}x over the vsync'd baseline",
            sum.best().name,
            sum.speedup_over("swap+tex").unwrap_or(f64::NAN)
        );

        let sgemm = tune_sgemm(
            &platform,
            n,
            a.data(),
            b.data(),
            &[1, 2, 4, 8, 16, 32],
            1,
            3,
        )?;
        println!(
            "sgemm ({} configurations; block 32 skipped by shader limits):",
            sgemm.ranked.len()
        );
        for p in sgemm.ranked.iter().take(4) {
            println!("  {:26} {:>12}", p.name, p.period.to_string());
        }
        println!(
            "  -> best `{}` (block {})\n",
            sgemm.best().name,
            sgemm.best().block
        );
    }
    Ok(())
}
