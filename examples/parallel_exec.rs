//! Parallel functional execution: the `MGPU_THREADS` knob.
//!
//! Functional fragment execution (the part that computes actual pixel
//! values) can run on a host worker pool; the timing simulation is
//! untouched. This example runs the same kernel serially and at four
//! threads and demonstrates both guarantees: byte-identical outputs and
//! an unchanged simulated time.
//!
//! Run with `cargo run --release --example parallel_exec`; set
//! `MGPU_THREADS` to control the default thread count of every context.

use mgpu::gpgpu::Sum;
use mgpu::{ExecConfig, Gl, OptConfig, Platform, SimTime};

fn run(threads: usize) -> (Vec<f32>, SimTime) {
    let n = 64;
    let a = vec![0.25f32; (n * n) as usize];
    let b: Vec<f32> = (0..n * n).map(|i| (i % 89) as f32 / 178.0).collect();

    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    gl.set_exec_config(ExecConfig::with_threads(threads));
    // Equivalent, through the optimisation config:
    //   OptConfig::baseline().with_threads(threads)
    let cfg = OptConfig::baseline().without_swap();
    let mut sum = Sum::builder(n)
        .build(&mut gl, &cfg, &a, &b)
        .expect("builds");
    sum.step(&mut gl).expect("runs");
    let result = sum.result(&mut gl).expect("result");
    gl.finish();
    (result, gl.elapsed())
}

fn main() {
    println!(
        "default exec config: {} thread(s) (MGPU_THREADS or available parallelism)",
        ExecConfig::from_env().threads()
    );

    let (serial, t_serial) = run(1);
    let (parallel, t_parallel) = run(4);

    assert!(serial
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    assert_eq!(t_serial, t_parallel);
    println!(
        "serial and 4-thread outputs are bit-identical ({} values)",
        serial.len()
    );
    println!("simulated time is thread-count-invariant: {t_serial:?}");
    println!("sum[0] = {}", serial[0]);
}
