//! The paper's §IV case study: multi-pass blocked matrix multiplication
//! with double-buffered intermediate textures, on both simulated boards.
//!
//! Prints the per-pass schedule so the deferred pipeline and the
//! double-buffering are visible.
//!
//! ```sh
//! cargo run --example sgemm_blocked
//! ```

use mgpu::gpgpu::Sgemm;
use mgpu::workloads::{max_abs_error, random_matrix, sgemm_blocked_ref};
use mgpu::{Gl, OptConfig, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64u32;
    let block = 8u32;
    let a = random_matrix(n as usize, 11, 0.0, 1.0);
    let b = random_matrix(n as usize, 12, 0.0, 1.0);
    let want = sgemm_blocked_ref(&a, &b, block as usize);

    for platform in Platform::paper_pair() {
        let mut gl = Gl::new(platform.clone(), n, n);
        // Per the paper's findings, multi-pass sgemm renders to the
        // framebuffer (double-buffered) and swaps at interval 0.
        let cfg = OptConfig::baseline()
            .with_swap_interval_0()
            .with_framebuffer_rendering();
        let mut sgemm = Sgemm::new(&mut gl, &cfg, n, block, a.data(), b.data())?;

        println!(
            "{}: {}x{n} sgemm, block {block} -> {} passes",
            platform.name,
            n,
            sgemm.passes()
        );
        sgemm.multiply(&mut gl)?;
        let got = sgemm.result(&mut gl)?;
        let err = max_abs_error(&got, want.data());

        // Show the pass schedule of the multiplication.
        let report = gl.report();
        for f in report.frames.iter().filter(|f| f.label.contains("pass")) {
            println!(
                "  {:22} frag {:>12} .. {:>12}  copy {}",
                f.label,
                f.frag_start.to_string(),
                f.frag_end.to_string(),
                f.copy
                    .map(|(s, e)| format!("{s} .. {e}"))
                    .unwrap_or_else(|| "-".to_owned()),
            );
        }
        println!("  max |gpu - cpu| = {err:.2e}");
        println!("  simulated total = {}\n", gl.elapsed());
        assert!(err < 0.05, "sgemm must match the blocked CPU reference");
    }
    println!("OK");
    Ok(())
}
