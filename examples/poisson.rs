//! Numerical-solver workload from the paper's motivation (it cites PDE
//! solvers and finite-element simulations): solve a 2D Poisson problem by
//! weighted-Jacobi iteration, entirely through the OpenGL ES 2 GPGPU
//! pipeline, and compare convergence against the CPU.
//!
//! ```sh
//! cargo run --release --example poisson
//! ```

use mgpu::gpgpu::JacobiSolver;
use mgpu::workloads::{jacobi_step_ref, max_abs_error, Matrix};
use mgpu::{Gl, OptConfig, Platform, Range};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    let omega = 0.9f32;
    let iterations = 40usize;

    // A hot spot in the middle of the domain (h²-scaled source term).
    let mut f = Matrix::filled(n, 0.0);
    for i in n / 2 - 4..n / 2 + 4 {
        for j in n / 2 - 4..n / 2 + 4 {
            f.set(i, j, 0.05);
        }
    }
    let u0 = Matrix::filled(n, 0.0);

    // CPU reference trajectory.
    let mut cpu = u0.clone();
    for _ in 0..iterations {
        cpu = jacobi_step_ref(&cpu, &f, omega);
    }

    for platform in Platform::paper_pair() {
        let mut gl = Gl::new(platform.clone(), n as u32, n as u32);
        let cfg = OptConfig::baseline().without_swap();
        let mut solver = JacobiSolver::builder(n as u32)
            .omega(omega)
            .range_f(Range::unit())
            .build(&mut gl, &cfg, u0.data(), f.data())?;
        solver.iterate(&mut gl, iterations)?;
        let gpu = solver.solution(&mut gl)?;

        let err = max_abs_error(&gpu, cpu.data());
        let peak = gpu.iter().cloned().fold(0.0f32, f32::max);
        println!(
            "{}: {iterations} Jacobi iterations on {n}x{n}: peak u = {peak:.4}, max |gpu - cpu| = {err:.2e}, simulated {}",
            platform.name,
            gl.elapsed()
        );
        assert!(err < 5e-4, "GPU trajectory must track the CPU");
        assert!(peak > 0.1, "heat must spread from the source");
    }
    println!("OK");
    Ok(())
}
