//! Computer-vision workload from the paper's motivation: a 3x3 Gaussian
//! blur over an image, run as a GPGPU fragment pass and iterated through
//! the double-buffered output chain (a small diffusion pipeline).
//!
//! ```sh
//! cargo run --example image_convolution
//! ```

use mgpu::gpgpu::Convolution3x3;
use mgpu::workloads::{conv3x3_ref, random_image_rgba8};
use mgpu::{Gl, OptConfig, Platform};

const GAUSSIAN: [f32; 9] = [
    0.0625, 0.125, 0.0625, //
    0.125, 0.25, 0.125, //
    0.0625, 0.125, 0.0625,
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (128u32, 128u32);
    let image = random_image_rgba8(w, h, 42);

    let mut gl = Gl::new(Platform::sgx_545(), w, h);
    let cfg = OptConfig::baseline().without_swap();
    let mut conv = Convolution3x3::new(&mut gl, &cfg, w, h, &GAUSSIAN, &image)?;

    // Single pass: verify against the CPU reference.
    conv.apply(&mut gl)?;
    let gpu = conv.result(&mut gl)?;
    let cpu = conv3x3_ref(&image, w, h, &GAUSSIAN);
    let worst = gpu
        .iter()
        .zip(&cpu)
        .map(|(g, c)| (i16::from(*g) - i16::from(*c)).unsigned_abs())
        .max()
        .unwrap_or(0);
    println!(
        "single 3x3 blur on {}x{h}: worst channel delta vs CPU = {worst}",
        w
    );
    assert!(worst <= 1);

    // Iterated blur: feed the output back five more times.
    conv.apply_iterated(&mut gl, 5)?;
    let blurred = conv.result(&mut gl)?;
    let spread = |img: &[u8]| {
        let (mut lo, mut hi) = (255u8, 0u8);
        for px in img.chunks_exact(4) {
            lo = lo.min(px[0]);
            hi = hi.max(px[0]);
        }
        i16::from(hi) - i16::from(lo)
    };
    println!(
        "red-channel spread: original {} -> after 6 blurs {}",
        spread(&image),
        spread(&blurred)
    );
    assert!(
        spread(&blurred) < spread(&image),
        "blurring must contract the range"
    );
    println!("simulated time: {}", gl.elapsed());
    println!("OK");
    Ok(())
}
