//! Quickstart: run a saxpy kernel (`Y = alpha*X + Y`) on a simulated
//! Raspberry Pi GPU through the OpenGL ES 2 GPGPU pipeline, and compare
//! against the CPU.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mgpu::gpgpu::Saxpy;
use mgpu::workloads::{max_abs_error, random_matrix, saxpy_ref};
use mgpu::{Gl, OptConfig, Platform, Range};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64x64 problem on a simulated VideoCore IV (Raspberry Pi).
    let n = 64u32;
    let alpha = 0.5f32;
    let x = random_matrix(n as usize, 1, 0.0, 1.0);
    let y = random_matrix(n as usize, 2, 0.0, 1.0);

    // The GL context is a full software OpenGL ES 2 stack: state machine,
    // shader compiler, rasteriser, and a TBDR timing model.
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);

    // Optimised configuration: no eglSwapBuffers (max kernel-launch rate).
    let cfg = OptConfig::baseline().without_swap();
    let mut op = Saxpy::new(
        &mut gl,
        &cfg,
        n,
        alpha,
        x.data(),
        y.data(),
        Range::unit(),        // X values live in [0, 1)
        Range::new(0.0, 4.0), // Y / results live in [0, 4)
    )?;

    op.step(&mut gl)?;
    let gpu = op.result(&mut gl)?;

    let cpu = saxpy_ref(alpha, &x, &y);
    let err = max_abs_error(&gpu, cpu.data());
    println!("saxpy on {}:", gl.platform().name);
    println!("  elements        : {}", gpu.len());
    println!("  max |gpu - cpu| : {err:.2e}  (RGBA8 encoding quantisation)");
    println!("  simulated time  : {}", gl.elapsed());

    assert!(
        err < 1e-4,
        "GPU result should match CPU within quantisation"
    );
    println!("OK");
    Ok(())
}
