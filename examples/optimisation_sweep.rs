//! Walk the paper's incremental optimisation ladder for the `sum` kernel
//! on both simulated boards, printing the speedup after each step — a
//! miniature of Figs. 3 and 4.
//!
//! ```sh
//! cargo run --release --example optimisation_sweep
//! ```

use mgpu::gles::BufferUsage;
use mgpu::gpgpu::{steady_period, Sum};
use mgpu::workloads::random_matrix;
use mgpu::{Gl, OptConfig, Platform, SimTime};

fn measure(platform: &Platform, cfg: &OptConfig, n: u32) -> SimTime {
    let a = random_matrix(n as usize, 5, 0.0, 1.0);
    let b = random_matrix(n as usize, 6, 0.0, 1.0);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_functional(false); // timing-only: full size stays cheap
    let mut sum = Sum::builder(n)
        .build(&mut gl, cfg, a.data(), b.data())
        .expect("sum builds");
    steady_period(&mut gl, 10, 50, |gl| sum.step(gl)).expect("steady period")
}

fn main() {
    let n = 1024u32;
    let ladder: [(&str, OptConfig); 5] = [
        ("baseline (ES2 best practices)", OptConfig::baseline()),
        (
            "+ eglSwapInterval(0)",
            OptConfig::baseline().with_swap_interval_0(),
        ),
        ("+ no eglSwapBuffers", OptConfig::baseline().without_swap()),
        (
            "+ VBO (static hint)",
            OptConfig::baseline()
                .without_swap()
                .with_vbo(BufferUsage::StaticDraw),
        ),
        (
            "+ fp24 kernel",
            OptConfig::baseline()
                .without_swap()
                .with_vbo(BufferUsage::StaticDraw)
                .with_fp24(),
        ),
    ];

    for platform in Platform::paper_pair() {
        println!(
            "{} — sum {n}x{n}, simulated steady-state per kernel:",
            platform.name
        );
        let baseline = measure(&platform, &ladder[0].1, n);
        for (name, cfg) in &ladder {
            let t = measure(&platform, cfg, n);
            println!(
                "  {:32} {:>12}   {:>7.2}x",
                name,
                t.to_string(),
                baseline.as_secs_f64() / t.as_secs_f64()
            );
        }
        println!();
    }
}
