//! # mgpu — GPGPU over OpenGL ES 2 on simulated low-end mobile GPUs
//!
//! Umbrella crate of the mgpu workspace, a production-quality Rust
//! reproduction of *"Optimisation Opportunities and Evaluation for GPGPU
//! Applications on Low-End Mobile GPUs"* (Trompouki & Kosmidis, DATE
//! 2017). It re-exports the whole stack:
//!
//! * [`tbdr`] — the tile-based deferred-rendering GPU timing simulator
//!   with the VideoCore IV and PowerVR SGX 545 platform models;
//! * [`shader`] — the GLSL-ES-like fragment-kernel compiler, optimiser,
//!   cost model and interpreter;
//! * [`gles`] — the software OpenGL ES 2.0 + EGL driver;
//! * [`gpgpu`] — the paper's contribution: the float↔RGBA8 encoding, the
//!   optimisation-configuration space and the benchmark operators;
//! * [`workloads`] — input generators, CPU references, error metrics and
//!   the GPU workload families (image pyramid, Jacobi stencil solver,
//!   dense-layer training loop).
//!
//! The most commonly used items are re-exported at the crate root.
//!
//! # Examples
//!
//! ```
//! use mgpu::{Gl, OptConfig, Platform, Sum};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gl = Gl::new(Platform::videocore_iv(), 16, 16);
//! let a = vec![0.25f32; 256];
//! let b = vec![0.5f32; 256];
//! let mut sum = Sum::builder(16).build(&mut gl, &OptConfig::baseline(), &a, &b)?;
//! sum.step(&mut gl)?;
//! assert!((sum.result(&mut gl)?[0] - 0.75).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use mgpu_gles as gles;
pub use mgpu_gpgpu as gpgpu;
pub use mgpu_shader as shader;
pub use mgpu_tbdr as tbdr;
pub use mgpu_workloads as workloads;

pub use mgpu_gles::{
    DrawQuad, Engine, ExecConfig, FaultEvent, FaultKind, FaultPlan, FaultSite, Gl, GlError,
    TextureFormat,
};
pub use mgpu_gpgpu::{
    Convolution3x3, Encoding, GpgpuError, OptConfig, PipelineJob, Range, RecoverableJob,
    RecoveryEvent, RenderStrategy, ResilienceConfig, ResilientRunner, RetryPolicy, Saxpy, Sgemm,
    SgemmJob, Sum, SumJob, SyncStrategy,
};
pub use mgpu_tbdr::{Platform, SimTime};
pub use mgpu_workloads::{DenseTraining, GaussianPyramid, JacobiInpaint, Workload, WorkloadJob};
