//! Integration coverage of the beyond-the-paper extensions through the
//! umbrella crate's re-exports: energy accounting, trace export, the
//! autotuner and the generic pipeline working together.

use mgpu::gpgpu::tune::tune_sum;
use mgpu::gpgpu::{Pipeline, Source};
use mgpu::tbdr::{chrome_trace, EnergyModel};
use mgpu::workloads::random_matrix;
use mgpu::{Encoding, Gl, OptConfig, Platform, Range, SyncStrategy};

#[test]
fn energy_falls_along_the_optimisation_ladder() {
    // The paper's speedups double as energy savings: less vsync idling
    // (static power) for the same dynamic work.
    let n = 256u32;
    let a = random_matrix(n as usize, 1, 0.0, 1.0);
    let b = random_matrix(n as usize, 2, 0.0, 1.0);
    let platform = Platform::videocore_iv();
    let model = EnergyModel::for_platform(&platform);
    let measure = |cfg: &OptConfig| {
        let mut gl = Gl::new(platform.clone(), n, n);
        gl.set_functional(false);
        let mut sum = mgpu::Sum::builder(n)
            .build(&mut gl, cfg, a.data(), b.data())
            .unwrap();
        sum.run(&mut gl, 30).unwrap();
        gl.finish();
        model.estimate(&gl.report(), &platform).total_mj()
    };
    let baseline = measure(&OptConfig::baseline());
    let optimised = measure(&OptConfig::baseline().without_swap().with_fp24());
    assert!(
        optimised < baseline / 2.0,
        "ladder should at least halve energy: {baseline:.2} -> {optimised:.2} mJ"
    );
}

#[test]
fn chrome_trace_of_a_real_pipeline_is_well_formed() {
    let n = 16u32;
    let x = vec![0.5f32; 256];
    let enc = Encoding::Fp32;
    let halve = format!(
        "uniform sampler2D u_x;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float v = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(v * 0.5);\n}}\n",
        enc.decode_fn_source(),
        enc.encode_fn_source()
    );
    let mut gl = Gl::new(Platform::sgx_545(), n, n);
    let mut p = Pipeline::builder(n)
        .input("x", &x, Range::unit())
        .pass(&halve, &[("u_x", Source::Input("x".into()))], &[])
        .pass(&halve, &[("u_x", Source::Previous)], &[])
        .build(&mut gl, &OptConfig::baseline().without_swap())
        .unwrap();
    p.run_once(&mut gl).unwrap();
    gl.finish();
    let json = chrome_trace(&gl.report());
    assert!(json.contains("traceEvents"));
    assert!(json.contains("[fragment]"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // Two pipeline passes -> at least two fragment slices.
    assert!(json.matches("[fragment]").count() >= 2);
}

#[test]
fn tuner_and_manual_exploration_agree() {
    // The autotuner's winner must match the config the paper-claims tests
    // assert directly.
    let n = 256u32;
    let a = random_matrix(n as usize, 3, 0.0, 1.0);
    let b = random_matrix(n as usize, 4, 0.0, 1.0);
    let r = tune_sum(&Platform::sgx_545(), n, a.data(), b.data(), 5, 20).unwrap();
    assert_eq!(r.best().config.sync, SyncStrategy::NoSwap);
    assert_eq!(
        r.best().config.target,
        mgpu::RenderStrategy::Texture,
        "SGX must never pick the copy path"
    );
}

#[test]
fn umbrella_reexports_cover_the_public_surface() {
    // Spot-check that the umbrella crate exposes each layer.
    let _ = mgpu::Platform::paper_pair();
    let _ = mgpu::shader::compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
    let _ = mgpu::Encoding::Fp24.texture_format();
    let _ = mgpu::SimTime::from_millis(1);
    let _ = mgpu::gles::TextureFilter::Linear;
}
