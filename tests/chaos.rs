//! Chaos property tests: random fault plans against every job type on both
//! platforms. The invariant under ANY injected fault sequence:
//!
//! * the resilient runner either returns bytes **identical** to a
//!   fault-free run, or a **typed error** carrying the fault trail —
//!   never a panic, never silent corruption (checksums on);
//! * the same seed reproduces the same fault trail, the same recovery
//!   path and the same outcome;
//! * an installed-but-empty plan perturbs neither bytes nor timing.

use mgpu::gpgpu::{Pipeline, Source};
use mgpu::workloads::{
    verify_output, DenseTraining, GaussianPyramid, JacobiInpaint, Workload, WorkloadJob,
};
use mgpu::{
    Encoding, FaultPlan, Gl, GpgpuError, OptConfig, PipelineJob, Platform, Range, RecoverableJob,
    ResilienceConfig, ResilientRunner, RetryPolicy, SgemmJob, SimTime, Sum, SumJob,
};
use mgpu_prop::{run_cases, Rng};

const N: u32 = 8;

fn cfg() -> OptConfig {
    OptConfig::baseline().without_swap()
}

fn gen_platform(rng: &mut Rng) -> Platform {
    if rng.bool() {
        Platform::videocore_iv()
    } else {
        Platform::sgx_545()
    }
}

fn gen_inputs(rng: &mut Rng) -> (Vec<f32>, Vec<f32>) {
    let a = (0..N * N).map(|_| rng.f32(0.0, 0.9)).collect();
    let b = (0..N * N).map(|_| rng.f32(0.0, 0.8)).collect();
    (a, b)
}

/// A random plan mixing scheduled and probabilistic faults of every class.
fn gen_plan(rng: &mut Rng) -> FaultPlan {
    let mut plan = FaultPlan::seeded(rng.next_u64());
    for _ in 0..rng.usize_in(0, 3) {
        plan = plan.ctx_loss_at_draw(rng.u64_in(0, 12));
    }
    for _ in 0..rng.usize_in(0, 3) {
        plan = plan.oom_at_upload(rng.u64_in(0, 8));
    }
    for _ in 0..rng.usize_in(0, 2) {
        plan = plan.corrupt_at_draw(rng.u64_in(0, 12));
    }
    if rng.bool() {
        plan = plan.compile_fail_at(rng.u64_in(0, 2));
    }
    if rng.bool() {
        plan = plan.p_ctx_loss(rng.f64(0.0, 0.15));
    }
    if rng.bool() {
        plan = plan.p_corrupt(rng.f64(0.0, 0.1));
    }
    plan
}

fn scale_kernel(factor: f32) -> String {
    let enc = Encoding::Fp32;
    format!(
        "uniform sampler2D u_x;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float x = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(x * {factor:?});\n}}\n",
        enc.decode_fn_source(),
        enc.encode_fn_source()
    )
}

fn gen_workload(rng: &mut Rng) -> Box<dyn Workload> {
    let seed = rng.next_u64();
    match rng.u32_in(0, 3) {
        0 => Box::new(GaussianPyramid::new(N, *rng.pick(&[1u32, 2, 3]), seed)),
        1 => Box::new(JacobiInpaint::new(N, rng.u32_in(1, 9), seed)),
        _ => Box::new(DenseTraining::new(
            N,
            *rng.pick(&[1u32, 2, 4, 8]),
            rng.u32_in(1, 4),
            seed,
        )),
    }
}

fn gen_job(rng: &mut Rng, a: &[f32], b: &[f32]) -> Box<dyn RecoverableJob> {
    match rng.u32_in(0, 6) {
        0 => Box::new(SumJob::new(&cfg(), N, a, b, 3).dependent(rng.bool())),
        1 => Box::new(SgemmJob::new(&cfg(), N, *rng.pick(&[1, 2, 4]), a, b)),
        2..=4 => Box::new(WorkloadJob::new(&cfg(), gen_workload(rng).as_ref())),
        _ => {
            let builder = Pipeline::builder(N)
                .input("x", a, Range::unit())
                .pass(
                    &scale_kernel(0.5),
                    &[("u_x", Source::Input("x".into()))],
                    &[],
                )
                .pass(&scale_kernel(0.5), &[("u_x", Source::Previous)], &[])
                .pass(&scale_kernel(2.0), &[("u_x", Source::Previous)], &[]);
            Box::new(PipelineJob::new(&cfg(), builder))
        }
    }
}

fn resilience() -> ResilienceConfig {
    ResilienceConfig {
        verify_checksums: true,
        retry: RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        },
        ..ResilienceConfig::default()
    }
}

/// Any random fault plan, any job, either platform: the run recovers to
/// the exact fault-free bytes or fails with a typed error that carries
/// the fault trail.
#[test]
fn chaos_recovers_byte_identical_or_errors_typed() {
    run_cases(48, |rng| {
        let platform = gen_platform(rng);
        let (a, b) = gen_inputs(rng);
        let plan = gen_plan(rng);

        let mut job = gen_job(rng, &a, &b);
        let mut clean_gl = Gl::new(platform.clone(), N, N);
        let want = ResilientRunner::new(resilience())
            .run(&mut clean_gl, job.as_mut())
            .expect("fault-free run succeeds");

        let mut gl = Gl::new(platform, N, N);
        gl.install_faults(plan.clone());
        let mut runner = ResilientRunner::new(resilience());
        match runner.run(&mut gl, job.as_mut()) {
            Ok(bytes) => assert_eq!(bytes, want, "recovered bytes diverged under plan {plan:?}"),
            Err(GpgpuError::Exhausted(e)) => {
                assert!(
                    !e.fault_trail.is_empty(),
                    "give-up without any injected fault under plan {plan:?}"
                );
            }
            Err(other) => panic!("untyped/unexpected failure {other} under plan {plan:?}"),
        }
    });
}

/// Tile-signature skipping under chaos: a faulted run with
/// `MGPU_TILE_SKIP=on` either recovers to the exact bytes of a
/// fault-free skip-OFF run or errors typed. Context loss flushes the
/// signature cache, so replays can never resurrect pre-loss tiles, and
/// corrupted draws taint their stored bytes the same way they taint the
/// framebuffer — checksummed retries re-shade both.
#[test]
fn chaos_tile_skip_recovers_to_skip_off_bytes() {
    run_cases(32, |rng| {
        let platform = gen_platform(rng);
        let (a, b) = gen_inputs(rng);
        let plan = gen_plan(rng);

        let mut job = gen_job(rng, &a, &b);
        let mut clean_gl = Gl::new(platform.clone(), N, N);
        let want = ResilientRunner::new(resilience())
            .run(&mut clean_gl, job.as_mut())
            .expect("fault-free skip-off run succeeds");

        let mut gl = Gl::new(platform, N, N);
        gl.set_exec_config(gl.exec_config().with_tile_skip(true));
        gl.install_faults(plan.clone());
        let mut runner = ResilientRunner::new(resilience());
        match runner.run(&mut gl, job.as_mut()) {
            Ok(bytes) => assert_eq!(
                bytes, want,
                "skip-on recovery diverged from skip-off under plan {plan:?}"
            ),
            Err(GpgpuError::Exhausted(e)) => {
                assert!(
                    !e.fault_trail.is_empty(),
                    "give-up without any injected fault under plan {plan:?}"
                );
            }
            Err(other) => panic!("untyped/unexpected failure {other} under plan {plan:?}"),
        }
    });
}

/// The same seed reproduces the same fault trail, recovery path and
/// outcome — fault injection is replayable end to end.
#[test]
fn chaos_same_seed_same_story() {
    run_cases(16, |rng| {
        let platform = gen_platform(rng);
        let (a, b) = gen_inputs(rng);
        let plan = gen_plan(rng);
        let job_pick = rng.next_u64();

        let go = || {
            let mut case_rng = Rng::new(job_pick);
            let mut job = gen_job(&mut case_rng, &a, &b);
            let mut gl = Gl::new(platform.clone(), N, N);
            gl.install_faults(plan.clone());
            let mut runner = ResilientRunner::new(resilience());
            let out = runner.run(&mut gl, job.as_mut());
            let outcome = match out {
                Ok(bytes) => Ok(bytes),
                Err(e) => Err(e.to_string()),
            };
            (outcome, runner.events().to_vec(), gl.fault_trail().to_vec())
        };
        assert_eq!(go(), go());
    });
}

/// An installed-but-empty fault plan is a strict no-op: bytes and
/// simulated timing are bit-identical to a context with no plan at all.
#[test]
fn chaos_empty_plan_is_bitwise_noop() {
    run_cases(12, |rng| {
        let platform = gen_platform(rng);
        let (a, b) = gen_inputs(rng);
        let seed = rng.next_u64() | 1;
        let run = |with_plan: bool| {
            let mut gl = Gl::new(platform.clone(), N, N);
            if with_plan {
                gl.install_faults(FaultPlan::seeded(seed));
            }
            let mut sum = Sum::builder(N)
                .build(&mut gl, &cfg(), &a, &b)
                .expect("builds");
            sum.run(&mut gl, 3).expect("runs");
            let bytes = sum.snapshot_bytes(&mut gl).expect("snapshot");
            gl.finish();
            (bytes, gl.elapsed())
        };
        let (bytes_plan, t_plan) = run(true);
        let (bytes_none, t_none) = run(false);
        assert_eq!(bytes_plan, bytes_none);
        assert_eq!(t_plan, t_none, "empty plan must not perturb SimTime");
    });
}

/// The three GPU workload families (image pyramid, Jacobi stencil,
/// dense-layer training) under seeded fault plans: a recovered run is
/// byte-identical to the fault-free run AND still satisfies the family's
/// declared error policy against the CPU reference; an exhausted run
/// carries its fault trail; the same seed reproduces the same trail.
#[test]
fn chaos_workload_families_recover_byte_identical() {
    run_cases(24, |rng| {
        let platform = gen_platform(rng);
        let plan = gen_plan(rng);
        let workload = gen_workload(rng);

        let mut clean_job = WorkloadJob::new(&cfg(), workload.as_ref());
        let mut clean_gl = Gl::new(platform.clone(), N, N);
        let want = ResilientRunner::new(resilience())
            .run(&mut clean_gl, &mut clean_job)
            .expect("fault-free workload run succeeds");
        verify_output(workload.as_ref(), &want).expect("fault-free run meets its policy");

        let faulted = |p: &FaultPlan| {
            let mut job = WorkloadJob::new(&cfg(), workload.as_ref());
            let mut gl = Gl::new(platform.clone(), N, N);
            gl.install_faults(p.clone());
            let out = ResilientRunner::new(resilience()).run(&mut gl, &mut job);
            (out, gl.fault_trail().to_vec())
        };

        let (out, trail) = faulted(&plan);
        match out {
            Ok(bytes) => {
                assert_eq!(
                    bytes,
                    want,
                    "{}: recovered bytes diverged under plan {plan:?}",
                    workload.name()
                );
                verify_output(workload.as_ref(), &bytes)
                    .unwrap_or_else(|e| panic!("recovered run broke its policy: {e}"));
            }
            Err(GpgpuError::Exhausted(e)) => {
                assert!(
                    !e.fault_trail.is_empty(),
                    "{}: give-up without any injected fault under plan {plan:?}",
                    workload.name()
                );
            }
            Err(other) => panic!(
                "{}: untyped/unexpected failure {other} under plan {plan:?}",
                workload.name()
            ),
        }

        // Replaying the identical plan reproduces the identical trail.
        let (_, trail2) = faulted(&plan);
        assert_eq!(trail, trail2, "fault trail not reproducible for same seed");
    });
}

/// Faults surface through the whole stack without ever panicking, even
/// when the runner is so constrained it must give up quickly.
#[test]
fn chaos_never_panics_even_when_give_up_is_fast() {
    run_cases(24, |rng| {
        let platform = gen_platform(rng);
        let (a, b) = gen_inputs(rng);
        let plan = gen_plan(rng).p_ctx_loss(0.4);
        let mut job = gen_job(rng, &a, &b);
        let mut gl = Gl::new(platform, N, N);
        gl.install_faults(plan);
        let tight = ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                max_context_recreates: 1,
                base_backoff: SimTime::from_nanos(10),
                ..RetryPolicy::default()
            },
            verify_checksums: rng.bool(),
            ..ResilienceConfig::default()
        };
        // Ok or Err both fine — the property is "no panic, typed error".
        let _ = ResilientRunner::new(tight).run(&mut gl, job.as_mut());
    });
}
