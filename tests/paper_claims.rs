//! The paper's qualitative evaluation claims as executable tests.
//!
//! Each test asserts a *shape* from §V — who wins, roughly by how much,
//! where crossovers fall — at the paper's full 1024×1024 size (the timing
//! model is analytic, so this is cheap).

use mgpu_bench::experiments::{fig3, fig4a, fig4b, fig5, vbo};
use mgpu_bench::setup::Protocol;
use mgpu_tbdr::Platform;

fn protocol() -> Protocol {
    Protocol {
        n: 1024,
        warmup: 10,
        iters: 40,
    }
}

#[test]
fn fig3_vsync_claims() {
    let p = protocol();

    // VideoCore: default interval is 60 Hz, so interval 0 skyrockets sum;
    // removing swap entirely reaches ~16x (the paper's headline).
    let vc = fig3::run(&Platform::videocore_iv(), &p).expect("fig3 VC");
    assert!(
        vc.sum.interval0 > 7.0 && vc.sum.interval0 < 11.0,
        "VC sum interval0 {} (paper 9.22)",
        vc.sum.interval0
    );
    assert!(
        vc.sum.no_swap > 14.0 && vc.sum.no_swap < 19.0,
        "VC sum noswap {} (paper 16.11)",
        vc.sum.no_swap
    );
    assert!(
        vc.sum.no_swap_fp24 >= vc.sum.no_swap,
        "fp24 must not regress the VC sum"
    );
    // sgemm is fragment-shading bound: vsync removal helps ~1.2x only.
    assert!(
        vc.sgemm.interval0 > 1.1 && vc.sgemm.interval0 < 1.4,
        "VC sgemm interval0 {} (paper 1.24)",
        vc.sgemm.interval0
    );
    assert!(
        vc.sgemm.no_swap_fp24 > vc.sgemm.interval0,
        "fp24 must further speed VC sgemm (paper 1.24 -> 1.48)"
    );

    // SGX: interval 0 has no effect (internal sync already much faster
    // than 60 Hz); removing swap gives ~3.5x from pipelining.
    let sgx = fig3::run(&Platform::sgx_545(), &p).expect("fig3 SGX");
    assert!(
        (sgx.sum.interval0 - 1.0).abs() < 0.1,
        "SGX sum interval0 {} should be ~1.0",
        sgx.sum.interval0
    );
    assert!(
        sgx.sum.no_swap > 2.5 && sgx.sum.no_swap < 4.0,
        "SGX sum noswap {} (paper 3.47)",
        sgx.sum.no_swap
    );
    assert!(
        sgx.sum.no_swap_fp24 / sgx.sum.no_swap > 1.05,
        "fp24 adds ~10% on SGX sum (paper 3.47 -> 3.85)"
    );
    assert!(
        (sgx.sgemm.interval0 - 1.0).abs() < 0.05 && (sgx.sgemm.no_swap - 1.0).abs() < 0.05,
        "SGX sgemm is kernel-bound: sync changes do nothing"
    );
    assert!(
        sgx.sgemm.no_swap_fp24 > 1.08 && sgx.sgemm.no_swap_fp24 < 1.2,
        "SGX sgemm fp24 {} (paper 1.13)",
        sgx.sgemm.no_swap_fp24
    );
}

#[test]
fn fig4a_rendering_target_claims() {
    let p = protocol();

    // SGX: for independent sum, texture rendering wins by ~3 orders of
    // magnitude (paper: 1/0.000447 = 2237x).
    let sgx = fig4a::run(&Platform::sgx_545(), &p).expect("fig4a SGX");
    let adv = sgx.sum.texture_advantage();
    assert!(
        adv > 500.0,
        "SGX sum texture advantage {adv} should be ~3 orders of magnitude"
    );
    // With artificial dependencies, texture still wins on SGX...
    assert!(sgx.sum_dependent.texture_advantage() > 1.0);
    // ...and multi-pass sgemm prefers the framebuffer.
    assert!(
        sgx.sgemm.texture_advantage() <= 1.001,
        "SGX sgemm should not lose with FB rendering: {}",
        sgx.sgemm.texture_advantage()
    );

    // VideoCore: texture rendering wins sum by about an order of
    // magnitude; the DMA engine makes the framebuffer win both the
    // dependent sum and sgemm.
    let vc = fig4a::run(&Platform::videocore_iv(), &p).expect("fig4a VC");
    let adv = vc.sum.texture_advantage();
    assert!(
        (4.0..20.0).contains(&adv),
        "VC sum texture advantage {adv} should be ~1 order of magnitude"
    );
    assert!(
        vc.sum_dependent.texture_advantage() < 1.0,
        "VC dependent sum should prefer the framebuffer (DMA)"
    );
    assert!(
        vc.sgemm.texture_advantage() < 1.0,
        "VC sgemm should prefer the framebuffer"
    );
}

#[test]
fn fig4b_blocking_claims() {
    let p = protocol();

    for platform in Platform::paper_pair() {
        let r = fig4b::run(&platform, &p).expect("fig4b");
        // Performance increases with block size under both targets.
        for pair in r.points.windows(2) {
            assert!(
                pair[1].texture <= pair[0].texture,
                "{}: texture time must fall with block size",
                platform.name
            );
            assert!(
                pair[1].framebuffer <= pair[0].framebuffer,
                "{}: framebuffer time must fall with block size",
                platform.name
            );
        }
        // Block 32 fails shader compilation on both platforms.
        assert!(
            r.block32_error.contains("limit"),
            "{}: block 32 must hit an implementation limit",
            platform.name
        );
    }

    // SGX: FB rendering deteriorates small blocks badly, then the copy
    // overlaps with computation once blocks are big enough.
    let sgx = fig4b::run(&Platform::sgx_545(), &p).expect("fig4b SGX");
    let ratio =
        |i: usize| sgx.points[i].framebuffer.as_secs_f64() / sgx.points[i].texture.as_secs_f64();
    assert!(ratio(0) > 3.0, "SGX block 1: FB much worse ({})", ratio(0));
    assert!(
        ratio(4) < 1.05,
        "SGX block 16: copy fully overlapped ({})",
        ratio(4)
    );
    assert!(
        ratio(0) > ratio(2) && ratio(2) > ratio(4),
        "SGX FB penalty must shrink with block size"
    );

    // VideoCore: DMA keeps the framebuffer ahead at every block size.
    let vc = fig4b::run(&Platform::videocore_iv(), &p).expect("fig4b VC");
    for pt in &vc.points {
        assert!(
            pt.framebuffer <= pt.texture,
            "VC block {}: FB must win (DMA)",
            pt.block
        );
    }
}

#[test]
fn fig5_texture_reuse_claims() {
    let p = protocol();

    // VideoCore, texture rendering: reuse of input textures gives ~15%.
    let vc = fig5::run(&Platform::videocore_iv(), &p).expect("fig5 VC");
    assert!(
        vc.sum_texture > 1.08 && vc.sum_texture < 1.25,
        "VC sum reuse speedup {} (paper ~1.15)",
        vc.sum_texture
    );
    // Framebuffer rendering: no improvement on VideoCore.
    assert!(
        (vc.sum_framebuffer - 1.0).abs() < 0.05 && (vc.sgemm_framebuffer - 1.0).abs() < 0.05,
        "VC FB reuse should be neutral"
    );

    // SGX: small degradation under texture rendering...
    let sgx = fig5::run(&Platform::sgx_545(), &p).expect("fig5 SGX");
    assert!(
        sgx.sum_texture > 0.88 && sgx.sum_texture < 1.0,
        "SGX sum reuse {} (paper -2..7%)",
        sgx.sum_texture
    );
    assert!(
        sgx.sgemm_texture > 0.9 && sgx.sgemm_texture < 1.0,
        "SGX sgemm reuse {} (paper -2..7%)",
        sgx.sgemm_texture
    );
    // ...and a serious drop for sgemm under FB rendering (false sharing).
    assert!(
        sgx.sgemm_framebuffer > 0.6 && sgx.sgemm_framebuffer < 0.85,
        "SGX sgemm FB reuse {} (paper ~0.70)",
        sgx.sgemm_framebuffer
    );
}

#[test]
fn vbo_hint_claims() {
    let p = protocol();
    for platform in Platform::paper_pair() {
        let r = vbo::run(&platform, &p).expect("vbo");
        for (name, s) in [
            ("static", r.static_draw),
            ("dynamic", r.dynamic_draw),
            ("stream", r.stream_draw),
        ] {
            assert!(
                (0.999..1.02).contains(&s),
                "{} {name}: VBO speedup {s} should be within the paper's 'up to 1.5%'",
                platform.name
            );
        }
        // Hints order sensibly: static <= stream <= dynamic cost.
        assert!(r.static_draw >= r.stream_draw);
        assert!(r.stream_draw >= r.dynamic_draw);
    }
}

#[test]
fn headline_claim_sixteen_x_over_baseline() {
    // "obtaining more than 16x speedup over benchmarks designed following
    // OpenGL ES 2 best practices" — realised by the VideoCore sum chain.
    let r = fig3::run(&Platform::videocore_iv(), &protocol()).expect("fig3");
    assert!(
        r.sum.no_swap_fp24 > 16.0,
        "combined optimisations reach {}x (paper: more than 16x)",
        r.sum.no_swap_fp24
    );
}
