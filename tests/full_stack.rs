//! Cross-crate integration: functional results through the whole stack
//! (encoding → kernel compiler → GL driver → rasteriser → decode), and
//! consistency between the functional and timing engines.

use mgpu::gpgpu::{Sgemm, Sum};
use mgpu::workloads::{max_abs_error, random_matrix, sgemm_blocked_ref};
use mgpu::{Gl, OptConfig, Platform};

/// Functional results must be identical across platforms: the timing model
/// differs wildly, the pixels must not.
#[test]
fn results_are_platform_independent() {
    let n = 24usize;
    let a = random_matrix(n, 7, 0.0, 1.0);
    let b = random_matrix(n, 8, 0.0, 1.0);

    let mut results = Vec::new();
    for platform in Platform::paper_pair() {
        let mut gl = Gl::new(platform, n as u32, n as u32);
        let mut sum = Sum::builder(n as u32)
            .build(&mut gl, &OptConfig::baseline(), a.data(), b.data())
            .expect("sum builds");
        sum.step(&mut gl).expect("step");
        results.push(sum.result(&mut gl).expect("result"));
    }
    assert_eq!(
        results[0], results[1],
        "pixel results must match bit-for-bit"
    );
}

/// The render-target strategy must not change functional results either.
#[test]
fn results_are_target_independent() {
    let n = 16usize;
    let a = random_matrix(n, 9, 0.0, 1.0);
    let b = random_matrix(n, 10, 0.0, 1.0);
    let want = sgemm_blocked_ref(&a, &b, 4);

    for cfg in [
        OptConfig::baseline(),
        OptConfig::baseline()
            .with_swap_interval_0()
            .with_framebuffer_rendering(),
    ] {
        let mut gl = Gl::new(Platform::videocore_iv(), n as u32, n as u32);
        let mut sgemm = Sgemm::new(&mut gl, &cfg, n as u32, 4, a.data(), b.data()).expect("builds");
        sgemm.multiply(&mut gl).expect("multiply");
        let got = sgemm.result(&mut gl).expect("result");
        let err = max_abs_error(&got, want.data());
        assert!(err < 0.01, "target {:?}: error {err}", cfg.target);
    }
}

/// Timing is deterministic: the same program produces the same simulated
/// schedule, run after run.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let n = 32u32;
        let a = random_matrix(n as usize, 1, 0.0, 1.0);
        let b = random_matrix(n as usize, 2, 0.0, 1.0);
        let mut gl = Gl::new(Platform::sgx_545(), n, n);
        let mut sum = Sum::builder(n)
            .build(
                &mut gl,
                &OptConfig::baseline().without_swap(),
                a.data(),
                b.data(),
            )
            .expect("builds");
        sum.run(&mut gl, 10).expect("runs");
        gl.finish();
        let report = gl.report();
        (report.total_time, report.traffic, report.frames.len())
    };
    assert_eq!(run(), run());
}

/// The timing engine never depends on functional execution: pixel work on
/// or off, the schedule is identical (this is what licenses the harness's
/// timing-only mode at full size).
#[test]
fn functional_mode_does_not_change_timing() {
    let run = |functional: bool| {
        let n = 32u32;
        let a = random_matrix(n as usize, 3, 0.0, 1.0);
        let b = random_matrix(n as usize, 4, 0.0, 1.0);
        let mut gl = Gl::new(Platform::videocore_iv(), n, n);
        gl.set_functional(functional);
        let mut sgemm = Sgemm::new(
            &mut gl,
            &OptConfig::baseline().with_framebuffer_rendering(),
            n,
            8,
            a.data(),
            b.data(),
        )
        .expect("builds");
        sgemm.multiply(&mut gl).expect("multiply");
        gl.finish();
        gl.elapsed()
    };
    assert_eq!(run(true), run(false));
}

/// Traffic accounting matches first principles for a known pipeline.
#[test]
fn traffic_accounting_is_exact() {
    let n = 16u32;
    let bytes = u64::from(n) * u64::from(n) * 4;
    let a = random_matrix(n as usize, 5, 0.0, 1.0);
    let b = random_matrix(n as usize, 6, 0.0, 1.0);
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let mut sum = Sum::builder(n)
        .build(
            &mut gl,
            &OptConfig::baseline().without_swap(),
            a.data(),
            b.data(),
        )
        .expect("builds");
    sum.step(&mut gl).expect("step");
    gl.finish();
    let t = gl.report().traffic;
    // Two input uploads.
    assert_eq!(t.upload_bytes, 2 * bytes);
    // One full-target writeback.
    assert_eq!(t.writeback_bytes, bytes);
    // Invalidated target: no reload; texture rendering: no copy.
    assert_eq!(t.reload_bytes, 0);
    assert_eq!(t.copy_bytes, 0);
}

/// sum's dependent mode really chains through the double-buffered output:
/// N steps accumulate N times B.
#[test]
fn dependent_chain_accumulates_across_both_targets() {
    let n = 8usize;
    let a = random_matrix(n, 1, 0.0, 0.5);
    let b = random_matrix(n, 2, 0.0, 0.05);
    for cfg in [
        OptConfig::baseline().without_swap(),
        OptConfig::baseline()
            .with_swap_interval_0()
            .with_framebuffer_rendering(),
    ] {
        let mut gl = Gl::new(Platform::sgx_545(), n as u32, n as u32);
        let mut sum = Sum::builder(n as u32)
            .dependent(true)
            .build(&mut gl, &cfg, a.data(), b.data())
            .expect("builds");
        sum.run(&mut gl, 6).expect("runs");
        let got = sum.result(&mut gl).expect("result");
        let want: Vec<f32> = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| x + 6.0 * y)
            .collect();
        let err = max_abs_error(&got, &want);
        assert!(err < 1e-3, "target {:?}: err {err}", cfg.target);
    }
}

/// The paper's 10 000-iteration protocol: steady state is reached and the
/// period converges (doubling the iterations barely moves it).
#[test]
fn steady_state_converges() {
    let n = 64u32;
    let a = random_matrix(n as usize, 1, 0.0, 1.0);
    let b = random_matrix(n as usize, 2, 0.0, 1.0);
    let measure = |iters: usize| {
        let mut gl = Gl::new(Platform::videocore_iv(), n, n);
        gl.set_functional(false);
        let mut sum = Sum::builder(n)
            .build(
                &mut gl,
                &OptConfig::baseline().without_swap(),
                a.data(),
                b.data(),
            )
            .expect("builds");
        mgpu::gpgpu::steady_period(&mut gl, 10, iters, |gl| sum.step(gl)).expect("period")
    };
    let p50 = measure(50).as_secs_f64();
    let p200 = measure(200).as_secs_f64();
    assert!(
        ((p50 - p200) / p200).abs() < 0.02,
        "steady period should converge: {p50} vs {p200}"
    );
}

/// Fig. 1 trace reconstruction spans the right memory operations for both
/// pipeline shapes.
#[test]
fn fig1_memory_operations_match_pipeline_shape() {
    use mgpu::tbdr::{
        annotate_frame, AllocKind, CopyOut, FragmentProfile, FrameWork, MemOp, PipelineSim,
        RenderTarget, ResourceId,
    };

    // Framebuffer pipeline: upload (2), writeback (3), copy (4).
    let mut c = 0;
    let mut fb_frame = FrameWork::simple(
        64,
        64,
        FragmentProfile {
            alu_cycles: 8.0,
            output_bytes: 4.0,
            ..FragmentProfile::default()
        },
    );
    fb_frame
        .uploads
        .push(mgpu::tbdr::Upload::fresh(ResourceId::next(&mut c), 1024));
    fb_frame.copy_out = Some(CopyOut {
        dest: ResourceId::next(&mut c),
        bytes: 64 * 64 * 4,
        alloc: AllocKind::Fresh,
    });
    let mut sim = PipelineSim::new(Platform::videocore_iv());
    let t = sim.submit(&fb_frame);
    let steps: Vec<u8> = annotate_frame(&fb_frame, &t)
        .iter()
        .map(|e| e.op.paper_step())
        .collect();
    assert_eq!(steps, vec![2, 3, 4]);

    // Texture pipeline: upload (2), tiles straight to texture (5).
    let mut tex_frame = fb_frame.clone();
    tex_frame.copy_out = None;
    tex_frame.target = RenderTarget::Texture {
        storage: ResourceId::next(&mut c),
        fresh: true,
    };
    let t = sim.submit(&tex_frame);
    let events = annotate_frame(&tex_frame, &t);
    assert!(events.iter().any(|e| e.op == MemOp::TileToTexture));
    assert!(!events
        .iter()
        .any(|e| e.op == MemOp::CopyFramebufferToTexture));
}
