//! Golden determinism tests for the parallel fragment engine.
//!
//! The tentpole guarantee: host-side threading is *purely* a wall-clock
//! knob. For `sum` and blocked `sgemm` (block 16) on both platforms,
//! running at 2, 4 and 8 threads must produce output buffers
//! byte-for-byte identical to the serial path, and the simulated-time
//! report must not change by a single tick.

use mgpu::gpgpu::{Sgemm, Sum};
use mgpu::tbdr::SimReport;
use mgpu::{ExecConfig, Gl, OptConfig, Platform};

/// Everything observable from one run: raw target bytes, the decoded
/// result's exact bit patterns, and the full simulation report.
#[derive(Debug, PartialEq)]
struct Golden {
    pixels: Vec<u8>,
    result_bits: Vec<u32>,
    report: SimReport,
}

fn inputs(n: u32) -> (Vec<f32>, Vec<f32>) {
    let len = (n * n) as usize;
    let a = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();
    (a, b)
}

fn run_sum(platform: &Platform, threads: usize) -> Golden {
    let n = 32;
    let (a, b) = inputs(n);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_exec_config(ExecConfig::with_threads(threads));
    let cfg = OptConfig::baseline().without_swap();
    let mut sum = Sum::builder(n)
        .build(&mut gl, &cfg, &a, &b)
        .expect("builds");
    sum.step(&mut gl).expect("steps");
    let pixels = gl.read_pixels().expect("reads");
    let result_bits = sum
        .result(&mut gl)
        .expect("results")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Golden {
        pixels,
        result_bits,
        report: gl.report(),
    }
}

fn run_sgemm(platform: &Platform, threads: usize) -> Golden {
    let n = 32;
    let (a, b) = inputs(n);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_exec_config(ExecConfig::with_threads(threads));
    let cfg = OptConfig::baseline().with_swap_interval_0();
    let mut sgemm = Sgemm::new(&mut gl, &cfg, n, 16, &a, &b).expect("builds");
    sgemm.multiply(&mut gl).expect("multiplies");
    let pixels = gl.read_pixels().expect("reads");
    let result_bits = sgemm
        .result(&mut gl)
        .expect("results")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Golden {
        pixels,
        result_bits,
        report: gl.report(),
    }
}

#[test]
fn sum_is_byte_identical_across_thread_counts() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let serial = run_sum(&platform, 1);
        assert!(!serial.pixels.is_empty());
        for threads in [2, 4, 8] {
            let parallel = run_sum(&platform, threads);
            assert_eq!(
                parallel, serial,
                "sum diverged at {threads} threads on {}",
                platform.name
            );
        }
    }
}

#[test]
fn sgemm_block_16_is_byte_identical_across_thread_counts() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let serial = run_sgemm(&platform, 1);
        assert!(!serial.pixels.is_empty());
        for threads in [2, 4, 8] {
            let parallel = run_sgemm(&platform, threads);
            assert_eq!(
                parallel, serial,
                "sgemm diverged at {threads} threads on {}",
                platform.name
            );
        }
    }
}

/// The `OptConfig::with_threads` knob routes through operator setup to
/// the context, and `MGPU_THREADS`-style explicit configs round-trip.
#[test]
fn thread_knob_reaches_the_context() {
    let n = 16;
    let (a, b) = inputs(n);
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    assert!(gl.exec_config().threads() >= 1);
    let cfg = OptConfig::baseline().without_swap().with_threads(3);
    let _sum = Sum::builder(n)
        .build(&mut gl, &cfg, &a, &b)
        .expect("builds");
    assert_eq!(gl.exec_config(), ExecConfig::with_threads(3));
}
