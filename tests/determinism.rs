//! Golden determinism tests for the parallel fragment engine.
//!
//! The tentpole guarantee: host-side threading and the fragment-engine
//! tier are *purely* wall-clock knobs. For `sum` and blocked `sgemm`
//! (block 16) on both platforms, running at 2, 4 and 8 threads — and on
//! the scalar reference engine, the lane-batched SoA engine, or the
//! compiled closure-chain engine — must produce output buffers
//! byte-for-byte identical to the serial scalar path, and the
//! simulated-time report must not change by a single tick.

use mgpu::gpgpu::{Sgemm, Sum};
use mgpu::tbdr::SimReport;
use mgpu::{Engine, ExecConfig, Gl, OptConfig, Platform};

/// Everything observable from one run: raw target bytes, the decoded
/// result's exact bit patterns, and the full simulation report.
#[derive(Debug, PartialEq)]
struct Golden {
    pixels: Vec<u8>,
    result_bits: Vec<u32>,
    report: SimReport,
}

fn inputs(n: u32) -> (Vec<f32>, Vec<f32>) {
    let len = (n * n) as usize;
    let a = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();
    (a, b)
}

fn run_sum(platform: &Platform, exec: ExecConfig) -> Golden {
    let n = 32;
    let (a, b) = inputs(n);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_exec_config(exec);
    let cfg = OptConfig::baseline().without_swap();
    let mut sum = Sum::builder(n)
        .build(&mut gl, &cfg, &a, &b)
        .expect("builds");
    sum.step(&mut gl).expect("steps");
    let pixels = gl.read_pixels().expect("reads");
    let result_bits = sum
        .result(&mut gl)
        .expect("results")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Golden {
        pixels,
        result_bits,
        report: gl.report(),
    }
}

fn run_sgemm(platform: &Platform, exec: ExecConfig) -> Golden {
    let n = 32;
    let (a, b) = inputs(n);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_exec_config(exec);
    let cfg = OptConfig::baseline().with_swap_interval_0();
    let mut sgemm = Sgemm::new(&mut gl, &cfg, n, 16, &a, &b).expect("builds");
    sgemm.multiply(&mut gl).expect("multiplies");
    let pixels = gl.read_pixels().expect("reads");
    let result_bits = sgemm
        .result(&mut gl)
        .expect("results")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Golden {
        pixels,
        result_bits,
        report: gl.report(),
    }
}

#[test]
fn sum_is_byte_identical_across_thread_counts() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let serial = run_sum(&platform, ExecConfig::with_threads(1));
        assert!(!serial.pixels.is_empty());
        for threads in [2, 4, 8] {
            let parallel = run_sum(&platform, ExecConfig::with_threads(threads));
            assert_eq!(
                parallel, serial,
                "sum diverged at {threads} threads on {}",
                platform.name
            );
        }
    }
}

#[test]
fn sgemm_block_16_is_byte_identical_across_thread_counts() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let serial = run_sgemm(&platform, ExecConfig::with_threads(1));
        assert!(!serial.pixels.is_empty());
        for threads in [2, 4, 8] {
            let parallel = run_sgemm(&platform, ExecConfig::with_threads(threads));
            assert_eq!(
                parallel, serial,
                "sgemm diverged at {threads} threads on {}",
                platform.name
            );
        }
    }
}

/// The batched SoA engine reproduces the serial scalar reference exactly —
/// pixels, result bits and the simulated-time report — at 1 and 4 threads
/// on both platforms, for both kernels. Together with the thread tests
/// this pins the full engine × threads matrix to one golden output.
#[test]
fn engines_are_byte_identical_across_thread_counts() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let golden_sum = run_sum(&platform, ExecConfig::serial());
        let golden_sgemm = run_sgemm(&platform, ExecConfig::serial());
        for threads in [1, 4] {
            for engine in [Engine::Scalar, Engine::Batched, Engine::Compiled] {
                let exec = ExecConfig::with_threads(threads).with_engine(engine);
                assert_eq!(
                    run_sum(&platform, exec),
                    golden_sum,
                    "sum diverged with {engine:?} at {threads} threads on {}",
                    platform.name
                );
                assert_eq!(
                    run_sgemm(&platform, exec),
                    golden_sgemm,
                    "sgemm diverged with {engine:?} at {threads} threads on {}",
                    platform.name
                );
            }
        }
    }
}

/// The golden matrix for the persistent-pool dispatcher: pooled
/// (work-stealing + plan cache) and legacy (per-draw scope-spawn)
/// execution produce one identical `Golden` across every thread count,
/// engine tier and platform. This is the PR's headline invariant — the
/// dispatcher is purely a wall-clock knob.
#[test]
fn pooled_dispatch_matches_the_legacy_path_exactly() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let golden_sum = run_sum(&platform, ExecConfig::serial());
        let golden_sgemm = run_sgemm(&platform, ExecConfig::serial());
        for threads in [1, 2, 4, 8] {
            for engine in [Engine::Scalar, Engine::Batched, Engine::Compiled] {
                for pool in [false, true] {
                    let exec = ExecConfig::with_threads(threads)
                        .with_engine(engine)
                        .with_pool(pool);
                    assert_eq!(
                        run_sum(&platform, exec),
                        golden_sum,
                        "sum diverged (pool={pool}, {engine:?}, {threads} threads) on {}",
                        platform.name
                    );
                    assert_eq!(
                        run_sgemm(&platform, exec),
                        golden_sgemm,
                        "sgemm diverged (pool={pool}, {engine:?}, {threads} threads) on {}",
                        platform.name
                    );
                }
            }
        }
    }
}

/// Tile-signature skipping (`MGPU_TILE_SKIP`) is byte-exact but — alone
/// among the execution knobs — not timing-neutral: skipped tiles trade
/// shading for signature traffic in the cost model. So the matrix splits
/// in two: skip-on pixels and result bits must match the serial skip-off
/// golden everywhere, while the skip-on *report*, which legitimately
/// differs from skip-off, must itself be one golden across every
/// dispatcher, engine tier and thread count — the skip decision is
/// execution-invariant.
#[test]
fn tile_skip_is_byte_identical_and_its_report_is_execution_invariant() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let golden_sum = run_sum(&platform, ExecConfig::serial());
        let golden_sgemm = run_sgemm(&platform, ExecConfig::serial());
        let skip = ExecConfig::serial().with_tile_skip(true);
        let skip_sum = run_sum(&platform, skip);
        let skip_sgemm = run_sgemm(&platform, skip);
        assert_eq!(skip_sum.pixels, golden_sum.pixels);
        assert_eq!(skip_sum.result_bits, golden_sum.result_bits);
        assert_eq!(skip_sgemm.pixels, golden_sgemm.pixels);
        assert_eq!(skip_sgemm.result_bits, golden_sgemm.result_bits);

        for threads in [1, 4] {
            for engine in [Engine::Scalar, Engine::Batched, Engine::Compiled] {
                for pool in [false, true] {
                    let exec = ExecConfig::with_threads(threads)
                        .with_engine(engine)
                        .with_pool(pool)
                        .with_tile_skip(true);
                    assert_eq!(
                        run_sum(&platform, exec),
                        skip_sum,
                        "skip-on sum diverged (pool={pool}, {engine:?}, {threads} threads) on {}",
                        platform.name
                    );
                    assert_eq!(
                        run_sgemm(&platform, exec),
                        skip_sgemm,
                        "skip-on sgemm diverged (pool={pool}, {engine:?}, {threads} threads) on {}",
                        platform.name
                    );
                }
            }
        }
    }
}

/// The `OptConfig::with_threads` knob routes through operator setup to
/// the context, and `MGPU_THREADS`-style explicit configs round-trip.
#[test]
fn thread_knob_reaches_the_context() {
    let n = 16;
    let (a, b) = inputs(n);
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    assert!(gl.exec_config().threads() >= 1);
    let cfg = OptConfig::baseline().without_swap().with_threads(3);
    let _sum = Sum::builder(n)
        .build(&mut gl, &cfg, &a, &b)
        .expect("builds");
    assert_eq!(gl.exec_config(), ExecConfig::with_threads(3));
}
