//! Property-based tests across the whole stack.

use mgpu::gpgpu::{Sgemm, Sum};
use mgpu::workloads::{max_abs_error, sgemm_blocked_ref, sum_ref, Matrix};
use mgpu::{Encoding, Gl, OptConfig, Platform, Range};
use proptest::prelude::*;

/// Strategy over small square matrices with values in [0, 1).
fn matrix_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.0f32..1.0, n * n).prop_map(move |v| Matrix::from_data(n, v))
}

/// Strategy over meaningful optimisation-config points.
fn config_strategy() -> impl Strategy<Value = OptConfig> {
    (
        0u8..3,
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(sync, fb, reuse, fp24, invalidate)| {
            let mut cfg = OptConfig::baseline();
            cfg = match sync {
                0 => cfg,
                1 => cfg.with_swap_interval_0(),
                _ => cfg.without_swap(),
            };
            if fb {
                cfg = cfg.with_framebuffer_rendering();
            }
            if reuse {
                cfg = cfg.with_texture_reuse();
            }
            if fp24 {
                cfg = cfg.with_fp24();
            }
            if !invalidate {
                cfg = cfg.without_invalidate();
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The GPU sum equals the CPU sum within quantisation error for any
    /// inputs and any configuration point on either platform.
    #[test]
    fn sum_is_correct_for_any_config(
        a in matrix_strategy(8),
        b in matrix_strategy(8),
        cfg in config_strategy(),
        vc in prop::bool::ANY,
    ) {
        let platform = if vc { Platform::videocore_iv() } else { Platform::sgx_545() };
        let mut gl = Gl::new(platform, 8, 8);
        let mut sum = Sum::builder(8)
            .build(&mut gl, &cfg, a.data(), b.data())
            .expect("sum builds");
        sum.step(&mut gl).expect("step");
        let got = sum.result(&mut gl).expect("result");
        let want = sum_ref(&a, &b);
        let tol = match cfg.encoding {
            Encoding::Fp32 => 1e-5,
            Encoding::Fp24 => 2.0 * 2.0 / (255.0f32 * 255.0 * 255.0) + 1e-5,
        };
        prop_assert!(
            max_abs_error(&got, want.data()) <= tol,
            "cfg {cfg:?}"
        );
    }

    /// Blocked GPU sgemm equals the blocked CPU reference for any legal
    /// block size.
    #[test]
    fn sgemm_is_correct_for_any_block(
        a in matrix_strategy(16),
        b in matrix_strategy(16),
        block_sel in 0usize..5,
    ) {
        let block = [1u32, 2, 4, 8, 16][block_sel];
        let mut gl = Gl::new(Platform::videocore_iv(), 16, 16);
        let mut sgemm = Sgemm::new(
            &mut gl,
            &OptConfig::baseline().without_swap(),
            16,
            block,
            a.data(),
            b.data(),
        )
        .expect("sgemm builds");
        sgemm.multiply(&mut gl).expect("multiply");
        let got = sgemm.result(&mut gl).expect("result");
        let want = sgemm_blocked_ref(&a, &b, block as usize);
        // Output range [0, 16): quantisation accumulates once per pass.
        let passes = 16.0 / block as f32;
        prop_assert!(
            max_abs_error(&got, want.data()) <= 16.0 * 3e-6 * (passes + 1.0) + 1e-4
        );
    }

    /// Encode → GL upload → identity kernel → readback → decode is the
    /// identity within one quantum, for any values and either encoding.
    #[test]
    fn encoding_round_trips_through_the_gpu(
        values in prop::collection::vec(0.0f32..1.0, 16),
        fp24 in prop::bool::ANY,
    ) {
        let enc = if fp24 { Encoding::Fp24 } else { Encoding::Fp32 };
        let range = Range::unit();
        // Identity kernel: out = a + 0.
        let zeros = vec![0.0f32; 16];
        let cfg = if fp24 {
            OptConfig::baseline().with_fp24()
        } else {
            OptConfig::baseline()
        };
        let mut gl = Gl::new(Platform::sgx_545(), 4, 4);
        let mut sum = Sum::builder(4)
            .range_out(Range::unit())
            .build(&mut gl, &cfg, &values, &zeros)
            .expect("builds");
        sum.step(&mut gl).expect("step");
        let got = sum.result(&mut gl).expect("result");
        let tol = enc.quantum(range.span()) * 3.0 + 2e-6;
        for (v, g) in values.iter().zip(&got) {
            // The output range is [0,1) so 1.0-adjacent values clamp a hair.
            let v = v.min(0.99999);
            prop_assert!((v - g).abs() <= tol, "{v} -> {g} ({enc:?})");
        }
    }

    /// Simulated time per iteration is strictly positive and additive:
    /// 2N iterations never take less than N iterations.
    #[test]
    fn simulated_time_is_additive(iters in 1usize..12) {
        let a = vec![0.5f32; 64];
        let b = vec![0.25f32; 64];
        let run = |k: usize| {
            let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
            gl.set_functional(false);
            let mut sum = Sum::builder(8)
                .build(&mut gl, &OptConfig::baseline().without_swap(), &a, &b)
                .expect("builds");
            sum.run(&mut gl, k).expect("runs");
            gl.finish();
            gl.elapsed()
        };
        let t1 = run(iters);
        let t2 = run(iters * 2);
        prop_assert!(t2 >= t1);
        prop_assert!(t1 > mgpu::SimTime::ZERO);
    }
}
