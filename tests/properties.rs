//! Property-based tests across the whole stack.

use mgpu::gpgpu::{Sgemm, Sum};
use mgpu::workloads::{max_abs_error, sgemm_blocked_ref, sum_ref, Matrix};
use mgpu::{Encoding, Gl, OptConfig, Platform, Range};
use mgpu_prop::{run_cases, Rng};

/// A small square matrix with values in [0, 1).
fn gen_matrix(rng: &mut Rng, n: usize) -> Matrix {
    Matrix::from_data(n, (0..n * n).map(|_| rng.f32(0.0, 1.0)).collect())
}

/// A meaningful optimisation-config point.
fn gen_config(rng: &mut Rng) -> OptConfig {
    let mut cfg = OptConfig::baseline();
    cfg = match rng.u32_in(0, 3) {
        0 => cfg,
        1 => cfg.with_swap_interval_0(),
        _ => cfg.without_swap(),
    };
    if rng.bool() {
        cfg = cfg.with_framebuffer_rendering();
    }
    if rng.bool() {
        cfg = cfg.with_texture_reuse();
    }
    if rng.bool() {
        cfg = cfg.with_fp24();
    }
    if rng.bool() {
        cfg = cfg.without_invalidate();
    }
    cfg
}

/// The GPU sum equals the CPU sum within quantisation error for any inputs
/// and any configuration point on either platform.
#[test]
fn sum_is_correct_for_any_config() {
    run_cases(24, |rng| {
        let a = gen_matrix(rng, 8);
        let b = gen_matrix(rng, 8);
        let cfg = gen_config(rng);
        let platform = if rng.bool() {
            Platform::videocore_iv()
        } else {
            Platform::sgx_545()
        };
        let mut gl = Gl::new(platform, 8, 8);
        let mut sum = Sum::builder(8)
            .build(&mut gl, &cfg, a.data(), b.data())
            .expect("sum builds");
        sum.step(&mut gl).expect("step");
        let got = sum.result(&mut gl).expect("result");
        let want = sum_ref(&a, &b);
        let tol = match cfg.encoding {
            Encoding::Fp32 => 1e-5,
            Encoding::Fp24 => 2.0 * 2.0 / (255.0f32 * 255.0 * 255.0) + 1e-5,
        };
        assert!(max_abs_error(&got, want.data()) <= tol, "cfg {cfg:?}");
    });
}

/// Blocked GPU sgemm equals the blocked CPU reference for any legal block
/// size.
#[test]
fn sgemm_is_correct_for_any_block() {
    run_cases(24, |rng| {
        let a = gen_matrix(rng, 16);
        let b = gen_matrix(rng, 16);
        let block = *rng.pick(&[1u32, 2, 4, 8, 16]);
        let mut gl = Gl::new(Platform::videocore_iv(), 16, 16);
        let mut sgemm = Sgemm::new(
            &mut gl,
            &OptConfig::baseline().without_swap(),
            16,
            block,
            a.data(),
            b.data(),
        )
        .expect("sgemm builds");
        sgemm.multiply(&mut gl).expect("multiply");
        let got = sgemm.result(&mut gl).expect("result");
        let want = sgemm_blocked_ref(&a, &b, block as usize);
        // Output range [0, 16): quantisation accumulates once per pass.
        let passes = 16.0 / block as f32;
        assert!(max_abs_error(&got, want.data()) <= 16.0 * 3e-6 * (passes + 1.0) + 1e-4);
    });
}

/// Encode → GL upload → identity kernel → readback → decode is the
/// identity within one quantum, for any values and either encoding.
#[test]
fn encoding_round_trips_through_the_gpu() {
    run_cases(24, |rng| {
        let values: Vec<f32> = (0..16).map(|_| rng.f32(0.0, 1.0)).collect();
        let fp24 = rng.bool();
        let enc = if fp24 { Encoding::Fp24 } else { Encoding::Fp32 };
        let range = Range::unit();
        // Identity kernel: out = a + 0.
        let zeros = vec![0.0f32; 16];
        let cfg = if fp24 {
            OptConfig::baseline().with_fp24()
        } else {
            OptConfig::baseline()
        };
        let mut gl = Gl::new(Platform::sgx_545(), 4, 4);
        let mut sum = Sum::builder(4)
            .range_out(Range::unit())
            .build(&mut gl, &cfg, &values, &zeros)
            .expect("builds");
        sum.step(&mut gl).expect("step");
        let got = sum.result(&mut gl).expect("result");
        let tol = enc.quantum(range.span()) * 3.0 + 2e-6;
        for (v, g) in values.iter().zip(&got) {
            // The output range is [0,1) so 1.0-adjacent values clamp a hair.
            let v = v.min(0.99999);
            assert!((v - g).abs() <= tol, "{v} -> {g} ({enc:?})");
        }
    });
}

/// Simulated time per iteration is strictly positive and additive: 2N
/// iterations never take less than N iterations.
#[test]
fn simulated_time_is_additive() {
    run_cases(11, |rng| {
        let iters = rng.usize_in(1, 12);
        let a = vec![0.5f32; 64];
        let b = vec![0.25f32; 64];
        let run = |k: usize| {
            let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
            gl.set_functional(false);
            let mut sum = Sum::builder(8)
                .build(&mut gl, &OptConfig::baseline().without_swap(), &a, &b)
                .expect("builds");
            sum.run(&mut gl, k).expect("runs");
            gl.finish();
            gl.elapsed()
        };
        let t1 = run(iters);
        let t2 = run(iters * 2);
        assert!(t2 >= t1);
        assert!(t1 > mgpu::SimTime::ZERO);
    });
}
