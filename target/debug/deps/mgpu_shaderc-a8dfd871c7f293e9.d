/root/repo/target/debug/deps/mgpu_shaderc-a8dfd871c7f293e9.d: crates/shader/src/bin/mgpu-shaderc.rs

/root/repo/target/debug/deps/mgpu_shaderc-a8dfd871c7f293e9: crates/shader/src/bin/mgpu-shaderc.rs

crates/shader/src/bin/mgpu-shaderc.rs:
