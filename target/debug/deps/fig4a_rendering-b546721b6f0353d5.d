/root/repo/target/debug/deps/fig4a_rendering-b546721b6f0353d5.d: crates/bench/benches/fig4a_rendering.rs Cargo.toml

/root/repo/target/debug/deps/libfig4a_rendering-b546721b6f0353d5.rmeta: crates/bench/benches/fig4a_rendering.rs Cargo.toml

crates/bench/benches/fig4a_rendering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
