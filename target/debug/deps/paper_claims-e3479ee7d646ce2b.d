/root/repo/target/debug/deps/paper_claims-e3479ee7d646ce2b.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-e3479ee7d646ce2b: tests/paper_claims.rs

tests/paper_claims.rs:
