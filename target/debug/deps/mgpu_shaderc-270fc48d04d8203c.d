/root/repo/target/debug/deps/mgpu_shaderc-270fc48d04d8203c.d: crates/shader/src/bin/mgpu-shaderc.rs

/root/repo/target/debug/deps/mgpu_shaderc-270fc48d04d8203c: crates/shader/src/bin/mgpu-shaderc.rs

crates/shader/src/bin/mgpu-shaderc.rs:
