/root/repo/target/debug/deps/calibrate-aa281d993812b232.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-aa281d993812b232: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
