/root/repo/target/debug/deps/scheduler_semantics-07444e68ccd4cf86.d: crates/tbdr/tests/scheduler_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler_semantics-07444e68ccd4cf86.rmeta: crates/tbdr/tests/scheduler_semantics.rs Cargo.toml

crates/tbdr/tests/scheduler_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
