/root/repo/target/debug/deps/mgpu_bench-23c5578eaa392bda.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_bench-23c5578eaa392bda.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4a.rs:
crates/bench/src/experiments/fig4b.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/vbo.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
