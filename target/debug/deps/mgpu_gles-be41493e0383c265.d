/root/repo/target/debug/deps/mgpu_gles-be41493e0383c265.d: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

/root/repo/target/debug/deps/mgpu_gles-be41493e0383c265: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

crates/gles/src/lib.rs:
crates/gles/src/context.rs:
crates/gles/src/error.rs:
crates/gles/src/exec.rs:
crates/gles/src/raster.rs:
crates/gles/src/types.rs:
