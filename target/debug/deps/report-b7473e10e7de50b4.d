/root/repo/target/debug/deps/report-b7473e10e7de50b4.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-b7473e10e7de50b4.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
