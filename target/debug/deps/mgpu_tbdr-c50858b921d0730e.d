/root/repo/target/debug/deps/mgpu_tbdr-c50858b921d0730e.d: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_tbdr-c50858b921d0730e.rmeta: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs Cargo.toml

crates/tbdr/src/lib.rs:
crates/tbdr/src/chrome.rs:
crates/tbdr/src/energy.rs:
crates/tbdr/src/platform.rs:
crates/tbdr/src/sched.rs:
crates/tbdr/src/stats.rs:
crates/tbdr/src/time.rs:
crates/tbdr/src/trace.rs:
crates/tbdr/src/work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
