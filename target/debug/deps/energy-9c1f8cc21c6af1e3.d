/root/repo/target/debug/deps/energy-9c1f8cc21c6af1e3.d: crates/bench/src/bin/energy.rs

/root/repo/target/debug/deps/energy-9c1f8cc21c6af1e3: crates/bench/src/bin/energy.rs

crates/bench/src/bin/energy.rs:
