/root/repo/target/debug/deps/mgpu_prop-61ccc4a87127f188.d: crates/prop/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_prop-61ccc4a87127f188.rmeta: crates/prop/src/lib.rs Cargo.toml

crates/prop/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
