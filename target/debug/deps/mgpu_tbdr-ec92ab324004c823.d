/root/repo/target/debug/deps/mgpu_tbdr-ec92ab324004c823.d: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

/root/repo/target/debug/deps/libmgpu_tbdr-ec92ab324004c823.rlib: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

/root/repo/target/debug/deps/libmgpu_tbdr-ec92ab324004c823.rmeta: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

crates/tbdr/src/lib.rs:
crates/tbdr/src/chrome.rs:
crates/tbdr/src/energy.rs:
crates/tbdr/src/platform.rs:
crates/tbdr/src/sched.rs:
crates/tbdr/src/stats.rs:
crates/tbdr/src/time.rs:
crates/tbdr/src/trace.rs:
crates/tbdr/src/work.rs:
