/root/repo/target/debug/deps/properties-11e0c345067b15ba.d: crates/gles/tests/properties.rs

/root/repo/target/debug/deps/properties-11e0c345067b15ba: crates/gles/tests/properties.rs

crates/gles/tests/properties.rs:
