/root/repo/target/debug/deps/correctness-ae2b4e4341e75aaf.d: crates/gpgpu/tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-ae2b4e4341e75aaf.rmeta: crates/gpgpu/tests/correctness.rs Cargo.toml

crates/gpgpu/tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
