/root/repo/target/debug/deps/builtins-1660331b0297eaa1.d: crates/shader/tests/builtins.rs

/root/repo/target/debug/deps/builtins-1660331b0297eaa1: crates/shader/tests/builtins.rs

crates/shader/tests/builtins.rs:
