/root/repo/target/debug/deps/energy-132cc14bec72935f.d: crates/bench/src/bin/energy.rs Cargo.toml

/root/repo/target/debug/deps/libenergy-132cc14bec72935f.rmeta: crates/bench/src/bin/energy.rs Cargo.toml

crates/bench/src/bin/energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
