/root/repo/target/debug/deps/pipeline-7d5c02c1de80f9a5.d: crates/gpgpu/tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-7d5c02c1de80f9a5.rmeta: crates/gpgpu/tests/pipeline.rs Cargo.toml

crates/gpgpu/tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
