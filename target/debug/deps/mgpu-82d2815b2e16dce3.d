/root/repo/target/debug/deps/mgpu-82d2815b2e16dce3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu-82d2815b2e16dce3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
