/root/repo/target/debug/deps/trace_export-1a2f86a50165148b.d: crates/bench/src/bin/trace_export.rs

/root/repo/target/debug/deps/trace_export-1a2f86a50165148b: crates/bench/src/bin/trace_export.rs

crates/bench/src/bin/trace_export.rs:
