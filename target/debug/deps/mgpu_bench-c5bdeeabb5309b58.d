/root/repo/target/debug/deps/mgpu_bench-c5bdeeabb5309b58.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmgpu_bench-c5bdeeabb5309b58.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmgpu_bench-c5bdeeabb5309b58.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4a.rs:
crates/bench/src/experiments/fig4b.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/vbo.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:
