/root/repo/target/debug/deps/api-5028a7b597e61d3e.d: crates/gles/tests/api.rs Cargo.toml

/root/repo/target/debug/deps/libapi-5028a7b597e61d3e.rmeta: crates/gles/tests/api.rs Cargo.toml

crates/gles/tests/api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
