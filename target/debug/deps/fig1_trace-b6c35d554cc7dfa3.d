/root/repo/target/debug/deps/fig1_trace-b6c35d554cc7dfa3.d: crates/bench/src/bin/fig1_trace.rs

/root/repo/target/debug/deps/fig1_trace-b6c35d554cc7dfa3: crates/bench/src/bin/fig1_trace.rs

crates/bench/src/bin/fig1_trace.rs:
