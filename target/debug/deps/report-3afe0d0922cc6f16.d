/root/repo/target/debug/deps/report-3afe0d0922cc6f16.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-3afe0d0922cc6f16: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
