/root/repo/target/debug/deps/mgpu_workloads-0d581b9817ce808f.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

/root/repo/target/debug/deps/mgpu_workloads-0d581b9817ce808f: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/metrics.rs:
crates/workloads/src/reference.rs:
