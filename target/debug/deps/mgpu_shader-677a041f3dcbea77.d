/root/repo/target/debug/deps/mgpu_shader-677a041f3dcbea77.d: crates/shader/src/lib.rs crates/shader/src/ast.rs crates/shader/src/cost.rs crates/shader/src/error.rs crates/shader/src/fold.rs crates/shader/src/lexer.rs crates/shader/src/limits.rs crates/shader/src/lower.rs crates/shader/src/opt.rs crates/shader/src/parser.rs crates/shader/src/pretty.rs crates/shader/src/ir.rs crates/shader/src/token.rs crates/shader/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_shader-677a041f3dcbea77.rmeta: crates/shader/src/lib.rs crates/shader/src/ast.rs crates/shader/src/cost.rs crates/shader/src/error.rs crates/shader/src/fold.rs crates/shader/src/lexer.rs crates/shader/src/limits.rs crates/shader/src/lower.rs crates/shader/src/opt.rs crates/shader/src/parser.rs crates/shader/src/pretty.rs crates/shader/src/ir.rs crates/shader/src/token.rs crates/shader/src/vm.rs Cargo.toml

crates/shader/src/lib.rs:
crates/shader/src/ast.rs:
crates/shader/src/cost.rs:
crates/shader/src/error.rs:
crates/shader/src/fold.rs:
crates/shader/src/lexer.rs:
crates/shader/src/limits.rs:
crates/shader/src/lower.rs:
crates/shader/src/opt.rs:
crates/shader/src/parser.rs:
crates/shader/src/pretty.rs:
crates/shader/src/ir.rs:
crates/shader/src/token.rs:
crates/shader/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
