/root/repo/target/debug/deps/mgpu_workloads-f14debab5263ac26.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

/root/repo/target/debug/deps/libmgpu_workloads-f14debab5263ac26.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

/root/repo/target/debug/deps/libmgpu_workloads-f14debab5263ac26.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/metrics.rs:
crates/workloads/src/reference.rs:
