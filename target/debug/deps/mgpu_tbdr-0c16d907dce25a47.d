/root/repo/target/debug/deps/mgpu_tbdr-0c16d907dce25a47.d: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

/root/repo/target/debug/deps/libmgpu_tbdr-0c16d907dce25a47.rlib: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

/root/repo/target/debug/deps/libmgpu_tbdr-0c16d907dce25a47.rmeta: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

crates/tbdr/src/lib.rs:
crates/tbdr/src/chrome.rs:
crates/tbdr/src/energy.rs:
crates/tbdr/src/platform.rs:
crates/tbdr/src/sched.rs:
crates/tbdr/src/stats.rs:
crates/tbdr/src/time.rs:
crates/tbdr/src/trace.rs:
crates/tbdr/src/work.rs:
