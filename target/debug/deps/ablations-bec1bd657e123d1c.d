/root/repo/target/debug/deps/ablations-bec1bd657e123d1c.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-bec1bd657e123d1c.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
