/root/repo/target/debug/deps/mgpu-b8a7254bc6ae754d.d: src/lib.rs

/root/repo/target/debug/deps/mgpu-b8a7254bc6ae754d: src/lib.rs

src/lib.rs:
