/root/repo/target/debug/deps/mgpu_shaderc-bff7a54e73dc26c4.d: crates/shader/src/bin/mgpu-shaderc.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_shaderc-bff7a54e73dc26c4.rmeta: crates/shader/src/bin/mgpu-shaderc.rs Cargo.toml

crates/shader/src/bin/mgpu-shaderc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
