/root/repo/target/debug/deps/fig5b-2f1fa24d2851f7c3.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-2f1fa24d2851f7c3: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
