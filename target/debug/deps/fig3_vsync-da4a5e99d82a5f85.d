/root/repo/target/debug/deps/fig3_vsync-da4a5e99d82a5f85.d: crates/bench/benches/fig3_vsync.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_vsync-da4a5e99d82a5f85.rmeta: crates/bench/benches/fig3_vsync.rs Cargo.toml

crates/bench/benches/fig3_vsync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
