/root/repo/target/debug/deps/properties-0224b0371583667a.d: crates/shader/tests/properties.rs

/root/repo/target/debug/deps/properties-0224b0371583667a: crates/shader/tests/properties.rs

crates/shader/tests/properties.rs:
