/root/repo/target/debug/deps/fig4b_blocking-a72379efbd27d470.d: crates/bench/benches/fig4b_blocking.rs Cargo.toml

/root/repo/target/debug/deps/libfig4b_blocking-a72379efbd27d470.rmeta: crates/bench/benches/fig4b_blocking.rs Cargo.toml

crates/bench/benches/fig4b_blocking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
