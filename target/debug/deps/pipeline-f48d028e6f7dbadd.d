/root/repo/target/debug/deps/pipeline-f48d028e6f7dbadd.d: crates/gpgpu/tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-f48d028e6f7dbadd: crates/gpgpu/tests/pipeline.rs

crates/gpgpu/tests/pipeline.rs:
