/root/repo/target/debug/deps/properties-d65042d509a4d2cd.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d65042d509a4d2cd: tests/properties.rs

tests/properties.rs:
