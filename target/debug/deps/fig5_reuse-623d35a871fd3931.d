/root/repo/target/debug/deps/fig5_reuse-623d35a871fd3931.d: crates/bench/benches/fig5_reuse.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_reuse-623d35a871fd3931.rmeta: crates/bench/benches/fig5_reuse.rs Cargo.toml

crates/bench/benches/fig5_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
