/root/repo/target/debug/deps/mgpu_gles-b6756f26580e1225.d: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

/root/repo/target/debug/deps/libmgpu_gles-b6756f26580e1225.rlib: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

/root/repo/target/debug/deps/libmgpu_gles-b6756f26580e1225.rmeta: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

crates/gles/src/lib.rs:
crates/gles/src/context.rs:
crates/gles/src/error.rs:
crates/gles/src/exec.rs:
crates/gles/src/raster.rs:
crates/gles/src/types.rs:
