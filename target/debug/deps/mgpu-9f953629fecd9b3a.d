/root/repo/target/debug/deps/mgpu-9f953629fecd9b3a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu-9f953629fecd9b3a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
