/root/repo/target/debug/deps/full_stack-32663303c12c256c.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-32663303c12c256c: tests/full_stack.rs

tests/full_stack.rs:
