/root/repo/target/debug/deps/builtins-dab3ee573b0ffb0a.d: crates/shader/tests/builtins.rs Cargo.toml

/root/repo/target/debug/deps/libbuiltins-dab3ee573b0ffb0a.rmeta: crates/shader/tests/builtins.rs Cargo.toml

crates/shader/tests/builtins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
