/root/repo/target/debug/deps/mgpu_workloads-d4856ab6e77b800a.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_workloads-d4856ab6e77b800a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/metrics.rs:
crates/workloads/src/reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
