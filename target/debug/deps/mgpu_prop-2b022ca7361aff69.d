/root/repo/target/debug/deps/mgpu_prop-2b022ca7361aff69.d: crates/prop/src/lib.rs

/root/repo/target/debug/deps/libmgpu_prop-2b022ca7361aff69.rlib: crates/prop/src/lib.rs

/root/repo/target/debug/deps/libmgpu_prop-2b022ca7361aff69.rmeta: crates/prop/src/lib.rs

crates/prop/src/lib.rs:
