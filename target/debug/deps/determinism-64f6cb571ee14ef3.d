/root/repo/target/debug/deps/determinism-64f6cb571ee14ef3.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-64f6cb571ee14ef3: tests/determinism.rs

tests/determinism.rs:
