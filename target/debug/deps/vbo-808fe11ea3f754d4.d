/root/repo/target/debug/deps/vbo-808fe11ea3f754d4.d: crates/bench/src/bin/vbo.rs

/root/repo/target/debug/deps/vbo-808fe11ea3f754d4: crates/bench/src/bin/vbo.rs

crates/bench/src/bin/vbo.rs:
