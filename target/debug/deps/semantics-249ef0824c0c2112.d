/root/repo/target/debug/deps/semantics-249ef0824c0c2112.d: crates/gles/tests/semantics.rs

/root/repo/target/debug/deps/semantics-249ef0824c0c2112: crates/gles/tests/semantics.rs

crates/gles/tests/semantics.rs:
