/root/repo/target/debug/deps/fig3-e9129c472df6d2c2.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-e9129c472df6d2c2: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
