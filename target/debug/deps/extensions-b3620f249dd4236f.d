/root/repo/target/debug/deps/extensions-b3620f249dd4236f.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-b3620f249dd4236f.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
