/root/repo/target/debug/deps/extensions-2050c6de82f9ad6f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-2050c6de82f9ad6f: tests/extensions.rs

tests/extensions.rs:
