/root/repo/target/debug/deps/par_speedup-ea80cd248dd736e1.d: crates/bench/src/bin/par_speedup.rs

/root/repo/target/debug/deps/par_speedup-ea80cd248dd736e1: crates/bench/src/bin/par_speedup.rs

crates/bench/src/bin/par_speedup.rs:
