/root/repo/target/debug/deps/api-d7be11515996228d.d: crates/gles/tests/api.rs

/root/repo/target/debug/deps/api-d7be11515996228d: crates/gles/tests/api.rs

crates/gles/tests/api.rs:
