/root/repo/target/debug/deps/fig5b-451867275fac7f80.d: crates/bench/src/bin/fig5b.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b-451867275fac7f80.rmeta: crates/bench/src/bin/fig5b.rs Cargo.toml

crates/bench/src/bin/fig5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
