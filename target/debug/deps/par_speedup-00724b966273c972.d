/root/repo/target/debug/deps/par_speedup-00724b966273c972.d: crates/bench/src/bin/par_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libpar_speedup-00724b966273c972.rmeta: crates/bench/src/bin/par_speedup.rs Cargo.toml

crates/bench/src/bin/par_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
