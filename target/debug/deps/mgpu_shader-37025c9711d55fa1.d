/root/repo/target/debug/deps/mgpu_shader-37025c9711d55fa1.d: crates/shader/src/lib.rs crates/shader/src/ast.rs crates/shader/src/cost.rs crates/shader/src/error.rs crates/shader/src/fold.rs crates/shader/src/lexer.rs crates/shader/src/limits.rs crates/shader/src/lower.rs crates/shader/src/opt.rs crates/shader/src/parser.rs crates/shader/src/pretty.rs crates/shader/src/ir.rs crates/shader/src/token.rs crates/shader/src/vm.rs

/root/repo/target/debug/deps/mgpu_shader-37025c9711d55fa1: crates/shader/src/lib.rs crates/shader/src/ast.rs crates/shader/src/cost.rs crates/shader/src/error.rs crates/shader/src/fold.rs crates/shader/src/lexer.rs crates/shader/src/limits.rs crates/shader/src/lower.rs crates/shader/src/opt.rs crates/shader/src/parser.rs crates/shader/src/pretty.rs crates/shader/src/ir.rs crates/shader/src/token.rs crates/shader/src/vm.rs

crates/shader/src/lib.rs:
crates/shader/src/ast.rs:
crates/shader/src/cost.rs:
crates/shader/src/error.rs:
crates/shader/src/fold.rs:
crates/shader/src/lexer.rs:
crates/shader/src/limits.rs:
crates/shader/src/lower.rs:
crates/shader/src/opt.rs:
crates/shader/src/parser.rs:
crates/shader/src/pretty.rs:
crates/shader/src/ir.rs:
crates/shader/src/token.rs:
crates/shader/src/vm.rs:
