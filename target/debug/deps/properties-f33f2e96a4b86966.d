/root/repo/target/debug/deps/properties-f33f2e96a4b86966.d: crates/tbdr/tests/properties.rs

/root/repo/target/debug/deps/properties-f33f2e96a4b86966: crates/tbdr/tests/properties.rs

crates/tbdr/tests/properties.rs:
