/root/repo/target/debug/deps/correctness-6737c52f27ab2d65.d: crates/gpgpu/tests/correctness.rs

/root/repo/target/debug/deps/correctness-6737c52f27ab2d65: crates/gpgpu/tests/correctness.rs

crates/gpgpu/tests/correctness.rs:
