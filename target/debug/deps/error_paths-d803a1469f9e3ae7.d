/root/repo/target/debug/deps/error_paths-d803a1469f9e3ae7.d: crates/gles/tests/error_paths.rs Cargo.toml

/root/repo/target/debug/deps/liberror_paths-d803a1469f9e3ae7.rmeta: crates/gles/tests/error_paths.rs Cargo.toml

crates/gles/tests/error_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
