/root/repo/target/debug/deps/calibrate-5e3f89cf9e68e2bd.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-5e3f89cf9e68e2bd.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
