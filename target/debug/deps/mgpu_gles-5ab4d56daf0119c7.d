/root/repo/target/debug/deps/mgpu_gles-5ab4d56daf0119c7.d: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

/root/repo/target/debug/deps/libmgpu_gles-5ab4d56daf0119c7.rlib: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

/root/repo/target/debug/deps/libmgpu_gles-5ab4d56daf0119c7.rmeta: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

crates/gles/src/lib.rs:
crates/gles/src/context.rs:
crates/gles/src/error.rs:
crates/gles/src/exec.rs:
crates/gles/src/raster.rs:
crates/gles/src/types.rs:
