/root/repo/target/debug/deps/properties-bc73c4a09c3dad90.d: crates/shader/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bc73c4a09c3dad90.rmeta: crates/shader/tests/properties.rs Cargo.toml

crates/shader/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
