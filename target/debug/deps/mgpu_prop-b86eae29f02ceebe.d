/root/repo/target/debug/deps/mgpu_prop-b86eae29f02ceebe.d: crates/prop/src/lib.rs

/root/repo/target/debug/deps/mgpu_prop-b86eae29f02ceebe: crates/prop/src/lib.rs

crates/prop/src/lib.rs:
