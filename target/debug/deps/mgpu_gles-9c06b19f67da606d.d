/root/repo/target/debug/deps/mgpu_gles-9c06b19f67da606d.d: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_gles-9c06b19f67da606d.rmeta: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs Cargo.toml

crates/gles/src/lib.rs:
crates/gles/src/context.rs:
crates/gles/src/error.rs:
crates/gles/src/exec.rs:
crates/gles/src/raster.rs:
crates/gles/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
