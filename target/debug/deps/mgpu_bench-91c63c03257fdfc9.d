/root/repo/target/debug/deps/mgpu_bench-91c63c03257fdfc9.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/mgpu_bench-91c63c03257fdfc9: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4a.rs:
crates/bench/src/experiments/fig4b.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/vbo.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:
