/root/repo/target/debug/deps/fig1_trace-1feca74d28f0388e.d: crates/bench/src/bin/fig1_trace.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_trace-1feca74d28f0388e.rmeta: crates/bench/src/bin/fig1_trace.rs Cargo.toml

crates/bench/src/bin/fig1_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
