/root/repo/target/debug/deps/fig4a-948f9537d197a379.d: crates/bench/src/bin/fig4a.rs Cargo.toml

/root/repo/target/debug/deps/libfig4a-948f9537d197a379.rmeta: crates/bench/src/bin/fig4a.rs Cargo.toml

crates/bench/src/bin/fig4a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
