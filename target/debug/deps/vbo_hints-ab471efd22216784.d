/root/repo/target/debug/deps/vbo_hints-ab471efd22216784.d: crates/bench/benches/vbo_hints.rs Cargo.toml

/root/repo/target/debug/deps/libvbo_hints-ab471efd22216784.rmeta: crates/bench/benches/vbo_hints.rs Cargo.toml

crates/bench/benches/vbo_hints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
