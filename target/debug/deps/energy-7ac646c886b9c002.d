/root/repo/target/debug/deps/energy-7ac646c886b9c002.d: crates/bench/src/bin/energy.rs Cargo.toml

/root/repo/target/debug/deps/libenergy-7ac646c886b9c002.rmeta: crates/bench/src/bin/energy.rs Cargo.toml

crates/bench/src/bin/energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
