/root/repo/target/debug/deps/properties-3a1e0838b3239c7d.d: crates/tbdr/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3a1e0838b3239c7d.rmeta: crates/tbdr/tests/properties.rs Cargo.toml

crates/tbdr/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
