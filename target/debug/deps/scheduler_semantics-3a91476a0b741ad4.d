/root/repo/target/debug/deps/scheduler_semantics-3a91476a0b741ad4.d: crates/tbdr/tests/scheduler_semantics.rs

/root/repo/target/debug/deps/scheduler_semantics-3a91476a0b741ad4: crates/tbdr/tests/scheduler_semantics.rs

crates/tbdr/tests/scheduler_semantics.rs:
