/root/repo/target/debug/deps/mgpu-654a64f24cb355c6.d: src/lib.rs

/root/repo/target/debug/deps/libmgpu-654a64f24cb355c6.rlib: src/lib.rs

/root/repo/target/debug/deps/libmgpu-654a64f24cb355c6.rmeta: src/lib.rs

src/lib.rs:
