/root/repo/target/debug/deps/semantics-a0c6ee2031dc10fd.d: crates/gles/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-a0c6ee2031dc10fd.rmeta: crates/gles/tests/semantics.rs Cargo.toml

crates/gles/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
