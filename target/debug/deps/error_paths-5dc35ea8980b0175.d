/root/repo/target/debug/deps/error_paths-5dc35ea8980b0175.d: crates/gles/tests/error_paths.rs

/root/repo/target/debug/deps/error_paths-5dc35ea8980b0175: crates/gles/tests/error_paths.rs

crates/gles/tests/error_paths.rs:
