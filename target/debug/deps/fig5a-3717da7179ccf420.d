/root/repo/target/debug/deps/fig5a-3717da7179ccf420.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-3717da7179ccf420: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
