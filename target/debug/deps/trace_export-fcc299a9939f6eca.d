/root/repo/target/debug/deps/trace_export-fcc299a9939f6eca.d: crates/bench/src/bin/trace_export.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_export-fcc299a9939f6eca.rmeta: crates/bench/src/bin/trace_export.rs Cargo.toml

crates/bench/src/bin/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
