/root/repo/target/debug/deps/fig4b-7719aa01ade09b0b.d: crates/bench/src/bin/fig4b.rs

/root/repo/target/debug/deps/fig4b-7719aa01ade09b0b: crates/bench/src/bin/fig4b.rs

crates/bench/src/bin/fig4b.rs:
