/root/repo/target/debug/deps/fig4a-79bb315c97fe6d4f.d: crates/bench/src/bin/fig4a.rs

/root/repo/target/debug/deps/fig4a-79bb315c97fe6d4f: crates/bench/src/bin/fig4a.rs

crates/bench/src/bin/fig4a.rs:
