/root/repo/target/debug/deps/vbo-eb069ac8e7fe0202.d: crates/bench/src/bin/vbo.rs Cargo.toml

/root/repo/target/debug/deps/libvbo-eb069ac8e7fe0202.rmeta: crates/bench/src/bin/vbo.rs Cargo.toml

crates/bench/src/bin/vbo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
