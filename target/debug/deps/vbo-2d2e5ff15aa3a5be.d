/root/repo/target/debug/deps/vbo-2d2e5ff15aa3a5be.d: crates/bench/src/bin/vbo.rs Cargo.toml

/root/repo/target/debug/deps/libvbo-2d2e5ff15aa3a5be.rmeta: crates/bench/src/bin/vbo.rs Cargo.toml

crates/bench/src/bin/vbo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
