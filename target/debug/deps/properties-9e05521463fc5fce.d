/root/repo/target/debug/deps/properties-9e05521463fc5fce.d: crates/gles/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9e05521463fc5fce.rmeta: crates/gles/tests/properties.rs Cargo.toml

crates/gles/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
