/root/repo/target/debug/deps/mgpu_gpgpu-58b84e95ed52a52b.d: crates/gpgpu/src/lib.rs crates/gpgpu/src/config.rs crates/gpgpu/src/encoding.rs crates/gpgpu/src/error.rs crates/gpgpu/src/kernels.rs crates/gpgpu/src/ops/mod.rs crates/gpgpu/src/ops/conv.rs crates/gpgpu/src/ops/dot.rs crates/gpgpu/src/ops/jacobi.rs crates/gpgpu/src/ops/reduce.rs crates/gpgpu/src/ops/saxpy.rs crates/gpgpu/src/ops/sgemm.rs crates/gpgpu/src/ops/sum.rs crates/gpgpu/src/ops/transpose.rs crates/gpgpu/src/pipeline.rs crates/gpgpu/src/runner.rs crates/gpgpu/src/tune.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_gpgpu-58b84e95ed52a52b.rmeta: crates/gpgpu/src/lib.rs crates/gpgpu/src/config.rs crates/gpgpu/src/encoding.rs crates/gpgpu/src/error.rs crates/gpgpu/src/kernels.rs crates/gpgpu/src/ops/mod.rs crates/gpgpu/src/ops/conv.rs crates/gpgpu/src/ops/dot.rs crates/gpgpu/src/ops/jacobi.rs crates/gpgpu/src/ops/reduce.rs crates/gpgpu/src/ops/saxpy.rs crates/gpgpu/src/ops/sgemm.rs crates/gpgpu/src/ops/sum.rs crates/gpgpu/src/ops/transpose.rs crates/gpgpu/src/pipeline.rs crates/gpgpu/src/runner.rs crates/gpgpu/src/tune.rs Cargo.toml

crates/gpgpu/src/lib.rs:
crates/gpgpu/src/config.rs:
crates/gpgpu/src/encoding.rs:
crates/gpgpu/src/error.rs:
crates/gpgpu/src/kernels.rs:
crates/gpgpu/src/ops/mod.rs:
crates/gpgpu/src/ops/conv.rs:
crates/gpgpu/src/ops/dot.rs:
crates/gpgpu/src/ops/jacobi.rs:
crates/gpgpu/src/ops/reduce.rs:
crates/gpgpu/src/ops/saxpy.rs:
crates/gpgpu/src/ops/sgemm.rs:
crates/gpgpu/src/ops/sum.rs:
crates/gpgpu/src/ops/transpose.rs:
crates/gpgpu/src/pipeline.rs:
crates/gpgpu/src/runner.rs:
crates/gpgpu/src/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
