/root/repo/target/debug/deps/report-7308f729f1c454c0.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-7308f729f1c454c0.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
