/root/repo/target/debug/deps/mgpu_tbdr-bbf4997f49ff45de.d: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

/root/repo/target/debug/deps/mgpu_tbdr-bbf4997f49ff45de: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

crates/tbdr/src/lib.rs:
crates/tbdr/src/chrome.rs:
crates/tbdr/src/energy.rs:
crates/tbdr/src/platform.rs:
crates/tbdr/src/sched.rs:
crates/tbdr/src/stats.rs:
crates/tbdr/src/time.rs:
crates/tbdr/src/trace.rs:
crates/tbdr/src/work.rs:
