/root/repo/target/debug/examples/parallel_exec-7172b420e7454841.d: examples/parallel_exec.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_exec-7172b420e7454841.rmeta: examples/parallel_exec.rs Cargo.toml

examples/parallel_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
