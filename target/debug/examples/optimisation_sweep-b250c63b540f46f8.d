/root/repo/target/debug/examples/optimisation_sweep-b250c63b540f46f8.d: examples/optimisation_sweep.rs Cargo.toml

/root/repo/target/debug/examples/liboptimisation_sweep-b250c63b540f46f8.rmeta: examples/optimisation_sweep.rs Cargo.toml

examples/optimisation_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
