/root/repo/target/debug/examples/poisson-2792c553e178e37b.d: examples/poisson.rs Cargo.toml

/root/repo/target/debug/examples/libpoisson-2792c553e178e37b.rmeta: examples/poisson.rs Cargo.toml

examples/poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
