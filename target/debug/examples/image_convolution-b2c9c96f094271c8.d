/root/repo/target/debug/examples/image_convolution-b2c9c96f094271c8.d: examples/image_convolution.rs

/root/repo/target/debug/examples/image_convolution-b2c9c96f094271c8: examples/image_convolution.rs

examples/image_convolution.rs:
