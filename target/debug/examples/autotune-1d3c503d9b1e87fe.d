/root/repo/target/debug/examples/autotune-1d3c503d9b1e87fe.d: examples/autotune.rs

/root/repo/target/debug/examples/autotune-1d3c503d9b1e87fe: examples/autotune.rs

examples/autotune.rs:
