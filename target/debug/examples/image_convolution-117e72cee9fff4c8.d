/root/repo/target/debug/examples/image_convolution-117e72cee9fff4c8.d: examples/image_convolution.rs Cargo.toml

/root/repo/target/debug/examples/libimage_convolution-117e72cee9fff4c8.rmeta: examples/image_convolution.rs Cargo.toml

examples/image_convolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
