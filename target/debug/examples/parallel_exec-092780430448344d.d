/root/repo/target/debug/examples/parallel_exec-092780430448344d.d: examples/parallel_exec.rs

/root/repo/target/debug/examples/parallel_exec-092780430448344d: examples/parallel_exec.rs

examples/parallel_exec.rs:
