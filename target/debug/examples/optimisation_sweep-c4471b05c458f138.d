/root/repo/target/debug/examples/optimisation_sweep-c4471b05c458f138.d: examples/optimisation_sweep.rs

/root/repo/target/debug/examples/optimisation_sweep-c4471b05c458f138: examples/optimisation_sweep.rs

examples/optimisation_sweep.rs:
