/root/repo/target/debug/examples/sgemm_blocked-20e5281d8a48f898.d: examples/sgemm_blocked.rs Cargo.toml

/root/repo/target/debug/examples/libsgemm_blocked-20e5281d8a48f898.rmeta: examples/sgemm_blocked.rs Cargo.toml

examples/sgemm_blocked.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
