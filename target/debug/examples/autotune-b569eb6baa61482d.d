/root/repo/target/debug/examples/autotune-b569eb6baa61482d.d: examples/autotune.rs Cargo.toml

/root/repo/target/debug/examples/libautotune-b569eb6baa61482d.rmeta: examples/autotune.rs Cargo.toml

examples/autotune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
