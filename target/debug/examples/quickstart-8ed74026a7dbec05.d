/root/repo/target/debug/examples/quickstart-8ed74026a7dbec05.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8ed74026a7dbec05: examples/quickstart.rs

examples/quickstart.rs:
