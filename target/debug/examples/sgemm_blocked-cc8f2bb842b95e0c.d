/root/repo/target/debug/examples/sgemm_blocked-cc8f2bb842b95e0c.d: examples/sgemm_blocked.rs

/root/repo/target/debug/examples/sgemm_blocked-cc8f2bb842b95e0c: examples/sgemm_blocked.rs

examples/sgemm_blocked.rs:
