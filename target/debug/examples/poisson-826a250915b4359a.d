/root/repo/target/debug/examples/poisson-826a250915b4359a.d: examples/poisson.rs

/root/repo/target/debug/examples/poisson-826a250915b4359a: examples/poisson.rs

examples/poisson.rs:
