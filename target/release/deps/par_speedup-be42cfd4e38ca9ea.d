/root/repo/target/release/deps/par_speedup-be42cfd4e38ca9ea.d: crates/bench/src/bin/par_speedup.rs

/root/repo/target/release/deps/par_speedup-be42cfd4e38ca9ea: crates/bench/src/bin/par_speedup.rs

crates/bench/src/bin/par_speedup.rs:
