/root/repo/target/release/deps/mgpu-45af44ae0a12ea8b.d: src/lib.rs

/root/repo/target/release/deps/libmgpu-45af44ae0a12ea8b.rlib: src/lib.rs

/root/repo/target/release/deps/libmgpu-45af44ae0a12ea8b.rmeta: src/lib.rs

src/lib.rs:
