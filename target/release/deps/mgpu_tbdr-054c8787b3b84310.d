/root/repo/target/release/deps/mgpu_tbdr-054c8787b3b84310.d: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

/root/repo/target/release/deps/libmgpu_tbdr-054c8787b3b84310.rlib: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

/root/repo/target/release/deps/libmgpu_tbdr-054c8787b3b84310.rmeta: crates/tbdr/src/lib.rs crates/tbdr/src/chrome.rs crates/tbdr/src/energy.rs crates/tbdr/src/platform.rs crates/tbdr/src/sched.rs crates/tbdr/src/stats.rs crates/tbdr/src/time.rs crates/tbdr/src/trace.rs crates/tbdr/src/work.rs

crates/tbdr/src/lib.rs:
crates/tbdr/src/chrome.rs:
crates/tbdr/src/energy.rs:
crates/tbdr/src/platform.rs:
crates/tbdr/src/sched.rs:
crates/tbdr/src/stats.rs:
crates/tbdr/src/time.rs:
crates/tbdr/src/trace.rs:
crates/tbdr/src/work.rs:
