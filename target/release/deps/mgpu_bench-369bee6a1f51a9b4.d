/root/repo/target/release/deps/mgpu_bench-369bee6a1f51a9b4.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libmgpu_bench-369bee6a1f51a9b4.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libmgpu_bench-369bee6a1f51a9b4.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4a.rs crates/bench/src/experiments/fig4b.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/vbo.rs crates/bench/src/harness.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4a.rs:
crates/bench/src/experiments/fig4b.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/vbo.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:
