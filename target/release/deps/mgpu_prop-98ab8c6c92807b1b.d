/root/repo/target/release/deps/mgpu_prop-98ab8c6c92807b1b.d: crates/prop/src/lib.rs

/root/repo/target/release/deps/libmgpu_prop-98ab8c6c92807b1b.rlib: crates/prop/src/lib.rs

/root/repo/target/release/deps/libmgpu_prop-98ab8c6c92807b1b.rmeta: crates/prop/src/lib.rs

crates/prop/src/lib.rs:
