/root/repo/target/release/deps/mgpu_gpgpu-d2eac9b5682ad7fb.d: crates/gpgpu/src/lib.rs crates/gpgpu/src/config.rs crates/gpgpu/src/encoding.rs crates/gpgpu/src/error.rs crates/gpgpu/src/kernels.rs crates/gpgpu/src/ops/mod.rs crates/gpgpu/src/ops/conv.rs crates/gpgpu/src/ops/dot.rs crates/gpgpu/src/ops/jacobi.rs crates/gpgpu/src/ops/reduce.rs crates/gpgpu/src/ops/saxpy.rs crates/gpgpu/src/ops/sgemm.rs crates/gpgpu/src/ops/sum.rs crates/gpgpu/src/ops/transpose.rs crates/gpgpu/src/pipeline.rs crates/gpgpu/src/runner.rs crates/gpgpu/src/tune.rs

/root/repo/target/release/deps/libmgpu_gpgpu-d2eac9b5682ad7fb.rlib: crates/gpgpu/src/lib.rs crates/gpgpu/src/config.rs crates/gpgpu/src/encoding.rs crates/gpgpu/src/error.rs crates/gpgpu/src/kernels.rs crates/gpgpu/src/ops/mod.rs crates/gpgpu/src/ops/conv.rs crates/gpgpu/src/ops/dot.rs crates/gpgpu/src/ops/jacobi.rs crates/gpgpu/src/ops/reduce.rs crates/gpgpu/src/ops/saxpy.rs crates/gpgpu/src/ops/sgemm.rs crates/gpgpu/src/ops/sum.rs crates/gpgpu/src/ops/transpose.rs crates/gpgpu/src/pipeline.rs crates/gpgpu/src/runner.rs crates/gpgpu/src/tune.rs

/root/repo/target/release/deps/libmgpu_gpgpu-d2eac9b5682ad7fb.rmeta: crates/gpgpu/src/lib.rs crates/gpgpu/src/config.rs crates/gpgpu/src/encoding.rs crates/gpgpu/src/error.rs crates/gpgpu/src/kernels.rs crates/gpgpu/src/ops/mod.rs crates/gpgpu/src/ops/conv.rs crates/gpgpu/src/ops/dot.rs crates/gpgpu/src/ops/jacobi.rs crates/gpgpu/src/ops/reduce.rs crates/gpgpu/src/ops/saxpy.rs crates/gpgpu/src/ops/sgemm.rs crates/gpgpu/src/ops/sum.rs crates/gpgpu/src/ops/transpose.rs crates/gpgpu/src/pipeline.rs crates/gpgpu/src/runner.rs crates/gpgpu/src/tune.rs

crates/gpgpu/src/lib.rs:
crates/gpgpu/src/config.rs:
crates/gpgpu/src/encoding.rs:
crates/gpgpu/src/error.rs:
crates/gpgpu/src/kernels.rs:
crates/gpgpu/src/ops/mod.rs:
crates/gpgpu/src/ops/conv.rs:
crates/gpgpu/src/ops/dot.rs:
crates/gpgpu/src/ops/jacobi.rs:
crates/gpgpu/src/ops/reduce.rs:
crates/gpgpu/src/ops/saxpy.rs:
crates/gpgpu/src/ops/sgemm.rs:
crates/gpgpu/src/ops/sum.rs:
crates/gpgpu/src/ops/transpose.rs:
crates/gpgpu/src/pipeline.rs:
crates/gpgpu/src/runner.rs:
crates/gpgpu/src/tune.rs:
