/root/repo/target/release/deps/mgpu_gles-6a08775c9381954f.d: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

/root/repo/target/release/deps/libmgpu_gles-6a08775c9381954f.rlib: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

/root/repo/target/release/deps/libmgpu_gles-6a08775c9381954f.rmeta: crates/gles/src/lib.rs crates/gles/src/context.rs crates/gles/src/error.rs crates/gles/src/exec.rs crates/gles/src/raster.rs crates/gles/src/types.rs

crates/gles/src/lib.rs:
crates/gles/src/context.rs:
crates/gles/src/error.rs:
crates/gles/src/exec.rs:
crates/gles/src/raster.rs:
crates/gles/src/types.rs:
