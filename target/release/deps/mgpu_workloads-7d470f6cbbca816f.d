/root/repo/target/release/deps/mgpu_workloads-7d470f6cbbca816f.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

/root/repo/target/release/deps/libmgpu_workloads-7d470f6cbbca816f.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

/root/repo/target/release/deps/libmgpu_workloads-7d470f6cbbca816f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/metrics.rs crates/workloads/src/reference.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/metrics.rs:
crates/workloads/src/reference.rs:
