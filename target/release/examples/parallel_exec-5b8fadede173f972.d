/root/repo/target/release/examples/parallel_exec-5b8fadede173f972.d: examples/parallel_exec.rs

/root/repo/target/release/examples/parallel_exec-5b8fadede173f972: examples/parallel_exec.rs

examples/parallel_exec.rs:
